//! Avoiding the attack (§VI of the paper): how much do the proposed
//! countermeasures actually help?
//!
//! 1. *Adversarial stylometry* — obfuscating writing style, modelled as
//!    increasing style/temporal drift between a persona's two aliases;
//! 2. *Time-shifted posting* — "post on one forum in the morning and the
//!    other in the evening", modelled by rotating the dark alias's
//!    timestamps 10 hours.
//!
//! The example sweeps both countermeasures and reports how k-attribution
//! accuracy over the cross-forum personas degrades — reproducing the
//! paper's qualitative claim that consistent style + schedule is what
//! betrays users, and that evasion demands *sustained* effort.
//!
//! ```sh
//! cargo run --release --example evasion
//! ```

use darklight::prelude::*;
use darklight_activity::profile::ProfileBuilder;
use darklight_core::dataset::{Dataset, DatasetBuilder};
use darklight_corpus::refine::{refine, RefineConfig};

fn prepare(raw: &Corpus) -> Dataset {
    let polisher = Polisher::new(PolishConfig::default());
    let profiles = ProfileBuilder::new(ProfilePolicy::default());
    DatasetBuilder::new().build(&refine(
        &polisher.polish(raw).0,
        RefineConfig::default(),
        &profiles,
    ))
}

/// Fraction of cross-forum personas whose true alias ranks in the top-k.
fn cross_accuracy(known: &Dataset, unknown: &Dataset, k: usize) -> f64 {
    let engine = TwoStage::new(TwoStageConfig::default());
    let stage1 = engine.reduce(known, unknown);
    let mut eligible = 0usize;
    let mut hits = 0usize;
    for (u, candidates) in stage1.iter().enumerate() {
        let Some(persona) = unknown.records[u].persona else {
            continue;
        };
        if !known.records.iter().any(|r| r.persona == Some(persona)) {
            continue;
        }
        eligible += 1;
        if candidates
            .iter()
            .take(k)
            .any(|c| known.records[c.index].persona == Some(persona))
        {
            hits += 1;
        }
    }
    if eligible == 0 {
        0.0
    } else {
        hits as f64 / eligible as f64
    }
}

fn main() {
    // A world with many cross-forum personas so accuracy is measurable.
    let mut config = ScenarioConfig::small();
    config.cross_reddit_tmg = 20;
    config.tmg_users = 45;
    config.reddit_users = 120;

    println!("== countermeasure 1: adversarial stylometry (style drift sweep) ==");
    println!("{:<8} {:>8} {:>8}", "drift", "acc@1", "acc@10");
    for drift in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let mut c = config.clone();
        c.open_drift = drift;
        let scenario = ScenarioBuilder::new(c).build();
        let reddit = prepare(&scenario.reddit);
        let tmg = prepare(&scenario.tmg);
        println!(
            "{:<8.1} {:>7.0}% {:>7.0}%",
            drift,
            cross_accuracy(&reddit, &tmg, 1) * 100.0,
            cross_accuracy(&reddit, &tmg, 10) * 100.0
        );
    }

    println!("\n== countermeasure 2: time-shifted posting (rotate dark timestamps) ==");
    let scenario = ScenarioBuilder::new(config).build();
    let reddit = prepare(&scenario.reddit);
    for (label, shift_hours) in [("no shift", 0i64), ("10h shift", 10)] {
        let mut tmg_raw = scenario.tmg.clone();
        for user in &mut tmg_raw.users {
            for post in &mut user.posts {
                post.timestamp += shift_hours * 3_600;
            }
        }
        let tmg = prepare(&tmg_raw);
        println!(
            "{label:<10} acc@1 {:>4.0}%  acc@10 {:>4.0}%",
            cross_accuracy(&reddit, &tmg, 1) * 100.0,
            cross_accuracy(&reddit, &tmg, 10) * 100.0
        );
    }
    println!(
        "\nshifting the clock weakens the activity-profile side channel, and heavy\n\
         style drift weakens the text channel — but neither alone breaks linking,\n\
         matching the paper's conclusion that evasion requires constant effort."
    );
}
