//! Quickstart: link one person's aliases across two tiny forums.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use darklight::prelude::*;

fn main() {
    // Build two toy forums. The same person ("persona 1") posts on both
    // under different aliases, with a persistent style and schedule; a
    // decoy persona posts only on forum B.
    let mut forum_a = Corpus::new("forum_a");
    let mut forum_b = Corpus::new("forum_b");
    let base = 1_486_375_200; // Monday 2017-02-06, 10:00 UTC

    let posts = |style: &str, offset_hours: i64| -> Vec<Post> {
        (0..70i64)
            .map(|i| {
                let ts = base + (i / 5) * 7 * 86_400 + (i % 5) * 86_400 + offset_hours * 3_600;
                Post::new(
                    format!(
                        "{style} entry {i}: more notes with the same habits and phrasing as always"
                    ),
                    ts,
                )
            })
            .collect()
    };

    let mut target_a = User::new("night_gardener", Some(1));
    target_a.posts = posts(
        "my orchid greenhouse log... the phalaenopsis cuttings rooted nicely, humidity steady",
        0,
    );
    forum_a.users.push(target_a);

    let mut target_b = User::new("moss_witch", Some(1));
    target_b.posts = posts(
        "greenhouse log again :: phalaenopsis cuttings rooted, humidity sensors steady as usual",
        1,
    );
    forum_b.users.push(target_b);

    // A second person posts about engines on forum A...
    let mut mechanic_a = User::new("torque_monkey", Some(2));
    mechanic_a.posts = posts(
        "rebuilt the carburetor today; torque specs and gasket sealant notes for the garage",
        9,
    );
    forum_a.users.push(mechanic_a);

    // ...and under another alias on forum B.
    let mut mechanic_b = User::new("petrol_head", Some(2));
    mechanic_b.posts = posts(
        "garage log: carburetor rebuild again, rechecked torque specs and the gasket sealant",
        10,
    );
    forum_b.users.push(mechanic_b);

    // Link forum B's aliases against forum A's.
    let mut config = LinkerConfig::default();
    config.two_stage.threshold = 0.5;
    let linker = Linker::new(config);
    let matches = linker.link(&forum_a, &forum_b);

    println!("emitted {} match(es):", matches.len());
    for m in &matches {
        println!(
            "  {:<14} <-> {:<14} score {:.4}",
            m.known_alias, m.unknown_alias, m.score
        );
    }
    assert!(matches
        .iter()
        .any(|m| m.known_alias == "night_gardener" && m.unknown_alias == "moss_witch"));
    assert!(matches
        .iter()
        .any(|m| m.known_alias == "torque_monkey" && m.unknown_alias == "petrol_head"));
    println!("\nboth personas' alias pairs were linked, and never crossed.");
}
