//! De-anonymization end-to-end — the §V-C/§V-D experiment in miniature:
//! link Dark Web aliases to Reddit aliases, then build the "John Doe"
//! dossier for the best confirmed pair from everything the open alias
//! leaked.
//!
//! ```sh
//! cargo run --release --example deanonymize
//! ```

use darklight::prelude::*;
use darklight_activity::profile::ProfileBuilder;
use darklight_core::confidence::MatchConfidence;
use darklight_core::dataset::DatasetBuilder;
use darklight_corpus::refine::{refine, RefineConfig};
use darklight_eval::profiler::build_profile;

fn main() {
    let config = ScenarioConfig::small();
    println!(
        "generating world: {} Reddit users, {} cross Reddit/dark personas...",
        config.reddit_users,
        config.cross_reddit_tmg + config.cross_reddit_dm
    );
    let scenario = ScenarioBuilder::new(config).build();

    let polisher = Polisher::new(PolishConfig::default());
    let profiles = ProfileBuilder::new(ProfilePolicy::default());
    let builder = DatasetBuilder::new();
    let prepare = |raw: &Corpus| {
        builder.build(&refine(
            &polisher.polish(raw).0,
            RefineConfig::default(),
            &profiles,
        ))
    };
    let reddit = prepare(&scenario.reddit);
    let tmg = prepare(&scenario.tmg);
    let dm = prepare(&scenario.dm);
    let darkweb = tmg.merged_with(&dm, "darkweb");
    println!(
        "refined: Reddit {} aliases, DarkWeb {} aliases",
        reddit.len(),
        darkweb.len()
    );

    // Cross-domain (Reddit <-> dark) drift lowers scores relative to the
    // within-forum splits, so accept with a slightly lower threshold plus
    // the runner-up-margin rule (see `darklight_core::confidence`).
    let ts_config = TwoStageConfig {
        threshold: 0.84,
        ..TwoStageConfig::default()
    };
    let engine = TwoStage::new(ts_config.clone());
    let results = engine.run(&reddit, &darkweb);

    // Find the best confirmed (True-verdict) pair.
    let mut best: Option<(f64, usize, usize)> = None;
    let mut emitted = 0;
    for m in &results {
        let Some(b) = m.best() else { continue };
        let Some(conf) = MatchConfidence::of(m) else {
            continue;
        };
        if !conf.accept(ts_config.threshold, 0.006) {
            continue;
        }
        emitted += 1;
        let dark = &darkweb.records[m.unknown];
        let open = &reddit.records[b.index];
        if judge_pair(&dark.alias, &dark.facts, &open.alias, &open.facts) == Verdict::True
            && best.is_none_or(|(s, _, _)| b.score > s)
        {
            best = Some((b.score, m.unknown, b.index));
        }
    }
    println!("{emitted} pairs above threshold");

    let Some((score, dark_idx, open_idx)) = best else {
        println!("no confirmed pair this run — try a larger scale");
        return;
    };
    let dark = &darkweb.records[dark_idx];
    let open = &reddit.records[open_idx];
    println!(
        "\nbest confirmed pair (score {score:.4}):\n  dark alias: {}\n  open alias: {}\n",
        dark.alias, open.alias
    );

    // Build the dossier from everything both aliases leaked (§V-D).
    let mut dark_user = User::new(dark.alias.clone(), dark.persona);
    dark_user.facts = dark.facts.clone();
    let mut open_user = User::new(open.alias.clone(), open.persona);
    open_user.facts = open.facts.clone();
    let dossier = build_profile([&dark_user, &open_user]);
    println!("{}", dossier.render());
    println!(
        "the dark alias is now tied to an open identity with {} disclosed attributes.",
        dossier.fact_count()
    );
}
