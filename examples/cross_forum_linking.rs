//! Cross-forum linking on a full synthetic world — the §V-B experiment in
//! miniature: break pseudo-anonymity between The Majestic Garden and the
//! Dream Market, then verify each emitted pair against the leaked identity
//! facts exactly as the authors did by hand.
//!
//! ```sh
//! cargo run --release --example cross_forum_linking
//! ```

use darklight::prelude::*;
use darklight_activity::profile::ProfileBuilder;
use darklight_core::dataset::DatasetBuilder;
use darklight_corpus::refine::{refine, RefineConfig};
use darklight_eval::verdict::VerdictCounts;

fn main() {
    // A small deterministic world with 5 personas active on both dark
    // forums.
    let config = ScenarioConfig::small();
    println!(
        "generating world: {} TMG / {} DM rich users, {} cross-forum personas...",
        config.tmg_users, config.dm_users, config.cross_tmg_dm
    );
    let scenario = ScenarioBuilder::new(config).build();

    // Polish + refine each forum, as §III-C / §IV-D prescribe.
    let polisher = Polisher::new(PolishConfig::default());
    let profiles = ProfileBuilder::new(ProfilePolicy::default());
    let builder = DatasetBuilder::new();
    let prepare = |raw: &Corpus| {
        let (polished, report) = polisher.polish(raw);
        println!(
            "  {}: {} raw users, {} bot accounts dropped, {} messages kept",
            raw.name,
            raw.len(),
            report.bot_accounts,
            report.kept_messages
        );
        builder.build(&refine(&polished, RefineConfig::default(), &profiles))
    };
    let tmg = prepare(&scenario.tmg);
    let dm = prepare(&scenario.dm);
    println!(
        "refined: TMG {} aliases, DM {} aliases",
        tmg.len(),
        dm.len()
    );

    // Run the two-stage pipeline: DM aliases are the unknowns.
    let ts_config = TwoStageConfig {
        threshold: 0.86, // calibrated for the small scale
        ..TwoStageConfig::default()
    };
    let engine = TwoStage::new(ts_config.clone());
    let results = engine.run(&tmg, &dm);

    let mut counts = VerdictCounts::default();
    println!("\nemitted pairs (threshold {}):", ts_config.threshold);
    for m in &results {
        let Some(best) = m.best() else { continue };
        if best.score < ts_config.threshold {
            continue;
        }
        let unknown = &dm.records[m.unknown];
        let known = &tmg.records[best.index];
        let verdict = judge_pair(&unknown.alias, &unknown.facts, &known.alias, &known.facts);
        counts.add(verdict);
        let truth = unknown.persona.is_some() && unknown.persona == known.persona;
        println!(
            "  dm:{:<22} tmg:{:<22} score {:.4}  verdict: {:<13} [{}]",
            unknown.alias,
            known.alias,
            best.score,
            verdict.to_string(),
            if truth { "same persona" } else { "DIFFERENT" }
        );
    }
    println!(
        "\nverdicts: {} True / {} Probably / {} Unclear / {} False (of {})",
        counts.true_,
        counts.probably,
        counts.unclear,
        counts.false_,
        counts.total()
    );
}
