//! Timezone-shift hunting with daily activity profiles — the extension in
//! the spirit of La Morgia et al. (ICDCS 2018), which the linking paper
//! builds its activity profiles on.
//!
//! Two aliases of one person observed through differently-configured forum
//! clocks produce activity profiles that are circular rotations of each
//! other. This example shows [`infer_shift`] recovering the rotation and
//! re-aligning the profiles before matching.
//!
//! ```sh
//! cargo run --release --example timezone_hunt
//! ```

use darklight::activity::profile::{ProfileBuilder, ProfilePolicy};
use darklight::activity::timezone::infer_shift;
use darklight::synth::temporal::TemporalGenome;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let builder = ProfileBuilder::new(ProfilePolicy::default().with_min_timestamps(10));

    println!("person    true-shift  inferred  raw-cos  aligned-cos");
    for person in 0..8 {
        let genome = TemporalGenome::sample(&mut rng);
        // Alias A: timestamps as recorded by a UTC forum.
        let ts_a = genome.sample_timestamps(&mut rng, 400);
        // Alias B: same person, but the second forum's clock runs N hours
        // ahead (mis-configured server, as often seen on hidden services).
        let clock_skew = (person % 5) as i64 * 3 - 6; // -6..6 hours
        let ts_b: Vec<i64> = genome
            .sample_timestamps(&mut rng, 400)
            .into_iter()
            .map(|t| t + clock_skew * 3_600)
            .collect();

        let pa = builder.build(&ts_a).expect("enough weekday posts");
        let pb = builder.build(&ts_b).expect("enough weekday posts");
        let m = infer_shift(&pa, &pb);
        println!(
            "{:<9} {:>+9}h {:>+8}h {:>8.3} {:>12.3}",
            format!("#{person}"),
            clock_skew,
            -m.shift_hours,
            m.unshifted_similarity,
            m.similarity
        );
    }
    println!(
        "\naligning profiles before cosine comparison recovers the match even when\n\
         forum clocks disagree — the pipeline normalizes all timestamps to UTC\n\
         for exactly this reason (§IV-B)."
    );
}
