//! `any::<T>()` — strategies for a type's full natural domain.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! arbitrary_int {
    ($($t:ty => $via:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $via as $t
            }
        }
    )*};
}

arbitrary_int!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
               i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.random::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = any::<u64>();
        assert_ne!(s.generate(&mut rng), s.generate(&mut rng));
    }

    #[test]
    fn any_bool_hits_both() {
        let mut rng = TestRng::seed_from_u64(4);
        let s = any::<bool>();
        let draws: Vec<bool> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }
}
