//! Fixed-size array strategies (`proptest::array::uniform24`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by the `uniformN` constructors.
#[derive(Clone, Debug)]
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

macro_rules! uniform_ctor {
    ($($name:ident => $n:literal),*) => {$(
        /// An array of independent draws from `element`.
        pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
            UniformArray { element }
        }
    )*};
}

uniform_ctor!(uniform4 => 4, uniform8 => 8, uniform16 => 16, uniform24 => 24, uniform32 => 32);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform24_shape() {
        let mut rng = TestRng::seed_from_u64(6);
        let s = uniform24(0u32..50);
        let a = s.generate(&mut rng);
        assert_eq!(a.len(), 24);
        assert!(a.iter().all(|&x| x < 50));
    }
}
