//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification for [`vec`]: a fixed size, `a..b`, or `a..=b`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range {r:?}");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range {r:?}");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for vectors whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_and_elements_in_range() {
        let mut rng = TestRng::seed_from_u64(8);
        let s = vec(0u32..5, 2..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn nested_vecs() {
        let mut rng = TestRng::seed_from_u64(9);
        let s = vec(vec(0u8..2, 1..3), 0..4);
        let v = s.generate(&mut rng);
        assert!(v.len() < 4);
    }
}
