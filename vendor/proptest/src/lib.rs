//! Offline stand-in for the subset of the `proptest` crate API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small property-testing framework with the same spelling as
//! upstream proptest for everything the test suite calls:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//!   [`prop_oneof!`];
//! * [`strategy::Strategy`] with `prop_map`, tuple strategies, integer and
//!   float range strategies, and [`strategy::Just`];
//! * regex-like `&str` strategies (`"[a-z ]{1,12}"`, `"\\PC{0,200}"`);
//! * [`collection::vec`], [`array::uniform24`], [`option::of`],
//!   [`arbitrary::any`].
//!
//! Differences from upstream: failing cases are reported with their seed
//! but are not shrunk, and `prop_assume!` skips the case instead of
//! drawing a replacement. Case count defaults to 64 and can be overridden
//! per block with `ProptestConfig::with_cases` or globally with the
//! `PROPTEST_CASES` environment variable; `PROPTEST_SEED` fixes the seed
//! for reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;

pub mod test_runner;

pub mod arbitrary;

pub mod collection;

pub mod array;

pub mod option;

pub mod string;

/// The glob import used by test files: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     // `#[test]` goes here in a real test file; omitted so this
///     // doctest can call the generated function directly.
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run_cases(
                    stringify!($name),
                    &__config,
                    |__rng| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with the generated inputs reported via the case seed) instead of
/// panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return Err(format!(
                        "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __l,
                        __r
                    ));
                }
            }
        }
    };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
