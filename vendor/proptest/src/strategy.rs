//! The [`Strategy`] trait and the combinators the test suite uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking; a
/// strategy simply draws a value from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies; see [`crate::prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+)
;
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(1)
    }

    #[test]
    fn just_and_map() {
        let s = Just(21u32).prop_map(|x| x * 2);
        assert_eq!(s.generate(&mut rng()), 42);
    }

    #[test]
    fn tuples_compose() {
        let s = (0u32..10, Just(7u8), 0.0f64..1.0);
        let (a, b, c) = s.generate(&mut rng());
        assert!(a < 10);
        assert_eq!(b, 7);
        assert!((0.0..1.0).contains(&c));
    }

    #[test]
    fn union_picks_each_arm() {
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        let mut r = rng();
        for _ in 0..100 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
