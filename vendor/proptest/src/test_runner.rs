//! Case execution: configuration, RNG, and the runner behind
//! [`crate::proptest!`].

pub use rand::rngs::StdRng as TestRng;
use rand::SeedableRng;

/// Per-block configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a, used to derive a stable per-test base seed from the test name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `case` for the configured number of cases. Each case gets a fresh,
/// deterministically seeded RNG; a failing case panics with its seed so it
/// can be replayed with `PROPTEST_SEED`.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), String>,
) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or_else(|| fnv1a(name.as_bytes()));
    for i in 0..cases as u64 {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(msg) = case(&mut rng) {
            panic!(
                "proptest {name}: case {i}/{cases} failed \
                 (replay with PROPTEST_SEED={base} PROPTEST_CASES={cases}):\n{msg}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_the_configured_number_of_cases() {
        let mut n = 0u32;
        run_cases("count", &ProptestConfig::with_cases(17), |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic_with_message() {
        run_cases("fail", &ProptestConfig::with_cases(3), |_| {
            Err("boom".to_string())
        });
    }

    #[test]
    fn seeds_differ_across_cases() {
        let mut first = Vec::new();
        run_cases("seeds", &ProptestConfig::with_cases(8), |rng| {
            first.push(rand::Rng::next_u64(rng));
            Ok(())
        });
        let mut uniq = first.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), first.len());
    }
}
