//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// The strategy returned by [`of`].
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Match upstream's default: None about a quarter of the time.
        if rng.chance(0.25) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// A strategy producing `None` or a value drawn from `inner`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::seed_from_u64(7);
        let s = of(0u32..10);
        let draws: Vec<Option<u32>> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.iter().any(Option::is_none));
        assert!(draws.iter().any(Option::is_some));
        assert!(draws.iter().flatten().all(|&x| x < 10));
    }
}
