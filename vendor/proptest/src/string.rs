//! Regex-like string generation for `&str` strategies.
//!
//! Supports the pattern subset the test suite uses: one character class —
//! either an explicit set like `[a-zA-Z0-9 _!.,]` (with `x-y` ranges) or
//! `\PC` (any non-control character) — followed by a `{min,max}`
//! repetition. Examples: `"[a-z]{1,8}"`, `"[a-z !.,]{10,80}"`,
//! `"\\PC{0,200}"`.

use crate::test_runner::TestRng;
use rand::Rng;

/// Non-ASCII characters mixed into `\PC` output so multi-byte UTF-8,
/// emoji, and non-Latin scripts are exercised.
const EXTENDED: &[char] = &[
    'é', 'ü', 'ß', 'ñ', 'ø', 'λ', 'Ω', 'д', 'ж', '中', '文', '日', '本', '€', '£', '½', '†', '–',
    '—', '“', '”', '…', '🙂', '😀', '🚀', '🔥', '❤', '✨',
];

#[derive(Debug, Clone)]
enum CharClass {
    /// Explicit characters collected from a `[...]` set.
    Set(Vec<char>),
    /// `\PC`: any non-control character.
    Printable,
}

impl CharClass {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharClass::Set(chars) => chars[rng.index(chars.len())],
            CharClass::Printable => {
                // Mostly ASCII so text-shaped properties (tokenization,
                // language filters) see realistic input, with a steady
                // trickle of multi-byte characters.
                if rng.chance(0.85) {
                    char::from(rng.random_range(0x20u8..0x7F))
                } else {
                    EXTENDED[rng.index(EXTENDED.len())]
                }
            }
        }
    }
}

fn parse(pattern: &str) -> (CharClass, usize, usize) {
    let (class, rest) = if let Some(rest) = pattern.strip_prefix("\\PC") {
        (CharClass::Printable, rest)
    } else if let Some(body) = pattern.strip_prefix('[') {
        let end = body
            .find(']')
            .unwrap_or_else(|| panic!("unterminated character class in pattern {pattern:?}"));
        let mut chars = Vec::new();
        let set: Vec<char> = body[..end].chars().collect();
        let mut i = 0;
        while i < set.len() {
            if i + 2 < set.len() && set[i + 1] == '-' {
                let (lo, hi) = (set[i] as u32, set[i + 2] as u32);
                assert!(lo <= hi, "descending range in pattern {pattern:?}");
                chars.extend((lo..=hi).filter_map(char::from_u32));
                i += 3;
            } else {
                chars.push(set[i]);
                i += 1;
            }
        }
        assert!(!chars.is_empty(), "empty character class in {pattern:?}");
        (CharClass::Set(chars), &body[end + 1..])
    } else {
        panic!("unsupported string pattern {pattern:?} (expected [..] or \\PC)");
    };

    let (min, max) = if let Some(reps) = rest.strip_prefix('{') {
        let end = reps
            .find('}')
            .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"));
        assert!(
            reps[end + 1..].is_empty(),
            "trailing garbage after repetition in {pattern:?}"
        );
        let body = &reps[..end];
        match body.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().expect("repetition lower bound"),
                hi.trim().parse().expect("repetition upper bound"),
            ),
            None => {
                let n = body.trim().parse().expect("repetition count");
                (n, n)
            }
        }
    } else {
        assert!(
            rest.is_empty(),
            "trailing garbage after character class in {pattern:?}"
        );
        (1, 1)
    };
    assert!(min <= max, "descending repetition in {pattern:?}");
    (class, min, max)
}

/// Generates one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let (class, min, max) = parse(pattern);
    let len = rng.random_range(min..=max);
    (0..len).map(|_| class.sample(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(12)
    }

    #[test]
    fn class_with_ranges_and_literals() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z0-9 !.,_]{1,12}", &mut r);
            assert!((1..=12).contains(&s.chars().count()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || " !.,_".contains(c)));
        }
    }

    #[test]
    fn printable_class_has_no_controls() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("\\PC{0,60}", &mut r);
            assert!(s.chars().count() <= 60);
            assert!(!s.chars().any(char::is_control));
        }
    }

    #[test]
    fn printable_class_eventually_emits_multibyte() {
        let mut r = rng();
        let mut saw_multibyte = false;
        for _ in 0..100 {
            let s = generate_from_pattern("\\PC{0,60}", &mut r);
            saw_multibyte |= s.chars().any(|c| c.len_utf8() > 1);
        }
        assert!(saw_multibyte);
    }

    #[test]
    fn zero_length_allowed() {
        let mut r = rng();
        let mut saw_empty = false;
        for _ in 0..200 {
            saw_empty |= generate_from_pattern("[a-z]{0,2}", &mut r).is_empty();
        }
        assert!(saw_empty);
    }
}
