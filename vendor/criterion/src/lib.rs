//! Offline stand-in for the subset of the `criterion` crate API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal benchmark harness with criterion's spelling:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`BatchSize`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros (both the simple and the `name/config/targets` forms).
//!
//! It measures a median over `sample_size` timed samples after a short
//! warm-up and prints one line per benchmark — no statistics engine, no
//! plots, no comparison to saved baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How [`Bencher::iter_batched`] amortizes setup cost. All variants behave
/// identically here: setup runs once per sample, outside the timed section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: usize,
    median_ns: u128,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            median_ns: 0,
        }
    }

    /// Times `routine`, recording the median over the configured samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: one untimed call.
        let _ = routine();
        let mut times: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            times.push(start.elapsed().as_nanos());
            drop(out);
        }
        times.sort_unstable();
        self.median_ns = times[times.len() / 2];
    }

    /// Times `routine` on fresh inputs built by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let _ = routine(setup());
        let mut times: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            times.push(start.elapsed().as_nanos());
            drop(out);
        }
        times.sort_unstable();
        self.median_ns = times[times.len() / 2];
    }
}

fn human(ns: u128) -> String {
    let d = Duration::from_nanos(ns as u64);
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", d.as_secs_f64())
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(
        &mut self,
        name: &str,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        println!("{name:<40} median {}", human(b.median_ns));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b, input);
        println!("{full:<40} median {}", human(b.median_ns));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

/// Declares a benchmark group function, in either criterion form:
/// `criterion_group!(benches, f, g)` or
/// `criterion_group! { name = benches; config = ...; targets = f, g }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_chains() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1))
            .bench_function("alloc", |b| {
                b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput)
            });
    }

    #[test]
    fn groups_run() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &n| b.iter(|| n * 2));
        g.finish();
    }

    mod as_macro_user {
        use crate as criterion;
        use criterion::Criterion;

        fn target(c: &mut Criterion) {
            c.bench_function("macro_noop", |b| b.iter(|| ()));
        }

        criterion_group! {
            name = block_form;
            config = Criterion::default().sample_size(2);
            targets = target
        }

        criterion_group!(simple_form, target);

        #[test]
        fn both_macro_forms_compile_and_run() {
            block_form();
            simple_form();
        }
    }
}
