//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, dependency-free implementation of the surface the
//! code actually calls:
//!
//! * [`Rng`] — `random`, `random_range` (half-open and inclusive integer
//!   and float ranges), `shuffle`, `index`, `chance`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — a xoshiro256++ generator seeded via SplitMix64.
//!
//! Everything is deterministic per seed, which the synthetic-world
//! generator and the test suite rely on. Statistical quality is that of
//! xoshiro256++ (passes BigCrush), far beyond what corpus synthesis needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of randomness. The only required method is [`Rng::next_u64`];
/// every sampling helper is derived from it.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of type `T` (see [`Standard`]).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform sample from `range`. Supports `a..b` and `a..=b` for the
    /// primitive integer types and `a..b` for `f32`/`f64`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Fisher–Yates shuffle of `slice` in place.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = uniform_below(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniform index into a collection of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    fn index(&mut self, len: usize) -> usize
    where
        Self: Sized,
    {
        assert!(len > 0, "cannot sample an index from an empty collection");
        uniform_below(self, len as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn chance(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their "natural" distribution:
/// full range for integers and `bool`, the half-open unit interval for
/// floats.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from `rng`, uniform over the range.
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Scalars with a uniform sampler over a bounded range. The blanket
/// [`SampleRange`] impls below are generic over this trait — that shape
/// matters: it ties the range's element type to `random_range`'s return
/// type during inference, so `base_i64 + rng.random_range(0..60)`
/// resolves the literal range to `Range<i64>` exactly as real rand does.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform sample from `[start, end)`; panics when empty.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform sample from `[start, end]`; panics when empty.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Debiased uniform sample in `[0, n)` via Lemire's widening-multiply
/// rejection method. `n` must be non-zero.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let low = m as u64;
        if low >= n || low >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(
                    start < end,
                    "cannot sample from empty range {start}..{end}"
                );
                let span = (end as i128 - start as i128) as u64;
                start.wrapping_add(uniform_below(rng, span) as $t)
            }

            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(
                    start <= end,
                    "cannot sample from empty range {start}..={end}"
                );
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(
                    start < end,
                    "cannot sample from empty range {start}..{end}"
                );
                let unit: $t = <$t as Standard>::sample_standard(rng);
                let v = start + (end - start) * unit;
                // Guard the open upper bound against rounding.
                if v < end { v } else { start }
            }

            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(
                    start <= end,
                    "cannot sample from empty range {start}..={end}"
                );
                let unit: $t = <$t as Standard>::sample_standard(rng);
                start + (end - start) * unit
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// The provided generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256++, seeded through SplitMix64.
    ///
    /// ```
    /// use rand::{rngs::StdRng, Rng, SeedableRng};
    /// let mut a = StdRng::seed_from_u64(7);
    /// let mut b = StdRng::seed_from_u64(7);
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// ```
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the reference seeding procedure for the
            // xoshiro family.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-8..=9);
            assert!((-8..=9).contains(&y));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn index_and_chance() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            assert!(rng.index(7) < 7);
        }
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_impl(rng: &mut impl Rng) -> u64 {
            // Re-borrowing must also satisfy `impl Rng`.
            fn nested(rng: &mut impl Rng) -> u64 {
                rng.random_range(0..100u64)
            }
            nested(rng)
        }
        let mut rng = StdRng::seed_from_u64(2);
        assert!(takes_impl(&mut rng) < 100);
    }
}
