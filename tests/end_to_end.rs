//! End-to-end integration: generate a world, run the paper's pipeline,
//! and check the headline behaviours — alter-ego re-identification,
//! threshold transfer, activity-feature gains, verdict simulation.
//!
//! All tests share one prepared small-scale world (generation dominates
//! the runtime).

use darklight::prelude::*;
use darklight_bench::{prepare_world, World};
use darklight_core::dataset::Dataset;
use darklight_eval::curve::PrCurve;
use darklight_eval::metrics::{labeled_best_matches, reduction_accuracy_at_k};
use std::sync::OnceLock;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| prepare_world(&ScenarioConfig::small()))
}

fn engine() -> TwoStage {
    TwoStage::new(TwoStageConfig {
        threads: 2,
        ..TwoStageConfig::default()
    })
}

fn wrap(stage1: Vec<Vec<darklight_core::attrib::Ranked>>) -> Vec<RankedMatch> {
    stage1
        .into_iter()
        .enumerate()
        .map(|(u, s1)| RankedMatch {
            unknown: u,
            stage1: s1.clone(),
            stage2: s1,
        })
        .collect()
}

#[test]
fn alter_egos_are_reidentified() {
    let w = world();
    let known = &w.reddit.originals;
    let ae = &w.reddit.alter_egos;
    let results = wrap(engine().reduce(known, ae));
    let acc10 = reduction_accuracy_at_k(&results, known, ae, 10);
    assert!(acc10 > 0.85, "acc@10 = {acc10}");
    let acc1 = reduction_accuracy_at_k(&results, known, ae, 1);
    assert!(acc1 > 0.5, "acc@1 = {acc1}");
    assert!(acc10 >= acc1);
}

#[test]
fn activity_profile_improves_short_text_attribution() {
    let w = world();
    let known = w.reddit.originals.with_word_budget(400);
    let ae = w.reddit.alter_egos.with_word_budget(400);
    let text_only = wrap(
        TwoStage::new(
            TwoStageConfig {
                threads: 2,
                ..TwoStageConfig::default()
            }
            .without_activity(),
        )
        .reduce(&known, &ae),
    );
    let with_activity = wrap(engine().reduce(&known, &ae));
    let a_text = reduction_accuracy_at_k(&text_only, &known, &ae, 10);
    let a_all = reduction_accuracy_at_k(&with_activity, &known, &ae, 10);
    assert!(
        a_all > a_text - 0.02,
        "activity hurt badly: text {a_text} vs all {a_all}"
    );
}

#[test]
fn more_words_means_higher_accuracy() {
    let w = world();
    let mut prev = 0.0;
    for words in [300, 800, 1500] {
        let known = w.reddit.originals.with_word_budget(words);
        let ae = w.reddit.alter_egos.with_word_budget(words);
        let results = wrap(engine().reduce(&known, &ae));
        let acc = reduction_accuracy_at_k(&results, &known, &ae, 10);
        assert!(
            acc >= prev - 0.05,
            "accuracy dropped from {prev} to {acc} at {words} words"
        );
        prev = acc;
    }
    assert!(prev > 0.8, "final accuracy {prev}");
}

#[test]
fn two_stage_scores_separate_true_from_false_pairs() {
    let w = world();
    let known = &w.reddit.originals;
    let ae = &w.reddit.alter_egos;
    let results = engine().run(known, ae);
    let labeled = labeled_best_matches(&results, known, ae);
    let correct_mean = mean(labeled.iter().filter(|l| l.correct).map(|l| l.score));
    let wrong_mean = mean(labeled.iter().filter(|l| !l.correct).map(|l| l.score));
    // At toy scale wrong best-matches are near-misses, so the mean gap is
    // small; the AUC bound below is the substantive separation check.
    assert!(
        correct_mean > wrong_mean,
        "no separation: correct {correct_mean} wrong {wrong_mean}"
    );
    let curve = PrCurve::from_labeled(&labeled);
    assert!(curve.auc() > 0.7, "AUC {}", curve.auc());
}

#[test]
fn threshold_transfers_across_forums() {
    let w = world();
    // Calibrate on Reddit alter-egos.
    let reddit_curve = {
        let r = engine().run(&w.reddit.originals, &w.reddit.alter_egos);
        PrCurve::from_labeled(&labeled_best_matches(
            &r,
            &w.reddit.originals,
            &w.reddit.alter_egos,
        ))
    };
    let Some(op) = reddit_curve
        .threshold_for_recall(0.8)
        .or_else(|| reddit_curve.best_f1())
    else {
        panic!("no operating point found");
    };
    // Apply to TMG: precision should stay usable (the paper's claim is the
    // *same* threshold works on every forum).
    let tmg_curve = {
        let r = engine().run(&w.tmg.originals, &w.tmg.alter_egos);
        PrCurve::from_labeled(&labeled_best_matches(
            &r,
            &w.tmg.originals,
            &w.tmg.alter_egos,
        ))
    };
    let p = tmg_curve.at_threshold(op.threshold);
    assert!(
        p.precision > 0.6,
        "threshold {} gives TMG precision {}",
        op.threshold,
        p.precision
    );
}

#[test]
fn cross_forum_personas_link_and_verdicts_confirm() {
    let w = world();
    let (darkweb, _) = w.darkweb();
    let known = &w.reddit.originals;
    let results = engine().run(known, &darkweb);
    // Among unknowns whose persona exists on Reddit, the majority should
    // rank their true alias first or second.
    let mut eligible = 0;
    let mut top2 = 0;
    let mut confirmed = 0;
    for m in &results {
        let u = &darkweb.records[m.unknown];
        let Some(p) = u.persona else { continue };
        if !known.records.iter().any(|r| r.persona == Some(p)) {
            continue;
        }
        eligible += 1;
        let hit = m
            .stage2
            .iter()
            .take(2)
            .any(|c| known.records[c.index].persona == Some(p));
        if hit {
            top2 += 1;
        }
        if let Some(best) = m.best() {
            let k = &known.records[best.index];
            if judge_pair(&u.alias, &u.facts, &k.alias, &k.facts) == Verdict::True
                && k.persona == Some(p)
            {
                confirmed += 1;
            }
        }
    }
    assert!(eligible >= 5, "only {eligible} eligible cross personas");
    assert!(
        top2 * 2 >= eligible,
        "only {top2}/{eligible} cross personas in top-2"
    );
    assert!(confirmed >= 1, "no pair confirmed by verdict simulation");
}

#[test]
fn merged_darkweb_reduction_works() {
    let w = world();
    let (darkweb, ae_darkweb) = w.darkweb();
    let results = wrap(engine().reduce(&darkweb, &ae_darkweb));
    let acc = reduction_accuracy_at_k(&results, &darkweb, &ae_darkweb, 10);
    assert!(acc > 0.85, "darkweb acc@10 = {acc}");
}

#[test]
fn dataset_shapes_match_table_iv_structure() {
    let w = world();
    for fd in [&w.reddit, &w.tmg, &w.dm] {
        assert!(fd.alter_egos.len() <= fd.originals.len());
        assert!(fd.originals.len() <= fd.polished_users);
        assert!(fd.polished_users <= fd.raw_users);
        // Every alter-ego's persona has its original in the same forum.
        for r in &fd.alter_egos.records {
            let p = r.persona.expect("alter egos are persona-backed");
            assert!(
                fd.originals.records.iter().any(|o| o.persona == Some(p)),
                "orphan alter-ego {}",
                r.alias
            );
        }
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = iter.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Helper export check: the facade's prelude exposes what the README
/// promises.
#[test]
fn prelude_is_usable() {
    let _cfg: ScenarioConfig = ScenarioConfig::small();
    let _polish: PolishConfig = PolishConfig::default();
    let _fc: FeatureConfig = FeatureConfig::final_stage();
    let _v: Verdict = Verdict::Unclear;
    let _ = Dataset::new("x", Vec::new());
}
