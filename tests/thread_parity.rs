//! The determinism contract of the worker-pool refactor: running any
//! stage of the pipeline on N threads produces output bit-identical to
//! running it on 1 thread. `darklight-par` preserves positional order
//! and global indices, vocabulary fitting merges integer counts (so the
//! shard partition cannot change the selected terms), and per-unknown
//! work never depends on scheduling — these tests pin all of that
//! end-to-end for reduce, rescore, the batched driver, and the full
//! `Linker::link` flow.

use darklight::core::batch::{
    budget_overhead_bytes, budget_per_candidate_bytes, run_batched, run_batched_checkpointed,
    BatchConfig, BatchError, CheckpointSpec,
};
use darklight::core::dataset::{Dataset, DatasetBuilder};
use darklight::core::linker::{Linker, LinkerConfig};
use darklight::core::twostage::{TwoStage, TwoStageConfig};
use darklight::corpus::model::{Corpus, Post, User};
use darklight::govern::{Deadline, GovernConfig, GovernError, MemoryBudget};

const THREAD_COUNTS: [usize; 2] = [2, 7];

/// Eight distinctive-vocabulary users per forum; user N of each corpus
/// is the same persona. Eight users means 7 threads leave a ragged
/// chunk split, which is exactly the shape the old offset bug broke.
fn corpus(name: &str, salt: usize) -> Corpus {
    let mut c = Corpus::new(name);
    let base = 1_486_375_200i64;
    let vocabs: [[&str; 4]; 8] = [
        ["harpsichord", "madrigal", "counterpoint", "basso"],
        ["terrarium", "isopods", "springtails", "bioactive"],
        ["leatherwork", "awl", "burnishing", "saddle"],
        ["homebrew", "fermenter", "sparge", "lauter"],
        ["mycology", "substrate", "inoculation", "flush"],
        ["letterpress", "platen", "typeface", "quoin"],
        ["falconry", "jesses", "mews", "tiercel"],
        ["orrery", "gnomon", "astrolabe", "ecliptic"],
    ];
    for pid in 0..8u64 {
        let mut u = User::new(format!("{name}_user{pid}"), Some(pid));
        let vocab = vocabs[pid as usize];
        for i in 0..70i64 {
            let ts =
                base + (i / 5) * 7 * 86_400 + (i % 5) * 86_400 + (pid as i64) * 7_200 + salt as i64;
            let w1 = vocab[i as usize % 4];
            let w2 = vocab[(i as usize + 1) % 4];
            let ma = char::from(b'a' + (i % 26) as u8);
            let mb = char::from(b'a' + ((i / 26) % 26) as u8);
            u.posts.push(Post::new(
                format!(
                    "today the {w1} project moved forward again and i compared several {w2} \
                     methods with friends near batch {ma}{mb} before writing longer notes \
                     about {w1} techniques and the tools involved"
                ),
                ts,
            ));
        }
        c.users.push(u);
    }
    c
}

fn engine(threads: usize) -> TwoStage {
    TwoStage::new(TwoStageConfig {
        k: 3,
        threshold: 0.3,
        threads,
        ..TwoStageConfig::default()
    })
}

fn datasets() -> (Dataset, Dataset) {
    let builder = DatasetBuilder::new();
    (
        builder.build(&corpus("forum_a", 0)),
        builder.build(&corpus("forum_b", 1800)),
    )
}

#[test]
fn reduce_identical_across_thread_counts() {
    let (known, unknown) = datasets();
    let baseline = engine(1).reduce(&known, &unknown);
    assert!(baseline.iter().any(|c| !c.is_empty()));
    for threads in THREAD_COUNTS {
        assert_eq!(
            engine(threads).reduce(&known, &unknown),
            baseline,
            "reduce diverged at {threads} threads"
        );
    }
}

#[test]
fn rescore_identical_across_thread_counts() {
    let (known, unknown) = datasets();
    let stage1 = engine(1).reduce(&known, &unknown);
    let baseline = engine(1).rescore(&known, &unknown, stage1.clone());
    for threads in THREAD_COUNTS {
        assert_eq!(
            engine(threads).rescore(&known, &unknown, stage1.clone()),
            baseline,
            "rescore diverged at {threads} threads"
        );
    }
}

#[test]
fn run_and_link_identical_across_thread_counts() {
    let (known, unknown) = datasets();
    let run1 = engine(1).run(&known, &unknown);
    let link1 = engine(1).link(&known, &unknown);
    assert!(!link1.is_empty(), "scenario must produce links to compare");
    for threads in THREAD_COUNTS {
        let e = engine(threads);
        assert_eq!(e.run(&known, &unknown), run1, "{threads} threads");
        assert_eq!(e.link(&known, &unknown), link1, "{threads} threads");
    }
}

#[test]
fn run_batched_identical_across_thread_counts() {
    let (known, unknown) = datasets();
    // k = 2 with batches of 3 keeps pools shrinking across multiple
    // rounds while letting per-unknown pools diverge after round one —
    // the divergent-pool branch is the parallel path under test.
    let small_engine = |threads| {
        TwoStage::new(TwoStageConfig {
            k: 2,
            threshold: 0.3,
            threads,
            ..TwoStageConfig::default()
        })
    };
    let batch = BatchConfig { batch_size: 3 };
    let baseline = run_batched(&small_engine(1), &batch, &known, &unknown).unwrap();
    for threads in THREAD_COUNTS {
        assert_eq!(
            run_batched(&small_engine(threads), &batch, &known, &unknown).unwrap(),
            baseline,
            "run_batched diverged at {threads} threads"
        );
    }
}

#[test]
fn governed_budget_identical_to_derived_fixed_batch_across_threads() {
    let (known, unknown) = datasets();
    // Room for exactly three worst-case candidates: the derived batch
    // size matches the multi-round divergent-pool shape above, and a
    // conservatively derived size can never trip the pressure ladder,
    // so governed and fixed runs must be byte-identical at any thread
    // count.
    let budget = MemoryBudget::from_bytes(
        budget_overhead_bytes(&unknown) + 3 * budget_per_candidate_bytes(&known),
    )
    .unwrap();
    let derived = BatchConfig::derive(&budget, &known, &unknown).unwrap();
    assert_eq!(derived.batch_size, 3, "world changed under the test");
    let governed_engine = |threads| {
        TwoStage::new(TwoStageConfig {
            k: 2,
            threshold: 0.3,
            threads,
            govern: GovernConfig {
                budget: Some(budget),
                ..GovernConfig::default()
            },
            ..TwoStageConfig::default()
        })
    };
    let fixed_engine = |threads| {
        TwoStage::new(TwoStageConfig {
            k: 2,
            threshold: 0.3,
            threads,
            ..TwoStageConfig::default()
        })
    };
    let baseline = run_batched(&fixed_engine(1), &derived, &known, &unknown).unwrap();
    for threads in [1, 2, 7] {
        assert_eq!(
            run_batched(&governed_engine(threads), &derived, &known, &unknown).unwrap(),
            baseline,
            "governed run diverged at {threads} threads"
        );
    }
}

#[test]
fn deadline_expiry_and_resume_identical_across_threads() {
    let (known, unknown) = datasets();
    let batch = BatchConfig { batch_size: 3 };
    let engine_with = |threads, deadline: Deadline| {
        TwoStage::new(TwoStageConfig {
            k: 2,
            threshold: 0.3,
            threads,
            govern: GovernConfig {
                deadline,
                ..GovernConfig::default()
            },
            ..TwoStageConfig::default()
        })
    };
    let baseline =
        run_batched(&engine_with(1, Deadline::none()), &batch, &known, &unknown).unwrap();
    for threads in [1usize, 2, 7] {
        let path = std::env::temp_dir().join(format!(
            "darklight_parity_deadline_{threads}_{}.json",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let spec = CheckpointSpec::new(path.clone());
        // One round is allowed, then the deadline trips at the next
        // round boundary — identically at every thread count, because
        // workers only ever observe the already-tripped flag.
        let strict = engine_with(threads, Deadline::after_rounds(1));
        let err = run_batched_checkpointed(&strict, &batch, &known, &unknown, &spec).unwrap_err();
        assert!(
            matches!(
                err,
                BatchError::Govern(GovernError::DeadlineExpired { rounds_done: 1 })
            ),
            "at {threads} threads: {err}"
        );
        assert!(path.exists(), "expiry must leave a checkpoint behind");
        let relaxed = engine_with(threads, Deadline::none());
        let resumed = run_batched_checkpointed(&relaxed, &batch, &known, &unknown, &spec).unwrap();
        assert_eq!(
            resumed, baseline,
            "deadline + resume diverged at {threads} threads"
        );
        assert!(!path.exists(), "checkpoint removed after the resumed run");
    }
}

#[test]
fn full_linker_identical_across_thread_counts() {
    let known = corpus("forum_a", 0);
    let unknown = corpus("forum_b", 1800);
    let config = |threads: usize| {
        let mut cfg = LinkerConfig::default();
        cfg.two_stage.k = 3;
        cfg.two_stage.threshold = 0.3;
        cfg.two_stage.threads = threads;
        cfg
    };
    let baseline = Linker::new(config(1)).link(&known, &unknown);
    assert!(
        !baseline.is_empty(),
        "scenario must produce links to compare"
    );
    for threads in THREAD_COUNTS {
        assert_eq!(
            Linker::new(config(threads)).link(&known, &unknown),
            baseline,
            "Linker::link diverged at {threads} threads"
        );
    }
}
