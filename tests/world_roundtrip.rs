//! Integration: TSV persistence of a generated world, and the obfuscation
//! defence measured end-to-end through the public API.

use darklight::corpus::io::{read_corpus, write_corpus};
use darklight::prelude::*;
use darklight::text::obfuscate::{ObfuscateConfig, Obfuscator};
use darklight_bench::{prepare_forum, prepare_world, World};
use darklight_eval::metrics::reduction_accuracy_at_k;
use std::sync::OnceLock;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| prepare_world(&ScenarioConfig::small()))
}

#[test]
fn generated_world_round_trips_through_tsv() {
    let w = world();
    for corpus in [&w.scenario.reddit, &w.scenario.tmg, &w.scenario.dm] {
        let mut buf = Vec::new();
        write_corpus(corpus, &mut buf).expect("serialize");
        let back = read_corpus(buf.as_slice()).expect("parse");
        assert_eq!(&back, corpus);
    }
}

#[test]
fn linking_results_survive_tsv_round_trip() {
    let w = world();
    // Persist + reload the raw corpora, re-prepare, and check the pipeline
    // emits identical matches.
    let reload = |c: &Corpus| {
        let mut buf = Vec::new();
        write_corpus(c, &mut buf).unwrap();
        read_corpus(buf.as_slice()).unwrap()
    };
    let tmg2 = prepare_forum(&reload(&w.scenario.tmg));
    let dm2 = prepare_forum(&reload(&w.scenario.dm));
    let engine = TwoStage::new(TwoStageConfig {
        threads: 2,
        ..TwoStageConfig::default()
    });
    let a = engine.run(&w.tmg.originals, &w.dm.originals);
    let b = engine.run(&tmg2.originals, &dm2.originals);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.best().map(|r| r.index), y.best().map(|r| r.index));
    }
}

#[test]
fn obfuscation_degrades_attribution() {
    let w = world();
    let known = &w.reddit.originals;
    let ae_corpus = &w.reddit.alter_egos_corpus;
    let engine = TwoStage::new(TwoStageConfig {
        threads: 2,
        ..TwoStageConfig::default()
    });

    // Baseline accuracy on the as-written alter egos.
    let plain = engine.reduce(known, &w.reddit.alter_egos);
    let wrap = |stage1: Vec<Vec<darklight::core::attrib::Ranked>>| -> Vec<RankedMatch> {
        stage1
            .into_iter()
            .enumerate()
            .map(|(u, s1)| RankedMatch {
                unknown: u,
                stage1: s1.clone(),
                stage2: s1,
            })
            .collect()
    };
    let acc_plain = reduction_accuracy_at_k(&wrap(plain), known, &w.reddit.alter_egos, 1);

    // Scrub the alter egos' text and re-run.
    let obfuscator = Obfuscator::new(ObfuscateConfig::aggressive());
    let mut scrubbed = ae_corpus.clone();
    for user in &mut scrubbed.users {
        for post in &mut user.posts {
            post.text = obfuscator.apply(&post.text);
        }
    }
    let scrubbed_ds = darklight::core::dataset::DatasetBuilder::new().build(&scrubbed);
    let obf = engine.reduce(known, &scrubbed_ds);
    let acc_obf = reduction_accuracy_at_k(&wrap(obf), known, &scrubbed_ds, 1);

    assert!(
        acc_obf < acc_plain,
        "obfuscation did not degrade accuracy: plain {acc_plain} vs scrubbed {acc_obf}"
    );
    // But the activity side-channel keeps attribution above chance:
    // top-1 over N known users at chance would be ~1/N.
    let chance = 1.0 / known.len() as f64;
    assert!(
        acc_obf > chance * 3.0,
        "obfuscation should not reduce accuracy to chance (acc {acc_obf}, chance {chance})"
    );
}
