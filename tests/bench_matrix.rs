//! End-to-end pin of the `darklight bench-matrix` regression gate: a
//! generated baseline reproduces bit-for-bit under `--check` (exit 0), a
//! seeded perturbation fails the gate (exit 1) with a typed per-cell
//! report, and a missing baseline fails without running the cell.

use std::path::Path;
use std::process::{Command, Output};

const SCENARIOS: &str = "clean,sparse-history";

fn bench_matrix(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_darklight"))
        .arg("bench-matrix")
        .args(args)
        .output()
        .expect("spawn darklight bench-matrix")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "darklight_bench_matrix_{tag}_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn roundtrip_check_passes_and_perturbation_fails() {
    let dir = temp_dir("roundtrip");
    let dir_s = dir.to_str().unwrap();

    // Write two tiny-scale baselines.
    let out = bench_matrix(&["--scenarios", SCENARIOS, "--scales", "t", "--out", dir_s]);
    assert!(out.status.success(), "write mode failed: {out:?}");
    for cell in ["clean_t", "sparse-history_t"] {
        assert!(
            dir.join(format!("BENCH_{cell}.json")).is_file(),
            "missing baseline for {cell}"
        );
    }

    // The same triple reproduces bit-for-bit: the gate passes. The
    // wall-clock axis gets a huge tolerance — tiny-scale cells on a
    // loaded test machine routinely swing ±25%, and this test pins the
    // deterministic sections, not the machine's scheduler.
    let out = bench_matrix(&[
        "--scenarios",
        SCENARIOS,
        "--scales",
        "t",
        "--throughput-tolerance",
        "90",
        "--check",
        dir_s,
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "check must pass, got: {out:?}");
    assert!(stdout.contains("cell clean_t: pass"), "stdout: {stdout}");
    assert!(
        stdout.contains("cell sparse-history_t: pass"),
        "stdout: {stdout}"
    );

    // A perturbed seed generates a different world: the deterministic
    // sections differ and the gate must fail with exit code 1.
    let out = bench_matrix(&[
        "--scenarios",
        SCENARIOS,
        "--scales",
        "t",
        "--seed",
        "12345",
        "--throughput-tolerance",
        "90",
        "--check",
        dir_s,
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "perturbed seed must fail the gate: {out:?}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL"), "stdout: {stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_baseline_fails_the_gate() {
    let dir = temp_dir("missing");
    std::fs::create_dir_all(&dir).unwrap();
    let out = bench_matrix(&[
        "--scenarios",
        "clean",
        "--scales",
        "t",
        "--check",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("cell clean_t: FAIL missing baseline"),
        "stdout: {stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn large_scale_requires_opt_in() {
    let out = bench_matrix(&["--scales", "l", "--out", "/tmp/never-written"]);
    assert_eq!(out.status.code(), Some(2), "usage error expected: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--include-large"), "stderr: {stderr}");
    assert!(!Path::new("/tmp/never-written").exists());
}

#[test]
fn unknown_scenario_is_a_usage_error() {
    let out = bench_matrix(&["--scenarios", "bogus", "--scales", "t"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
