//! Fail-fast counterpart to `tests/fault_injection.rs`: a panic in the
//! stage-2 rescore worker must abort the run (wrong answers are worse
//! than no answers once candidates are being re-scored), re-raised on
//! the caller thread with the original payload attached.
//!
//! Lives in its own binary because `DARKLIGHT_FAULT_PANICS` is parsed
//! once per process and a rescore injection would poison every
//! skip-tolerant test sharing the process.

use darklight::core::dataset::{Dataset, DatasetBuilder};
use darklight::core::twostage::{TwoStage, TwoStageConfig};
use darklight::corpus::model::{Corpus, Post, User};

fn init_faults() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| std::env::set_var("DARKLIGHT_FAULT_PANICS", "twostage.rescore:0"));
}

fn world() -> (Dataset, Dataset) {
    let vocabs = [
        "kayak paddle rapids portage",
        "espresso grinder portafilter crema",
        "orchid repotting perlite humidity",
    ];
    let mut known = Corpus::new("known");
    let mut unknown = Corpus::new("unknown");
    let base = 1_486_375_200i64;
    for (pid, vocab) in vocabs.iter().enumerate() {
        let words: Vec<&str> = vocab.split(' ').collect();
        for (half, corpus) in [(0usize, &mut known), (1, &mut unknown)] {
            let mut u = User::new(format!("user{pid}_{half}"), Some(pid as u64));
            for i in 0..35i64 {
                let ts = base + (i / 5) * 7 * 86_400 + (i % 5) * 86_400;
                let w1 = words[i as usize % words.len()];
                let w2 = words[(i as usize + 1) % words.len()];
                u.posts.push(Post::new(
                    format!("my notes about {w1} mention the {w2} setup and more {w1} details"),
                    ts,
                ));
            }
            corpus.users.push(u);
        }
    }
    let b = DatasetBuilder::new();
    (b.build(&known), b.build(&unknown))
}

#[test]
#[should_panic(expected = "stage-2 rescore failed")]
fn rescore_panic_fails_fast_with_payload() {
    init_faults();
    let (known, unknown) = world();
    let engine = TwoStage::new(TwoStageConfig {
        k: 2,
        threads: 2,
        ..TwoStageConfig::default()
    });
    let _ = engine.run(&known, &unknown);
}
