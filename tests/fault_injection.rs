//! Fault-injection suite: proves each degradation path of the failure
//! model (DESIGN.md §9) deterministically, in one process.
//!
//! `DARKLIGHT_FAULT_PANICS` is parsed once per process, so every test in
//! this binary shares one injection spec, installed by [`init_faults`]
//! before the first pipeline call. The spec targets only *skip-tolerant*
//! sites — `polish.user` (user dropped) and `twostage.vectorize_known`
//! (vector zeroed) — so runs complete in degraded form; the fail-fast
//! rescore path has its own binary (`tests/fault_failfast.rs`) because
//! its injected panic would poison every other test here.
//!
//! Because an injection fires on (site, item-index) alone, a degraded
//! run is as deterministic as a healthy one: the same items are hit at
//! every thread count. The thread-parity assertions below pin that.

use darklight::core::batch::{
    run_batched, run_batched_checkpointed, BatchConfig, BatchError, CheckpointSpec,
};
use darklight::core::dataset::{Dataset, DatasetBuilder};
use darklight::core::twostage::{TwoStage, TwoStageConfig};
use darklight::corpus::io::{read_corpus_lenient, IssueKind, LenientConfig};
use darklight::corpus::model::{Corpus, Post, User};
use darklight::corpus::polish::{PolishConfig, Polisher};
use darklight::obs::PipelineMetrics;
use std::path::PathBuf;

/// Injection spec shared by the whole binary: drop polish user 1, zero
/// known vector 1 in every stage-1 fit.
const FAULTS: &str = "polish.user:1,twostage.vectorize_known:1";

fn init_faults() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| std::env::set_var("DARKLIGHT_FAULT_PANICS", FAULTS));
}

/// Eight authors with distinct vocabularies, split into known/unknown
/// halves (same shape as the batch unit tests, smaller).
fn world() -> (Dataset, Dataset) {
    let vocabs = [
        "kayak paddle rapids portage",
        "espresso grinder portafilter crema",
        "orchid repotting perlite humidity",
        "violin rosin luthier vibrato",
        "falconry jesses tiercel mews",
        "pottery kiln glaze stoneware",
        "beekeeping hive frames nectar",
        "origami crease valley tessellation",
    ];
    let mut known = Corpus::new("known");
    let mut unknown = Corpus::new("unknown");
    let base = 1_486_375_200i64;
    for (pid, vocab) in vocabs.iter().enumerate() {
        let words: Vec<&str> = vocab.split(' ').collect();
        for (half, corpus) in [(0usize, &mut known), (1, &mut unknown)] {
            let mut u = User::new(format!("user{pid}_{half}"), Some(pid as u64));
            for i in 0..35i64 {
                let ts = base + (i / 5) * 7 * 86_400 + (i % 5) * 86_400;
                let w1 = words[i as usize % words.len()];
                let w2 = words[(i as usize + 1) % words.len()];
                u.posts.push(Post::new(
                    format!("my notes about {w1} mention the {w2} setup and more {w1} details for the club"),
                    ts,
                ));
            }
            corpus.users.push(u);
        }
    }
    let b = DatasetBuilder::new();
    (b.build(&known), b.build(&unknown))
}

fn engine(threads: usize, metrics: PipelineMetrics) -> TwoStage {
    TwoStage::new(TwoStageConfig {
        k: 3,
        threads,
        metrics,
        ..TwoStageConfig::default()
    })
}

fn ckpt_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("darklight_fault_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn lenient_ingest_reports_exact_quarantine_counts() {
    init_faults();
    // One issue of each taxonomy kind, at known line numbers.
    let dirty = "#darklight-corpus v1 fixture\n\
                 U\talice\t1\n\
                 P\t1486375200\tmisc\tfine post\n\
                 not a record at all\n\
                 U\tbob\tnot_a_number\n\
                 P\t1486375300\tmisc\torphaned, bob was quarantined\n\
                 U\tcarol\t3\n\
                 F\tunknown_kind\tvalue\n\
                 P\t1486375400\tmisc\tcarol is fine\n";
    let metrics = PipelineMetrics::enabled();
    let config = LenientConfig {
        metrics: metrics.clone(),
        ..LenientConfig::default()
    };
    let (corpus, report) = read_corpus_lenient(dirty.as_bytes(), &config).unwrap();
    assert_eq!(report.quarantined(), 4);
    assert_eq!(report.count(IssueKind::BadRecord), 1);
    assert_eq!(report.count(IssueKind::UnparseableField), 2);
    assert_eq!(report.count(IssueKind::OrphanRecord), 1);
    assert_eq!(report.count(IssueKind::BadHeader), 0);
    let lines: Vec<usize> = report.issues.iter().map(|i| i.line).collect();
    assert_eq!(lines, vec![4, 5, 6, 8]);
    // The healthy remainder loads: alice and carol with one post each.
    assert_eq!(corpus.len(), 2);
    assert_eq!(corpus.users[0].alias, "alice");
    assert_eq!(corpus.users[1].alias, "carol");
    // Quarantine counters mirror the report.
    assert_eq!(metrics.counter("ingest.quarantined_lines").get(), 4);
    assert_eq!(metrics.counter("ingest.quarantined.bad_record").get(), 1);
    assert_eq!(
        metrics
            .counter("ingest.quarantined.unparseable_field")
            .get(),
        2
    );
    assert_eq!(metrics.counter("ingest.quarantined.orphan_record").get(), 1);
    assert_eq!(metrics.counter("ingest.records_kept").get(), 4);
}

#[test]
fn injected_polish_panic_drops_one_user_and_completes() {
    init_faults();
    let mut corpus = Corpus::new("c");
    for (i, alias) in ["ada", "bea", "cal", "dot"].iter().enumerate() {
        let mut u = User::new(*alias, Some(i as u64));
        for p in 0..40i64 {
            u.posts.push(Post::new(
                format!(
                    "{alias} wrote a perfectly ordinary message number {p} about several \
                     different topics from the {alias} workshop today"
                ),
                1_486_375_200 + p * 86_400,
            ));
        }
        corpus.users.push(u);
    }
    let metrics = PipelineMetrics::enabled();
    let polisher = Polisher::new(PolishConfig::default())
        .with_threads(2)
        .with_metrics(metrics.clone());
    let (polished, report) = polisher.polish(&corpus);
    // polish.user:1 kills the worker handling "bea"; the run completes
    // with her dropped and the panic recorded, not a process abort.
    assert_eq!(report.panicked_users, 1);
    assert!(polished.user("bea").is_none());
    assert!(polished.user("ada").is_some());
    assert!(polished.user("cal").is_some());
    assert!(polished.user("dot").is_some());
    assert!(metrics.counter("par.worker_panics").get() >= 1);
    assert_eq!(metrics.counter("polish.dropped.panicked_users").get(), 1);
}

#[test]
fn degraded_runs_are_thread_count_invariant() {
    init_faults();
    let (known, unknown) = world();
    let metrics = PipelineMetrics::enabled();
    let baseline = engine(1, metrics.clone()).run(&known, &unknown);
    // twostage.vectorize_known:1 fires in every stage-1 fit, so the
    // degradation is active...
    assert!(
        metrics.counter("twostage.vectorize_panics").get() >= 1,
        "injection did not fire"
    );
    assert!(metrics.counter("par.worker_panics").get() >= 1);
    // ...and identical at every thread count.
    for threads in [2, 7] {
        assert_eq!(
            engine(threads, PipelineMetrics::disabled()).run(&known, &unknown),
            baseline,
            "degraded run diverged at {threads} threads"
        );
    }
}

#[test]
fn kill_and_resume_is_byte_identical_across_thread_counts() {
    init_faults();
    let (known, unknown) = world();
    let config = BatchConfig { batch_size: 3 };
    for threads in [1usize, 2] {
        let e = engine(threads, PipelineMetrics::disabled());
        let uninterrupted = run_batched(&e, &config, &known, &unknown).unwrap();
        let mut spec = CheckpointSpec::new(ckpt_path(&format!("resume_t{threads}.json")));
        spec.interrupt_after_rounds = Some(1);
        let err = run_batched_checkpointed(&e, &config, &known, &unknown, &spec).unwrap_err();
        assert!(matches!(err, BatchError::Interrupted { .. }), "{err}");
        assert!(spec.path.exists());
        spec.interrupt_after_rounds = None;
        let resumed = run_batched_checkpointed(&e, &config, &known, &unknown, &spec).unwrap();
        assert_eq!(
            uninterrupted, resumed,
            "kill-and-resume diverged at {threads} thread(s)"
        );
        assert!(!spec.path.exists(), "checkpoint not cleaned up");
    }
}
