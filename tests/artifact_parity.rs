//! Byte-parity contract of the durable fit artifact (DESIGN.md §14):
//! serving a persisted `FitArtifact` through `link_with_artifact` must
//! reproduce the fit-every-time `Linker::link` output bit-for-bit, at
//! every thread count, whether the artifact came straight from `fit` or
//! round-tripped through the on-disk epoch store. Fitting itself must be
//! thread-invariant, so the *serialized* artifact is byte-identical no
//! matter how many workers fitted it.

use std::path::PathBuf;

use darklight::core::artifact::FitArtifact;
use darklight::core::linker::{Linker, LinkerConfig};
use darklight::corpus::model::{Corpus, Fact, FactKind, Post, User};
use darklight::store::EpochStore;

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// Eight distinctive-vocabulary users per forum; user N of each corpus
/// is the same persona. Eight users leave a ragged split at 7 threads.
fn corpus(name: &str, salt: usize) -> Corpus {
    let mut c = Corpus::new(name);
    let base = 1_486_375_200i64;
    let vocabs: [[&str; 4]; 8] = [
        ["harpsichord", "madrigal", "counterpoint", "basso"],
        ["terrarium", "isopods", "springtails", "bioactive"],
        ["leatherwork", "awl", "burnishing", "saddle"],
        ["homebrew", "fermenter", "sparge", "lauter"],
        ["mycology", "substrate", "inoculation", "flush"],
        ["letterpress", "platen", "typeface", "quoin"],
        ["falconry", "jesses", "mews", "tiercel"],
        ["orrery", "gnomon", "astrolabe", "ecliptic"],
    ];
    for pid in 0..8u64 {
        let mut u = User::new(format!("{name}_user{pid}"), Some(pid));
        u.facts
            .push(Fact::new(FactKind::City, format!("city{pid}")));
        let vocab = vocabs[pid as usize];
        for i in 0..70i64 {
            let ts =
                base + (i / 5) * 7 * 86_400 + (i % 5) * 86_400 + (pid as i64) * 7_200 + salt as i64;
            let w1 = vocab[i as usize % 4];
            let w2 = vocab[(i as usize + 1) % 4];
            let ma = char::from(b'a' + (i % 26) as u8);
            let mb = char::from(b'a' + ((i / 26) % 26) as u8);
            u.posts.push(Post::new(
                format!(
                    "today the {w1} project moved forward again and i compared several {w2} \
                     methods with friends near batch {ma}{mb} before writing longer notes \
                     about {w1} techniques and the tools involved"
                ),
                ts,
            ));
        }
        c.users.push(u);
    }
    c
}

fn config(threads: usize) -> LinkerConfig {
    let mut cfg = LinkerConfig::default();
    cfg.two_stage.k = 3;
    cfg.two_stage.threshold = 0.3;
    cfg.two_stage.threads = threads;
    cfg
}

fn store_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "darklight_artifact_parity_{name}_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn fitting_is_thread_invariant_down_to_the_serialized_bytes() {
    let known = corpus("forum_a", 0);
    let baseline = Linker::new(config(1))
        .fit_artifact(&known)
        .to_container()
        .to_bytes();
    for threads in [2usize, 7] {
        let bytes = Linker::new(config(threads))
            .fit_artifact(&known)
            .to_container()
            .to_bytes();
        assert_eq!(
            bytes, baseline,
            "serialized artifact diverged at {threads} fit threads"
        );
    }
}

#[test]
fn served_artifact_matches_fresh_link_at_every_thread_count() {
    let known = corpus("forum_a", 0);
    let unknown = corpus("forum_b", 1800);
    let dir = store_dir("serve");
    // Fit and persist once, single-threaded.
    let fit_linker = Linker::new(config(1));
    let baseline = fit_linker.link(&known, &unknown);
    assert!(!baseline.is_empty(), "scenario must produce links");
    let store = EpochStore::new(dir.clone());
    fit_linker.fit_artifact(&known).save(&store).unwrap();
    // Serve from disk at every thread count; scores must match to the
    // last bit (PartialEq on f64 here is exact equality).
    for threads in THREAD_COUNTS {
        let (artifact, epoch) = FitArtifact::load(&store, threads).unwrap();
        assert_eq!(epoch, 1);
        let served = Linker::new(config(threads)).link_with_artifact(&artifact, &unknown);
        assert_eq!(served.len(), baseline.len(), "at {threads} threads");
        for (fresh, from_disk) in baseline.iter().zip(&served) {
            assert_eq!(fresh.known_alias, from_disk.known_alias);
            assert_eq!(fresh.unknown_alias, from_disk.unknown_alias);
            assert_eq!(
                fresh.score.to_bits(),
                from_disk.score.to_bits(),
                "score diverged at {threads} threads for {}",
                fresh.unknown_alias
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn on_disk_round_trip_reproduces_the_exact_container_bytes() {
    let known = corpus("forum_a", 0);
    let dir = store_dir("roundtrip");
    let artifact = Linker::new(config(2)).fit_artifact(&known);
    let original = artifact.to_container().to_bytes();
    let store = EpochStore::new(dir.clone());
    artifact.save(&store).unwrap();
    // Decode at a different thread count than the fit used: the
    // reconstruction (lemmatize, count, vectorize) is itself pinned to
    // be thread-invariant, so re-serializing gives the same bytes.
    let (reloaded, _) = FitArtifact::load(&store, 7).unwrap();
    assert_eq!(reloaded.to_container().to_bytes(), original);
    std::fs::remove_dir_all(&dir).ok();
}
