//! Integration: the investigator-facing APIs — persistent link sessions,
//! confidence margins, and match explanations — on a full synthetic world.

use darklight::core::confidence::MatchConfidence;
use darklight::core::explain::explain_pair;
use darklight::core::session::LinkSession;
use darklight::prelude::*;
use darklight_bench::{prepare_world, World};
use std::sync::OnceLock;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| prepare_world(&ScenarioConfig::small()))
}

fn config() -> TwoStageConfig {
    TwoStageConfig {
        threads: 2,
        ..TwoStageConfig::default()
    }
}

#[test]
fn session_queries_agree_with_batch_runs() {
    let w = world();
    let known = w.tmg.originals.clone();
    let session = LinkSession::new(config(), known.clone());
    let engine = TwoStage::new(config());
    let batch = engine.run(&known, &w.dm.originals);
    for (u, record) in w.dm.originals.records.iter().enumerate().take(8) {
        let single = session.query_record(record);
        assert_eq!(
            batch[u].best().map(|r| r.index),
            single.best().map(|r| r.index),
            "disagreement on {}",
            record.alias
        );
    }
}

#[test]
fn margin_rule_improves_dark_to_dark_precision() {
    let w = world();
    let engine = TwoStage::new(config());
    let results = engine.run(&w.tmg.originals, &w.dm.originals);

    // Pick the threshold permissively (the point of the test is the margin,
    // not the threshold).
    let threshold = 0.84;
    let is_true = |m: &RankedMatch| {
        let best = m.best().unwrap();
        let u = &w.dm.originals.records[m.unknown];
        let k = &w.tmg.originals.records[best.index];
        u.persona.is_some() && u.persona == k.persona
    };

    let score_only: Vec<&RankedMatch> = results
        .iter()
        .filter(|m| m.best().is_some_and(|b| b.score >= threshold))
        .collect();
    let with_margin: Vec<&RankedMatch> = results
        .iter()
        .filter(|m| MatchConfidence::of(m).is_some_and(|c| c.accept(threshold, 0.006)))
        .collect();

    let precision = |set: &[&RankedMatch]| {
        if set.is_empty() {
            return 1.0;
        }
        set.iter().filter(|m| is_true(m)).count() as f64 / set.len() as f64
    };
    let p_score = precision(&score_only);
    let p_margin = precision(&with_margin);
    assert!(
        p_margin >= p_score,
        "margin rule should not hurt precision: {p_score} -> {p_margin}"
    );
    // And it must keep at least one true pair.
    assert!(with_margin.iter().any(|m| is_true(m)));
}

#[test]
fn explanations_reflect_ground_truth() {
    let w = world();
    let engine = TwoStage::new(config());
    let results = engine.run(&w.tmg.originals, &w.dm.originals);

    // Average vocabulary overlap of same-persona matched pairs must exceed
    // that of different-persona pairs.
    let mut same = Vec::new();
    let mut diff = Vec::new();
    for m in &results {
        let Some(best) = m.best() else { continue };
        let u = &w.dm.originals.records[m.unknown];
        let k = &w.tmg.originals.records[best.index];
        let ex = explain_pair(u, k);
        if u.persona.is_some() && u.persona == k.persona {
            same.push(ex.vocabulary_overlap);
        } else {
            diff.push(ex.vocabulary_overlap);
        }
    }
    assert!(!same.is_empty(), "no true pairs matched at all");
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        avg(&same) > avg(&diff),
        "same-persona overlap {} should exceed different {}",
        avg(&same),
        avg(&diff)
    );
}

#[test]
fn confidence_margins_higher_for_true_pairs() {
    let w = world();
    let engine = TwoStage::new(config());
    let results = engine.run(&w.reddit.originals, &w.reddit.alter_egos);
    let mut true_margins = Vec::new();
    let mut false_margins = Vec::new();
    for m in &results {
        let Some(best) = m.best() else { continue };
        let Some(conf) = MatchConfidence::of(m) else {
            continue;
        };
        let u = &w.reddit.alter_egos.records[m.unknown];
        let k = &w.reddit.originals.records[best.index];
        if u.persona.is_some() && u.persona == k.persona {
            true_margins.push(conf.margin);
        } else {
            false_margins.push(conf.margin);
        }
    }
    assert!(!true_margins.is_empty());
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        avg(&true_margins) > avg(&false_margins),
        "true {} vs false {}",
        avg(&true_margins),
        avg(&false_margins)
    );
}
