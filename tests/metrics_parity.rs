//! Metrics must only observe: enabling `darklight-obs` instrumentation
//! may never change attribution output. These tests pin that guarantee
//! (byte-identical results with metrics on vs. off) and the snapshot's
//! JSON schema (section and metric *names*; values are load-dependent).

use darklight::core::linker::{Linker, LinkerConfig};
use darklight::core::twostage::{TwoStage, TwoStageConfig};
use darklight::corpus::model::{Corpus, Post, User};
use darklight::obs::PipelineMetrics;

/// Four distinctive-vocabulary users per forum; user N of each corpus is
/// the same persona, so linking has real signal to act on.
fn corpus(name: &str, salt: usize) -> Corpus {
    let mut c = Corpus::new(name);
    let base = 1_486_375_200i64;
    for pid in 0..4u64 {
        let mut u = User::new(format!("{name}_user{pid}"), Some(pid));
        let vocab = match pid {
            0 => ["harpsichord", "madrigal", "counterpoint", "basso"],
            1 => ["terrarium", "isopods", "springtails", "bioactive"],
            2 => ["leatherwork", "awl", "burnishing", "saddle"],
            _ => ["homebrew", "fermenter", "sparge", "lauter"],
        };
        for i in 0..70i64 {
            let ts =
                base + (i / 5) * 7 * 86_400 + (i % 5) * 86_400 + (pid as i64) * 7_200 + salt as i64;
            let w1 = vocab[i as usize % 4];
            let w2 = vocab[(i as usize + 1) % 4];
            let ma = char::from(b'a' + (i % 26) as u8);
            let mb = char::from(b'a' + ((i / 26) % 26) as u8);
            u.posts.push(Post::new(
                format!(
                    "today the {w1} project moved forward again and i compared several {w2} \
                     methods with friends near batch {ma}{mb} before writing longer notes \
                     about {w1} techniques and the tools involved"
                ),
                ts,
            ));
        }
        c.users.push(u);
    }
    c
}

fn linker_config() -> LinkerConfig {
    let mut cfg = LinkerConfig::default();
    cfg.two_stage.k = 2;
    cfg.two_stage.threshold = 0.3;
    cfg.two_stage.threads = 2;
    cfg
}

#[test]
fn two_stage_results_identical_with_metrics_enabled() {
    let known = corpus("forum_a", 0);
    let unknown = corpus("forum_b", 1800);
    let plain = Linker::new(linker_config());
    let known_ds = plain.prepare(&known);
    let unknown_ds = plain.prepare(&unknown);

    let quiet = TwoStage::new(linker_config().two_stage);
    let noisy = TwoStage::new(TwoStageConfig {
        metrics: PipelineMetrics::enabled(),
        ..linker_config().two_stage
    });
    // RankedMatch derives PartialEq: every index, score, and ordering of
    // both stages must be identical, not just the accepted pairs.
    assert_eq!(
        quiet.run(&known_ds, &unknown_ds),
        noisy.run(&known_ds, &unknown_ds)
    );
    assert_eq!(
        quiet.link(&known_ds, &unknown_ds),
        noisy.link(&known_ds, &unknown_ds)
    );
}

#[test]
fn linker_results_identical_with_metrics_enabled() {
    let known = corpus("forum_a", 0);
    let unknown = corpus("forum_b", 1800);
    let quiet = Linker::new(linker_config());
    let noisy = Linker::new(linker_config()).with_metrics(PipelineMetrics::enabled());
    let a = quiet.link(&known, &unknown);
    let b = noisy.link(&known, &unknown);
    assert!(!a.is_empty(), "scenario must produce links to compare");
    assert_eq!(a, b);
    // And the instrumented run really did record something.
    assert!(noisy.metrics().timer("linker.link").count() >= 1);
}

/// Golden schema: the metric *names* a full pipeline run produces. Adding
/// a metric is fine — extend the lists here — but renaming or dropping
/// one breaks downstream dashboards, so it must be a conscious change.
#[test]
fn snapshot_schema_is_pinned() {
    let known = corpus("forum_a", 0);
    let unknown = corpus("forum_b", 1800);
    let linker = Linker::new(linker_config()).with_metrics(PipelineMetrics::enabled());
    let _ = linker.link(&known, &unknown);
    let snapshot = linker.metrics().snapshot();

    assert_eq!(
        snapshot.keys(),
        vec!["counters", "gauges", "histograms", "timers"]
    );
    let section = |name: &str| -> Vec<String> {
        snapshot
            .get(name)
            .unwrap_or_else(|| panic!("section {name} missing"))
            .keys()
            .into_iter()
            .map(str::to_string)
            .collect()
    };
    assert_eq!(
        section("counters"),
        vec![
            "attrib.batch_queries",
            "attrib.index_postings",
            "attrib.queries_scored",
            "dataset.records_built",
            "features.fits",
            "features.vector_nnz",
            "features.vectors",
            "par.worker_panics",
            "polish.dropped.bot_accounts",
            "polish.dropped.duplicates",
            "polish.dropped.emptied_users",
            "polish.dropped.low_diversity",
            "polish.dropped.non_english",
            "polish.dropped.panicked_users",
            "polish.dropped.short",
            "polish.input_messages",
            "polish.kept_messages",
            "twostage.links_accepted",
            "twostage.links_rejected",
            "twostage.rescored_unknowns",
        ]
    );
    assert_eq!(
        section("gauges"),
        vec![
            "attrib.index_dim",
            "attrib.index_users",
            "dataset.threads",
            "features.char_vocab",
            "features.dim",
            "features.fit_threads",
            "features.word_vocab",
            "polish.threads",
            "twostage.threads",
            "twostage.threshold_micros",
        ]
    );
    assert_eq!(
        section("histograms"),
        vec!["attrib.postings_touched_per_query"]
    );
    assert_eq!(
        section("timers"),
        vec![
            "attrib.batch_scoring",
            "attrib.index_build",
            "dataset.build",
            "features.fit",
            "features.vectorize",
            "linker.link",
            "linker.prepare",
            "polish.step.dedup",
            "polish.step.diversity_filter",
            "polish.step.language_filter",
            "polish.step.length_filter",
            "polish.step.transforms",
            "polish.total",
            "twostage.stage1",
            "twostage.stage2",
            "twostage.total",
        ]
    );
}
