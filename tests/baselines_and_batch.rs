//! Integration tests of the §IV-F baselines and the §IV-J batch mode on a
//! shared small world: our method must beat both baselines by AUC, and
//! batching must not change the outcome materially.

use darklight::prelude::*;
use darklight_bench::{prepare_world, World};
use darklight_core::baseline::{KoppelBaseline, StandardBaseline};
use darklight_core::batch::{run_batched, BatchConfig};
use darklight_core::twostage::RankedMatch;
use darklight_eval::curve::PrCurve;
use darklight_eval::metrics::{labeled_best_matches, precision_recall_at};
use std::sync::OnceLock;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| prepare_world(&ScenarioConfig::small()))
}

fn engine() -> TwoStage {
    TwoStage::new(TwoStageConfig {
        threads: 2,
        ..TwoStageConfig::default()
    })
}

fn wrap(stage1: Vec<Vec<darklight_core::attrib::Ranked>>) -> Vec<RankedMatch> {
    stage1
        .into_iter()
        .enumerate()
        .map(|(u, s1)| RankedMatch {
            unknown: u,
            stage1: s1.clone(),
            stage2: s1,
        })
        .collect()
}

fn auc_of(results: &[RankedMatch]) -> f64 {
    let w = world();
    PrCurve::from_labeled(&labeled_best_matches(
        results,
        &w.reddit.originals,
        &w.reddit.alter_egos,
    ))
    .auc()
}

#[test]
fn all_methods_sane_at_toy_scale() {
    // At ~60 candidates every method is strong, so cross-method ordering
    // is noise here (the paper's Fig. 3 gap appears at thousands of
    // candidates — see `method_ordering_at_default_scale` below and
    // `repro fig3`). This test asserts each method is *individually* sane.
    let w = world();
    let known = &w.reddit.originals;
    let ae = &w.reddit.alter_egos;
    let ours = auc_of(&engine().run(known, ae));
    let standard = auc_of(&wrap(StandardBaseline::default().run(known, ae)));
    let koppel = auc_of(&wrap(
        KoppelBaseline {
            iterations: 30,
            ..KoppelBaseline::default()
        }
        .run(known, ae),
    ));
    for (name, auc) in [("ours", ours), ("standard", standard), ("koppel", koppel)] {
        assert!(auc > 0.6, "{name} AUC {auc:.3} below sanity floor");
    }
}

/// The Fig. 3 ordering claim at a scale where it holds. Expensive
/// (several minutes): run with `cargo test -- --ignored`.
#[test]
#[ignore = "default-scale run takes minutes; the repro harness covers it"]
fn method_ordering_at_default_scale() {
    let world = prepare_world(&ScenarioConfig::default_scale());
    let known = &world.reddit.originals;
    let sample = darklight::core::dataset::Dataset::new(
        "fig3_test",
        world.reddit.alter_egos.records[..300].to_vec(),
    );
    let label =
        |r: &[RankedMatch]| PrCurve::from_labeled(&labeled_best_matches(r, known, &sample)).auc();
    let ours = label(&engine().run(known, &sample));
    let standard = label(&wrap(StandardBaseline::default().run(known, &sample)));
    assert!(
        ours > standard,
        "ours {ours:.3} should beat standard {standard:.3} at scale"
    );
}

#[test]
fn koppel_beats_or_matches_standard() {
    let w = world();
    let known = &w.reddit.originals;
    let ae = &w.reddit.alter_egos;
    let standard = auc_of(&wrap(StandardBaseline::default().run(known, ae)));
    let koppel = auc_of(&wrap(
        KoppelBaseline {
            iterations: 30,
            ..KoppelBaseline::default()
        }
        .run(known, ae),
    ));
    assert!(
        koppel > standard - 0.1,
        "koppel {koppel:.3} far below standard {standard:.3}"
    );
}

#[test]
fn batched_pipeline_close_to_unbatched() {
    let w = world();
    let known = &w.reddit.originals;
    let ae = &w.reddit.alter_egos;
    let e = engine();
    let unbatched = e.run(known, ae);
    let batched = run_batched(&e, &BatchConfig { batch_size: 25 }, known, ae).unwrap();
    assert_eq!(unbatched.len(), batched.len());
    // Top-match agreement on the vast majority of unknowns.
    let agree = unbatched
        .iter()
        .zip(&batched)
        .filter(|(a, b)| a.best().map(|r| r.index) == b.best().map(|r| r.index))
        .count();
    assert!(
        agree * 10 >= unbatched.len() * 9,
        "only {agree}/{} top matches agree",
        unbatched.len()
    );
    // Precision/recall at a mid threshold stay within a few points (§IV-J
    // reports 94/80 → 91/81).
    let lab_u = labeled_best_matches(&unbatched, known, ae);
    let lab_b = labeled_best_matches(&batched, known, ae);
    let t = PrCurve::from_labeled(&lab_u)
        .best_f1()
        .expect("non-empty curve")
        .threshold;
    let (pu, ru) = precision_recall_at(&lab_u, t);
    let (pb, rb) = precision_recall_at(&lab_b, t);
    assert!((pu - pb).abs() < 0.1, "precision {pu} vs {pb}");
    assert!((ru - rb).abs() < 0.1, "recall {ru} vs {rb}");
}

#[test]
fn koppel_scores_are_vote_shares() {
    let w = world();
    let known = &w.reddit.originals;
    let sample = darklight_core::dataset::Dataset::new(
        "s",
        w.reddit.alter_egos.records[..5.min(w.reddit.alter_egos.len())].to_vec(),
    );
    let ranked = KoppelBaseline {
        iterations: 10,
        ..KoppelBaseline::default()
    }
    .run(known, &sample);
    for per_unknown in &ranked {
        let total: f64 = per_unknown.iter().map(|r| r.score).sum();
        assert!(total <= 1.0 + 1e-9, "vote shares exceed 1: {total}");
        for r in per_unknown {
            assert!((0.0..=1.0).contains(&r.score));
        }
    }
}
