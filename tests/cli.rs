//! Integration tests of the `darklight` CLI binary, driven through real
//! process invocations on a temp directory.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_darklight"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("darklight_cli_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("usage:"));
    assert!(text.contains("link"));
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn usage_errors_exit_2() {
    // Unknown command.
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Missing positional argument.
    let out = bin().arg("stats").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Contradictory ingestion flags.
    let out = bin()
        .args(["stats", "whatever.tsv", "--lenient", "--strict"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));
    // Unparseable flag value.
    let out = bin()
        .args(["link", "a.tsv", "b.tsv", "--k", "banana"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn data_errors_exit_1() {
    // Missing input file.
    let out = bin()
        .args(["stats", "/nonexistent/darklight_no_such_corpus.tsv"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}

#[test]
fn zero_batch_size_is_a_usage_error() {
    let dir = temp_dir("zerobatch");
    bin()
        .args([
            "gen",
            dir.to_str().unwrap(),
            "--scale",
            "small",
            "--seed",
            "2",
        ])
        .output()
        .unwrap();
    let out = bin()
        .args([
            "link",
            dir.join("tmg.tsv").to_str().unwrap(),
            dir.join("dm.tsv").to_str().unwrap(),
            "--batch-size",
            "0",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("batch size must be positive"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mem_budget_and_batch_size_are_mutually_exclusive() {
    // Flag validation precedes any file access, so bogus paths are fine.
    let out = bin()
        .args([
            "link",
            "a.tsv",
            "b.tsv",
            "--batch-size",
            "10",
            "--mem-budget",
            "512MiB",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("mutually exclusive"), "{stderr}");
}

#[test]
fn malformed_mem_budget_sizes_are_rejected_with_fix_hints() {
    // Decimal units are refused with the binary spelling suggested.
    let out = bin()
        .args(["link", "a.tsv", "b.tsv", "--mem-budget", "512MB"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("512MiB"), "must suggest the fix: {stderr}");
    // Negative, fractional, and overflowing sizes are all usage errors.
    for bad in ["-5MiB", "1.5GiB", "99999999999999999GiB", "12XiB", ""] {
        let out = bin()
            .args(["link", "a.tsv", "b.tsv", "--mem-budget", bad])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "size {bad:?} must exit 2");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("error:"),
            "size {bad:?} must explain itself"
        );
    }
}

#[test]
fn deadline_without_batch_mode_is_a_usage_error() {
    let out = bin()
        .args(["link", "a.tsv", "b.tsv", "--deadline", "30m"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--deadline"), "{stderr}");
    // A malformed duration is also caught (unit is mandatory).
    let out = bin()
        .args([
            "link",
            "a.tsv",
            "b.tsv",
            "--batch-size",
            "10",
            "--deadline",
            "30",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "bare numbers have no unit");
}

#[test]
fn mem_budget_link_succeeds_end_to_end() {
    let dir = temp_dir("membudget");
    bin()
        .args([
            "gen",
            dir.to_str().unwrap(),
            "--scale",
            "small",
            "--seed",
            "4",
        ])
        .output()
        .unwrap();
    let out = bin()
        .args([
            "link",
            dir.join("tmg.tsv").to_str().unwrap(),
            dir.join("dm.tsv").to_str().unwrap(),
            "--threshold",
            "0.86",
            "--mem-budget",
            "4GiB",
            "--deadline",
            "1h",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8_lossy(&out.stdout);
    assert!(table.starts_with("unknown_alias\tknown_alias\tscore"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn io_faults_below_retry_budget_never_surface() {
    let dir = temp_dir("iofault_ok");
    bin()
        .args([
            "gen",
            dir.to_str().unwrap(),
            "--scale",
            "small",
            "--seed",
            "5",
        ])
        .output()
        .unwrap();
    // Two injected faults fit inside the default three-retry budget: the
    // run must succeed as if nothing happened.
    let out = bin()
        .args(["stats", dir.join("tmg.tsv").to_str().unwrap()])
        .env("DARKLIGHT_FAULT_IO", "corpus.read:2")
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn io_faults_above_retry_budget_exit_1_with_typed_error() {
    // Ten faults exhaust every attempt; the injected error must surface
    // as a data error (exit 1), never a panic or a silent zero.
    let out = bin()
        .args(["stats", "a.tsv"])
        .env("DARKLIGHT_FAULT_IO", "corpus.read:10")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("injected i/o fault"), "{stderr}");
}

#[test]
fn lenient_loads_dirty_corpus_that_strict_refuses() {
    let dir = temp_dir("lenient");
    let corpus = dir.join("dirty.tsv");
    // Lines 3 and 6 are malformed; the rest is a healthy two-user corpus.
    std::fs::write(
        &corpus,
        "#darklight-corpus v1 dirty\n\
         U\talice\t1\n\
         this line is garbage\n\
         P\t1486375200\tmisc\thello world from alice\n\
         U\tbob\t2\n\
         F\tnot_a_kind\tvalue\n\
         P\t1486375300\tmisc\tbob says hi\n",
    )
    .unwrap();
    let strict = bin()
        .args(["stats", corpus.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        strict.status.code(),
        Some(1),
        "strict must refuse dirty data"
    );
    let lenient = bin()
        .args(["stats", corpus.to_str().unwrap(), "--lenient"])
        .output()
        .unwrap();
    assert_eq!(
        lenient.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&lenient.stderr)
    );
    let stderr = String::from_utf8_lossy(&lenient.stderr);
    assert!(stderr.contains("quarantined 2 of 7 line(s)"), "{stderr}");
    assert!(stderr.contains("line 3"), "{stderr}");
    assert!(stderr.contains("line 6"), "{stderr}");
    let stdout = String::from_utf8_lossy(&lenient.stdout);
    assert!(stdout.contains("users:   2"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn link_with_checkpoint_succeeds_and_cleans_up() {
    let dir = temp_dir("ckpt");
    bin()
        .args([
            "gen",
            dir.to_str().unwrap(),
            "--scale",
            "small",
            "--seed",
            "9",
        ])
        .output()
        .unwrap();
    let ckpt = dir.join("state.json");
    let out = bin()
        .args([
            "link",
            dir.join("tmg.tsv").to_str().unwrap(),
            dir.join("dm.tsv").to_str().unwrap(),
            "--threshold",
            "0.86",
            "--batch-size",
            "10",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8_lossy(&out.stdout);
    assert!(table.starts_with("unknown_alias\tknown_alias\tscore"));
    assert!(
        !ckpt.exists(),
        "checkpoint must be removed after a successful run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gen_polish_stats_link_profile_flow() {
    let dir = temp_dir("flow");
    // gen
    let out = bin()
        .args([
            "gen",
            dir.to_str().unwrap(),
            "--scale",
            "small",
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    for f in ["reddit.tsv", "tmg.tsv", "dm.tsv"] {
        assert!(dir.join(f).exists(), "{f} missing");
    }

    // stats
    let out = bin()
        .args(["stats", dir.join("dm.tsv").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("users:"));
    assert!(text.contains("words-per-user CDF"));

    // polish
    let polished = dir.join("dm_polished.tsv");
    let out = bin()
        .args([
            "polish",
            dir.join("dm.tsv").to_str().unwrap(),
            polished.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(polished.exists());
    let report = String::from_utf8_lossy(&out.stderr);
    assert!(report.contains("messages kept:"));

    // link (tmg as known, dm as unknown)
    let out = bin()
        .args([
            "link",
            dir.join("tmg.tsv").to_str().unwrap(),
            dir.join("dm.tsv").to_str().unwrap(),
            "--threshold",
            "0.86",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8_lossy(&out.stdout);
    assert!(table.starts_with("unknown_alias\tknown_alias\tscore"));
    assert!(table.lines().count() >= 2, "no matches emitted:\n{table}");

    // profile: use the first matched known alias.
    let first_match_line = table.lines().nth(1).unwrap();
    let known_alias = first_match_line.split('\t').nth(1).unwrap();
    let out = bin()
        .args([
            "profile",
            dir.join("tmg.tsv").to_str().unwrap(),
            known_alias,
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("daily activity profile"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn obfuscate_rewrites_posts() {
    let dir = temp_dir("obf");
    bin()
        .args([
            "gen",
            dir.to_str().unwrap(),
            "--scale",
            "small",
            "--seed",
            "3",
        ])
        .output()
        .unwrap();
    let input = dir.join("dm.tsv");
    let output = dir.join("dm_scrubbed.tsv");
    let out = bin()
        .args([
            "obfuscate",
            input.to_str().unwrap(),
            output.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let original = std::fs::read_to_string(&input).unwrap();
    let scrubbed = std::fs::read_to_string(&output).unwrap();
    assert_ne!(original, scrubbed);
    // Same number of records (no posts lost).
    assert_eq!(original.lines().count(), scrubbed.lines().count());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_missing_alias_errors() {
    let dir = temp_dir("missing");
    bin()
        .args([
            "gen",
            dir.to_str().unwrap(),
            "--scale",
            "small",
            "--seed",
            "5",
        ])
        .output()
        .unwrap();
    let out = bin()
        .args([
            "profile",
            dir.join("dm.tsv").to_str().unwrap(),
            "no_such_alias_here",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not found"));
    std::fs::remove_dir_all(&dir).ok();
}
