//! Integration tests of the `darklight` CLI binary, driven through real
//! process invocations on a temp directory.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_darklight"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("darklight_cli_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("usage:"));
    assert!(text.contains("link"));
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn gen_polish_stats_link_profile_flow() {
    let dir = temp_dir("flow");
    // gen
    let out = bin()
        .args([
            "gen",
            dir.to_str().unwrap(),
            "--scale",
            "small",
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    for f in ["reddit.tsv", "tmg.tsv", "dm.tsv"] {
        assert!(dir.join(f).exists(), "{f} missing");
    }

    // stats
    let out = bin()
        .args(["stats", dir.join("dm.tsv").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("users:"));
    assert!(text.contains("words-per-user CDF"));

    // polish
    let polished = dir.join("dm_polished.tsv");
    let out = bin()
        .args([
            "polish",
            dir.join("dm.tsv").to_str().unwrap(),
            polished.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(polished.exists());
    let report = String::from_utf8_lossy(&out.stderr);
    assert!(report.contains("messages kept:"));

    // link (tmg as known, dm as unknown)
    let out = bin()
        .args([
            "link",
            dir.join("tmg.tsv").to_str().unwrap(),
            dir.join("dm.tsv").to_str().unwrap(),
            "--threshold",
            "0.86",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8_lossy(&out.stdout);
    assert!(table.starts_with("unknown_alias\tknown_alias\tscore"));
    assert!(table.lines().count() >= 2, "no matches emitted:\n{table}");

    // profile: use the first matched known alias.
    let first_match_line = table.lines().nth(1).unwrap();
    let known_alias = first_match_line.split('\t').nth(1).unwrap();
    let out = bin()
        .args([
            "profile",
            dir.join("tmg.tsv").to_str().unwrap(),
            known_alias,
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("daily activity profile"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn obfuscate_rewrites_posts() {
    let dir = temp_dir("obf");
    bin()
        .args([
            "gen",
            dir.to_str().unwrap(),
            "--scale",
            "small",
            "--seed",
            "3",
        ])
        .output()
        .unwrap();
    let input = dir.join("dm.tsv");
    let output = dir.join("dm_scrubbed.tsv");
    let out = bin()
        .args([
            "obfuscate",
            input.to_str().unwrap(),
            output.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let original = std::fs::read_to_string(&input).unwrap();
    let scrubbed = std::fs::read_to_string(&output).unwrap();
    assert_ne!(original, scrubbed);
    // Same number of records (no posts lost).
    assert_eq!(original.lines().count(), scrubbed.lines().count());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_missing_alias_errors() {
    let dir = temp_dir("missing");
    bin()
        .args([
            "gen",
            dir.to_str().unwrap(),
            "--scale",
            "small",
            "--seed",
            "5",
        ])
        .output()
        .unwrap();
    let out = bin()
        .args([
            "profile",
            dir.join("dm.tsv").to_str().unwrap(),
            "no_such_alias_here",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not found"));
    std::fs::remove_dir_all(&dir).ok();
}
