//! Soak leg of the resource governor (DESIGN.md §11): one process runs
//! the batched synthetic link under a deliberately tiny memory budget
//! with BOTH fault hooks armed — injected worker panics
//! (`DARKLIGHT_FAULT_PANICS`) and injected checkpoint-save I/O failures
//! (`DARKLIGHT_FAULT_IO`) — and must complete anyway, with the metrics
//! snapshot proving the machinery actually engaged: pressure-ladder
//! shrinks, absorbed I/O retries, and a recorded byte estimate.
//!
//! Both env vars are parsed once per process, so this binary installs
//! its spec in [`init_faults`] before the first pipeline call and keeps
//! all governor soak assertions in this one file.

use darklight::core::batch::{
    budget_overhead_bytes, budget_per_candidate_bytes, run_batched_checkpointed, BatchConfig,
    CheckpointSpec,
};
use darklight::core::dataset::{Dataset, DatasetBuilder};
use darklight::core::twostage::{TwoStage, TwoStageConfig};
use darklight::corpus::model::{Corpus, Post, User};
use darklight::govern::{GovernConfig, MemoryBudget};
use darklight::obs::PipelineMetrics;
use std::path::PathBuf;

fn init_faults() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        // One skip-tolerant worker panic per stage-1 fit, plus two
        // transient failures on the first checkpoint save.
        std::env::set_var("DARKLIGHT_FAULT_PANICS", "twostage.vectorize_known:1");
        std::env::set_var("DARKLIGHT_FAULT_IO", "checkpoint.save:2");
    });
}

/// Twelve authors with distinct vocabularies, split into known/unknown
/// halves (same shape as the batch unit tests: big enough that a
/// post-ladder batch size of 2 still takes several rounds to converge).
fn world() -> (Dataset, Dataset) {
    let vocabs = [
        "kayak paddle rapids portage",
        "espresso grinder portafilter crema",
        "orchid repotting perlite humidity",
        "violin rosin luthier vibrato",
        "falconry jesses tiercel mews",
        "pottery kiln glaze stoneware",
        "beekeeping hive frames nectar",
        "origami crease valley tessellation",
        "astronomy nebula telescope eyepiece",
        "fencing parry riposte piste",
        "calligraphy nib flourish gouache",
        "mycology spores substrate fruiting",
    ];
    let mut known = Corpus::new("known");
    let mut unknown = Corpus::new("unknown");
    let base = 1_486_375_200i64;
    for (pid, vocab) in vocabs.iter().enumerate() {
        let words: Vec<&str> = vocab.split(' ').collect();
        for (half, corpus) in [(0usize, &mut known), (1, &mut unknown)] {
            let mut u = User::new(format!("user{pid}_{half}"), Some(pid as u64));
            for i in 0..35i64 {
                let ts = base + (i / 5) * 7 * 86_400 + (i % 5) * 86_400;
                let w1 = words[i as usize % words.len()];
                let w2 = words[(i as usize + 1) % words.len()];
                u.posts.push(Post::new(
                    format!("my notes about {w1} mention the {w2} setup and more {w1} details for the club"),
                    ts,
                ));
            }
            corpus.users.push(u);
        }
    }
    let b = DatasetBuilder::new();
    (b.build(&known), b.build(&unknown))
}

fn ckpt_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("darklight_soak_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn governed_engine(budget: MemoryBudget, metrics: PipelineMetrics) -> TwoStage {
    TwoStage::new(TwoStageConfig {
        // k = 1 keeps pools shrinking even at the post-ladder batch size
        // of 2, so the run goes through several checkpointed rounds.
        k: 1,
        threads: 2,
        metrics,
        govern: GovernConfig {
            budget: Some(budget),
            ..GovernConfig::default()
        },
        ..TwoStageConfig::default()
    })
}

#[test]
fn governed_soak_completes_under_faults_and_tiny_budget() {
    init_faults();
    let (known, unknown) = world();
    // Room for two worst-case candidates: the explicit batch size of 8
    // breaches it, so the ladder must step 8 -> 4 -> 2 before round one
    // (a 2-record chunk can never exceed twice the worst-case record, so
    // 2 is guaranteed to fit; 4-record chunks of near-equal records
    // cannot).
    let budget = MemoryBudget::from_bytes(
        budget_overhead_bytes(&unknown) + 2 * budget_per_candidate_bytes(&known),
    )
    .unwrap();
    let config = BatchConfig { batch_size: 8 };
    let metrics = PipelineMetrics::enabled();
    let spec = CheckpointSpec::new(ckpt_path("soak.json"));
    let results = run_batched_checkpointed(
        &governed_engine(budget, metrics.clone()),
        &config,
        &known,
        &unknown,
        &spec,
    )
    .unwrap();
    assert_eq!(results.len(), unknown.len());
    assert!(!spec.path.exists(), "checkpoint removed on success");
    // The pressure ladder engaged: two halvings, the breaching estimate
    // recorded, and the effective batch size landing at 2.
    assert_eq!(metrics.counter("govern.batch_shrinks").get(), 2);
    assert_eq!(metrics.gauge("batch.batch_size").get(), 2);
    assert!(
        metrics.gauge("govern.bytes_estimated").get() as u64 > budget.bytes(),
        "the recorded estimate must show the breach that forced shrinking"
    );
    // Both injected save failures were absorbed by retries, invisibly to
    // the caller.
    assert_eq!(metrics.counter("govern.io_retries").get(), 2);
    // The panic fault was armed too: degraded, not clean, completion.
    assert!(
        metrics.counter("par.worker_panics").get() >= 1,
        "panic injection did not fire"
    );
    assert!(metrics.counter("batch.rounds").get() >= 2);
    // A second identical run (faults now exhausted) must produce the
    // exact same rankings: retries and panics never change output bytes.
    let again = run_batched_checkpointed(
        &governed_engine(budget, PipelineMetrics::enabled()),
        &config,
        &known,
        &unknown,
        &spec,
    )
    .unwrap();
    assert_eq!(results, again, "faulted and clean runs diverged");
}
