//! The determinism contract behind the committed `BENCH_*.json`
//! baselines (DESIGN.md §12): a matrix cell is a pure function of its
//! `(scenario, scale, seed)` triple. The same triple must serialize to
//! byte-identical corpora on every run and build byte-identical datasets
//! at every thread count; a different base seed must produce a different
//! world.

use darklight::bench::matrix::prepare_cell;
use darklight::core::dataset::DatasetBuilder;
use darklight::corpus::io::write_corpus;
use darklight::corpus::model::Corpus;
use darklight::synth::matrix::{CellSpec, MatrixScale, ScenarioKind, MATRIX_SEED};
use darklight::synth::scenario::ScenarioBuilder;
use proptest::prelude::*;

fn corpus_bytes(corpus: &Corpus) -> Vec<u8> {
    let mut out = Vec::new();
    write_corpus(corpus, &mut out).expect("in-memory corpus serialization");
    out
}

/// Serializes the cell's raw world (both dark forums) to bytes.
fn world_bytes(spec: &CellSpec) -> Vec<u8> {
    let scenario = ScenarioBuilder::new(spec.config()).build();
    let mut bytes = corpus_bytes(&scenario.tmg);
    bytes.extend(corpus_bytes(&scenario.dm));
    bytes
}

#[test]
fn every_scenario_is_byte_identical_across_runs_at_tiny_scale() {
    for kind in ScenarioKind::ALL {
        let spec = CellSpec::new(kind, MatrixScale::Tiny);
        assert_eq!(
            world_bytes(&spec),
            world_bytes(&spec),
            "cell {} reran differently",
            spec.id()
        );
    }
}

#[test]
fn different_base_seeds_produce_different_worlds() {
    let base = CellSpec::new(ScenarioKind::Clean, MatrixScale::Tiny);
    let perturbed = CellSpec {
        seed: MATRIX_SEED ^ 1,
        ..base
    };
    assert_ne!(
        world_bytes(&base),
        world_bytes(&perturbed),
        "perturbing the base seed must change the generated world"
    );
}

#[test]
fn prepared_datasets_identical_across_thread_counts() {
    // The full cell preparation (generate → polish → refine → cap) is
    // single-threaded and deterministic; dataset building is the threaded
    // stage, so it is the one swept across thread counts.
    let spec = CellSpec::new(ScenarioKind::Mixed, MatrixScale::Tiny);
    let prep = prepare_cell(&spec);
    let baseline_known = DatasetBuilder::new()
        .with_threads(1)
        .build(&prep.known_corpus);
    let baseline_unknown = DatasetBuilder::new()
        .with_threads(1)
        .build(&prep.unknown_corpus);
    assert!(!baseline_known.is_empty());
    assert!(!baseline_unknown.is_empty());
    for threads in [2usize, 7] {
        let builder = DatasetBuilder::new().with_threads(threads);
        assert_eq!(
            builder.build(&prep.known_corpus),
            baseline_known,
            "known datasets diverged at {threads} threads"
        );
        assert_eq!(
            builder.build(&prep.unknown_corpus),
            baseline_unknown,
            "unknown datasets diverged at {threads} threads"
        );
    }
}

proptest! {
    // World generation is the expensive operation under test, so the case
    // count stays deliberately small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any base seed (not just the committed one) yields a reproducible
    /// world, and flipping the seed changes it.
    #[test]
    fn any_seed_reproduces_and_distinguishes(seed in any::<u64>(), kind_idx in 0usize..6) {
        let spec = CellSpec {
            kind: ScenarioKind::ALL[kind_idx],
            scale: MatrixScale::Tiny,
            seed,
        };
        let bytes = world_bytes(&spec);
        prop_assert_eq!(&bytes, &world_bytes(&spec));
        let perturbed = CellSpec { seed: seed ^ 0x5eed, ..spec };
        prop_assert!(bytes != world_bytes(&perturbed));
    }
}
