//! Crash-consistency harness for the durable fit-artifact store
//! (DESIGN.md §14), driven through real `darklight` process invocations
//! so every `DARKLIGHT_FAULT_IO` spec latches in a fresh process.
//!
//! The contract under test: after any injected fault — a torn write, a
//! flipped byte, a crash before the artifact rename, a crash before the
//! `CURRENT` pointer swap, a corrupted pointer — `link --artifact`
//! either serves output byte-identical to a clean run (falling back to
//! the newest intact epoch) or fails with a typed error and exit 1.
//! Never a panic, never a silently different answer.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_darklight"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "darklight_store_crash_{name}_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_no_panic(out: &Output, what: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked"), "{what} panicked:\n{stderr}");
}

/// Generates a small world and returns (known.tsv, unknown.tsv).
fn gen_world(dir: &Path) -> (PathBuf, PathBuf) {
    let out = bin()
        .args([
            "gen",
            dir.to_str().unwrap(),
            "--scale",
            "small",
            "--seed",
            "11",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (dir.join("tmg.tsv"), dir.join("dm.tsv"))
}

/// Runs `darklight fit` into `store`, optionally under a fault spec.
fn fit(known: &Path, store: &Path, fault: Option<&str>) -> Output {
    let mut cmd = bin();
    cmd.args([
        "fit",
        known.to_str().unwrap(),
        "--out",
        store.to_str().unwrap(),
    ]);
    if let Some(spec) = fault {
        cmd.env("DARKLIGHT_FAULT_IO", spec);
    }
    cmd.output().unwrap()
}

/// Runs `link --artifact`, returning the raw process output.
fn serve(store: &Path, unknown: &Path, metrics: Option<&Path>) -> Output {
    let mut cmd = bin();
    cmd.args([
        "link",
        "--artifact",
        store.to_str().unwrap(),
        unknown.to_str().unwrap(),
        "--threshold",
        "0.86",
    ]);
    if let Some(m) = metrics {
        cmd.args(["--metrics", m.to_str().unwrap()]);
    }
    cmd.output().unwrap()
}

/// One clean fit + serve, returning the baseline stdout all fault
/// scenarios must reproduce.
fn baseline(dir: &Path, known: &Path, unknown: &Path) -> (PathBuf, Vec<u8>) {
    let store = dir.join("store");
    let out = fit(known, &store, None);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = serve(&store, unknown, None);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (store, out.stdout)
}

#[test]
fn clean_fit_then_serve_matches_the_refit_link_byte_for_byte() {
    let dir = temp_dir("clean");
    let (known, unknown) = gen_world(&dir);
    let (_store, served) = baseline(&dir, &known, &unknown);
    let refit = bin()
        .args([
            "link",
            known.to_str().unwrap(),
            unknown.to_str().unwrap(),
            "--threshold",
            "0.86",
        ])
        .output()
        .unwrap();
    assert!(refit.status.success());
    assert_eq!(
        served, refit.stdout,
        "artifact serving must be byte-identical to fit-every-time"
    );
    // And at other thread counts, still byte-identical.
    for threads in ["2", "7"] {
        let store = dir.join("store");
        let out = bin()
            .args([
                "link",
                "--artifact",
                store.to_str().unwrap(),
                unknown.to_str().unwrap(),
                "--threshold",
                "0.86",
                "--threads",
                threads,
            ])
            .output()
            .unwrap();
        assert!(out.status.success());
        assert_eq!(out.stdout, served, "diverged at {threads} threads");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_artifact_write_falls_back_to_the_previous_epoch() {
    let dir = temp_dir("torn");
    let (known, unknown) = gen_world(&dir);
    let (store, expected) = baseline(&dir, &known, &unknown);
    // Second fit suffers a torn write: only 64 bytes of epoch 2's
    // artifact reach the disk, but the rename and CURRENT swap still
    // complete — the worst case the CRC layer exists for.
    let out = fit(&known, &store, Some("trunc:store.write_artifact:64"));
    assert_no_panic(&out, "torn-write fit");
    // CURRENT now names the corrupt epoch 2; serving must detect the
    // truncation and fall back to intact epoch 1 with identical output.
    let metrics = dir.join("metrics.json");
    let out = serve(&store, &unknown, Some(&metrics));
    assert_no_panic(&out, "serve after torn write");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        out.stdout, expected,
        "fallback output must be byte-identical"
    );
    let snapshot = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        snapshot.contains("store.epoch_fallbacks"),
        "fallback must be visible in metrics:\n{snapshot}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flipped_byte_in_the_artifact_falls_back_to_the_previous_epoch() {
    let dir = temp_dir("flip");
    let (known, unknown) = gen_world(&dir);
    let (store, expected) = baseline(&dir, &known, &unknown);
    // Bit rot in the middle of epoch 2's section data.
    let out = fit(&known, &store, Some("flip:store.write_artifact:200"));
    assert_no_panic(&out, "bit-flip fit");
    let metrics = dir.join("metrics.json");
    let out = serve(&store, &unknown, Some(&metrics));
    assert_no_panic(&out, "serve after bit flip");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(out.stdout, expected);
    let snapshot = std::fs::read_to_string(&metrics).unwrap();
    assert!(snapshot.contains("store.crc_failures"), "{snapshot}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_before_artifact_rename_leaves_the_old_epoch_serving() {
    let dir = temp_dir("rename");
    let (known, unknown) = gen_world(&dir);
    let (store, expected) = baseline(&dir, &known, &unknown);
    // The second fit dies before renaming tmp -> artifact.dla: the
    // publish fails loudly (exit 1) and nothing it wrote is visible.
    let out = fit(&known, &store, Some("store.publish_rename:1"));
    assert_no_panic(&out, "crash-before-rename fit");
    assert_eq!(out.status.code(), Some(1), "failed publish must exit 1");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("error:"),
        "typed error expected"
    );
    let out = serve(&store, &unknown, None);
    assert!(out.status.success());
    assert_eq!(out.stdout, expected, "old epoch must keep serving");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_before_current_swap_keeps_serving_the_pointed_epoch() {
    let dir = temp_dir("swap");
    let (known, unknown) = gen_world(&dir);
    let (store, expected) = baseline(&dir, &known, &unknown);
    // Epoch 2's artifact lands durably, but the process dies before the
    // CURRENT pointer swap: the fit reports failure and loads keep
    // honoring the pointer at epoch 1.
    let out = fit(&known, &store, Some("store.current_swap:1"));
    assert_no_panic(&out, "crash-before-swap fit");
    assert_eq!(out.status.code(), Some(1));
    let out = serve(&store, &unknown, None);
    assert!(out.status.success());
    assert_eq!(out.stdout, expected);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_current_pointer_is_ignored_and_the_newest_epoch_scanned() {
    let dir = temp_dir("pointer");
    let (known, unknown) = gen_world(&dir);
    let (store, expected) = baseline(&dir, &known, &unknown);
    // The pointer itself is torn: its first byte is flipped, so it no
    // longer parses. The swap "succeeded", so the fit exits 0 — and the
    // loader must treat the garbage pointer as absent, scan newest-first,
    // and find epoch 2, which is intact and fits the same corpus.
    let out = fit(&known, &store, Some("flip:store.current_swap:0"));
    assert_no_panic(&out, "corrupt-pointer fit");
    assert!(out.status.success());
    let current = std::fs::read(store.join("CURRENT")).unwrap();
    assert!(
        !current.starts_with(b"epoch-"),
        "precondition: pointer must actually be corrupt"
    );
    let out = serve(&store, &unknown, None);
    assert_no_panic(&out, "serve with corrupt pointer");
    assert!(out.status.success());
    assert_eq!(out.stdout, expected);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corruption_with_no_intact_epoch_is_a_typed_data_error() {
    let dir = temp_dir("nofallback");
    let (known, unknown) = gen_world(&dir);
    let store = dir.join("store");
    // The only fit ever run is torn: there is no epoch to fall back to.
    let out = fit(&known, &store, Some("trunc:store.write_artifact:64"));
    assert_no_panic(&out, "torn-only fit");
    let out = serve(&store, &unknown, None);
    assert_no_panic(&out, "serve with no intact epoch");
    assert_eq!(out.status.code(), Some(1), "must exit 1, not panic");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
    // An empty store (wrong directory) is equally typed.
    let out = serve(&dir.join("no_such_store"), &unknown, None);
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn artifact_serving_rejects_batching_flags_as_usage_errors() {
    let dir = temp_dir("usage");
    for (flag, value) in [
        ("--batch-size", "10"),
        ("--mem-budget", "512MiB"),
        ("--deadline", "30m"),
        ("--checkpoint", "state.json"),
    ] {
        let out = bin()
            .args([
                "link",
                "--artifact",
                "somewhere",
                "unknown.tsv",
                flag,
                value,
            ])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{flag} must be a usage error");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--artifact"),
            "{flag} error must explain the conflict"
        );
    }
    // fit without --out is a usage error too.
    let out = bin().args(["fit", "known.tsv"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}
