//! `darklight` — command-line interface to the alias-linking pipeline.
//!
//! ```text
//! darklight gen <out-dir> [--scale small|default|paper] [--seed N]
//!     Generate a synthetic three-forum world as TSV corpora.
//!
//! darklight polish <in.tsv> <out.tsv>
//!     Run the 12 polishing steps; print the per-step removal report.
//!
//! darklight stats <in.tsv>
//!     Corpus statistics: users, posts, words-per-user CDF.
//!
//! darklight link <known.tsv> <unknown.tsv> [--threshold T] [--k K]
//!               [--threads N] [--metrics out.json]
//!     Polish, refine, and link the two corpora; print matched alias
//!     pairs as TSV (unknown_alias, known_alias, score). With
//!     --metrics, also write a JSON snapshot of pipeline counters,
//!     stage timers, and latency histograms (see darklight-obs).
//!     --threads 0 (the default) sizes the worker pool from the
//!     machine (or the DARKLIGHT_THREADS environment variable);
//!     output is identical at every thread count.
//!
//! darklight profile <corpus.tsv> <alias>
//!     Activity profile and leaked-fact dossier for one alias.
//!
//! darklight obfuscate <in.tsv> <out.tsv>
//!     Scrub writing style from every post (adversarial stylometry).
//! ```

use darklight::activity::profile::{ProfileBuilder, ProfilePolicy};
use darklight::core::linker::{Linker, LinkerConfig};
use darklight::corpus::io::{load_corpus, save_corpus};
use darklight::corpus::polish::{PolishConfig, Polisher};
use darklight::corpus::stats::{cdf_at, words_per_user_cdf};
use darklight::eval::profiler::build_profile;
use darklight::obs::PipelineMetrics;
use darklight::synth::scenario::{ScenarioBuilder, ScenarioConfig};
use darklight::text::obfuscate::{ObfuscateConfig, Obfuscator};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("polish") => cmd_polish(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("link") => cmd_link(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("obfuscate") => cmd_obfuscate(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            eprintln!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: darklight <gen|polish|stats|link|profile|obfuscate> ...\n\
  gen <out-dir> [--scale small|default|paper] [--seed N]\n\
  polish <in.tsv> <out.tsv>\n\
  stats <in.tsv>\n\
  link <known.tsv> <unknown.tsv> [--threshold T] [--k K] [--threads N] [--metrics out.json]\n\
  profile <corpus.tsv> <alias>\n\
  obfuscate <in.tsv> <out.tsv>";

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn positional(args: &[String], n: usize) -> Result<&str, String> {
    let mut seen = 0;
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") {
            skip_next = true;
            continue;
        }
        if seen == n {
            return Ok(a);
        }
        seen += 1;
    }
    Err(format!("missing argument #{}\n{USAGE}", n + 1))
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let out_dir = positional(args, 0)?;
    let mut config = match flag_value(args, "--scale") {
        Some("small") | None => ScenarioConfig::small(),
        Some("default") => ScenarioConfig::default_scale(),
        Some("paper") => ScenarioConfig::paper_scale(),
        Some(other) => return Err(format!("unknown scale {other:?}")),
    };
    if let Some(seed) = flag_value(args, "--seed") {
        config.seed = seed.parse().map_err(|_| "--seed must be an integer")?;
    }
    std::fs::create_dir_all(out_dir).map_err(|e| e.to_string())?;
    eprintln!("generating world (seed {})...", config.seed);
    let scenario = ScenarioBuilder::new(config).build();
    for (name, corpus) in [
        ("reddit.tsv", &scenario.reddit),
        ("tmg.tsv", &scenario.tmg),
        ("dm.tsv", &scenario.dm),
    ] {
        let path = Path::new(out_dir).join(name);
        save_corpus(corpus, &path).map_err(|e| e.to_string())?;
        eprintln!("wrote {} ({} users)", path.display(), corpus.len());
    }
    Ok(())
}

fn cmd_polish(args: &[String]) -> Result<(), String> {
    let input = positional(args, 0)?;
    let output = positional(args, 1)?;
    let corpus = load_corpus(Path::new(input)).map_err(|e| e.to_string())?;
    let (polished, report) = Polisher::new(PolishConfig::default()).polish(&corpus);
    save_corpus(&polished, Path::new(output)).map_err(|e| e.to_string())?;
    eprintln!(
        "polished {} -> {}\n  bot accounts dropped:      {}\n  duplicate messages:        {}\n  \
         short messages:            {}\n  low-diversity messages:    {}\n  \
         non-english messages:      {}\n  emptied users dropped:     {}\n  messages kept:             {}",
        input,
        output,
        report.bot_accounts,
        report.duplicate_messages,
        report.short_messages,
        report.low_diversity_messages,
        report.non_english_messages,
        report.emptied_users,
        report.kept_messages,
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let input = positional(args, 0)?;
    let corpus = load_corpus(Path::new(input)).map_err(|e| e.to_string())?;
    println!("corpus:  {}", corpus.name);
    println!("users:   {}", corpus.len());
    println!("posts:   {}", corpus.total_posts());
    let cdf = words_per_user_cdf(&corpus);
    println!("words-per-user CDF:");
    for x in [100u64, 500, 1000, 1500, 3000, 5000, 10_000] {
        println!("  <= {x:>6} words: {:.1}%", cdf_at(&cdf, x) * 100.0);
    }
    Ok(())
}

fn cmd_link(args: &[String]) -> Result<(), String> {
    let known_path = positional(args, 0)?;
    let unknown_path = positional(args, 1)?;
    let known = load_corpus(Path::new(known_path)).map_err(|e| e.to_string())?;
    let unknown = load_corpus(Path::new(unknown_path)).map_err(|e| e.to_string())?;
    let mut config = LinkerConfig::default();
    if let Some(t) = flag_value(args, "--threshold") {
        config.two_stage.threshold = t.parse().map_err(|_| "--threshold must be a float")?;
    }
    if let Some(k) = flag_value(args, "--k") {
        config.two_stage.k = k.parse().map_err(|_| "--k must be an integer")?;
    }
    if let Some(t) = flag_value(args, "--threads") {
        config.two_stage.threads = t
            .parse()
            .map_err(|_| "--threads must be an integer (0 = auto)")?;
    }
    eprintln!(
        "linking {} unknowns against {} knowns (k={}, threshold={}, threads={})...",
        unknown.len(),
        known.len(),
        config.two_stage.k,
        config.two_stage.threshold,
        config.two_stage.effective_threads(),
    );
    let metrics_path = flag_value(args, "--metrics");
    let mut linker = Linker::new(config);
    if metrics_path.is_some() {
        linker = linker.with_metrics(PipelineMetrics::enabled());
    }
    let matches = linker.link(&known, &unknown);
    println!("unknown_alias\tknown_alias\tscore");
    for m in &matches {
        println!("{}\t{}\t{:.4}", m.unknown_alias, m.known_alias, m.score);
    }
    eprintln!("{} pair(s) emitted", matches.len());
    if let Some(path) = metrics_path {
        std::fs::write(path, linker.metrics().to_json_pretty()).map_err(|e| e.to_string())?;
        eprintln!("pipeline metrics written to {path}");
    }
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let input = positional(args, 0)?;
    let alias = positional(args, 1)?;
    let corpus = load_corpus(Path::new(input)).map_err(|e| e.to_string())?;
    let user = corpus
        .user(alias)
        .ok_or_else(|| format!("alias {alias:?} not found in {input}"))?;
    println!("alias:  {}", user.alias);
    println!("posts:  {}", user.posts.len());
    println!("words:  {}", user.total_words());
    let builder = ProfileBuilder::new(ProfilePolicy::default());
    match builder.build(&user.timestamps()) {
        Ok(profile) => {
            println!(
                "daily activity profile ({} usable posts, peak {:02}:00 UTC, entropy {:.2} bits):",
                profile.total_posts(),
                profile.peak_hour(),
                profile.entropy_bits()
            );
            for h in 0..24 {
                let bar = "#".repeat((profile.share(h) * 100.0).round() as usize);
                println!("  {h:02}:00 {bar}");
            }
        }
        Err(e) => println!("daily activity profile: unavailable ({e})"),
    }
    let dossier = build_profile([user]);
    if dossier.fact_count() > 0 {
        println!("\nleaked identity facts:\n{}", dossier.render());
    } else {
        println!("\nno identity facts recorded for this alias.");
    }
    Ok(())
}

fn cmd_obfuscate(args: &[String]) -> Result<(), String> {
    let input = positional(args, 0)?;
    let output = positional(args, 1)?;
    let mut corpus = load_corpus(Path::new(input)).map_err(|e| e.to_string())?;
    let obfuscator = Obfuscator::new(ObfuscateConfig::default());
    let mut posts = 0usize;
    for user in &mut corpus.users {
        for post in &mut user.posts {
            post.text = obfuscator.apply(&post.text);
            posts += 1;
        }
    }
    save_corpus(&corpus, Path::new(output)).map_err(|e| e.to_string())?;
    eprintln!("obfuscated {posts} posts -> {output}");
    Ok(())
}
