//! `darklight` — command-line interface to the alias-linking pipeline.
//!
//! ```text
//! darklight gen <out-dir> [--scale small|default|paper] [--seed N]
//!     Generate a synthetic three-forum world as TSV corpora.
//!
//! darklight polish <in.tsv> <out.tsv> [--lenient|--strict]
//!     Run the 12 polishing steps; print the per-step removal report.
//!
//! darklight stats <in.tsv> [--lenient|--strict]
//!     Corpus statistics: users, posts, words-per-user CDF.
//!
//! darklight fit <known.tsv> --out <artifact-dir> [--threads N]
//!              [--metrics out.json] [--lenient|--strict]
//!     Polish, refine, and fit the known corpus once, then persist the
//!     fitted pipeline state (vocabulary + IDF weights, per-author
//!     sparse vectors, activity profiles, feature config, run
//!     fingerprint) as a durable artifact under <artifact-dir>. Each
//!     fit publishes a new epoch directory and atomically swaps the
//!     CURRENT pointer; earlier epochs are kept for recovery.
//!
//! darklight link <known.tsv> <unknown.tsv> [--threshold T] [--k K]
//!               [--threads N] [--metrics out.json] [--lenient|--strict]
//!               [--batch-size B] [--mem-budget SIZE] [--deadline DUR]
//!               [--checkpoint state.json]
//! darklight link --artifact <artifact-dir> <unknown.tsv> [--threshold T]
//!               [--k K] [--threads N] [--metrics out.json]
//!               [--lenient|--strict]
//!     Polish, refine, and link the two corpora; print matched alias
//!     pairs as TSV (unknown_alias, known_alias, score). With
//!     --artifact, the known side is loaded from a `darklight fit`
//!     artifact instead of being refit — output is byte-identical to
//!     the fit-every-time run at every thread count. A corrupt
//!     artifact is detected (CRC + fingerprint) and the loader falls
//!     back to the newest intact epoch; --artifact serves unbatched,
//!     so it rejects --batch-size/--mem-budget/--deadline/--checkpoint.
//!     With
//!     --metrics, also write a JSON snapshot of pipeline counters,
//!     stage timers, and latency histograms (see darklight-obs).
//!     --threads 0 (the default) sizes the worker pool from the
//!     machine (or the DARKLIGHT_THREADS environment variable);
//!     output is identical at every thread count.
//!     --batch-size runs the RAM-bounded batched driver (§IV-J);
//!     --mem-budget runs it under a byte ceiling instead (binary
//!     units: 512MiB, 2GiB; also the DARKLIGHT_MEM_BUDGET env var),
//!     deriving the largest admissible batch size — the two flags are
//!     mutually exclusive, and output is byte-identical to the
//!     equivalent explicit --batch-size run. --deadline bounds the
//!     batched rounds (30s, 30m, 2h); an expired run exits 1 leaving
//!     a valid --checkpoint to resume from.
//!     --checkpoint persists batched state after every round and
//!     resumes from it on restart (implies --batch-size 100 unless
//!     given). A checkpoint written by a different config/corpus is
//!     refused rather than silently resumed. Checkpoint and corpus
//!     I/O retries transient failures with deterministic backoff.
//!
//! darklight profile <corpus.tsv> <alias>
//!     Activity profile and leaked-fact dossier for one alias.
//!
//! darklight obfuscate <in.tsv> <out.tsv>
//!     Scrub writing style from every post (adversarial stylometry).
//!
//! darklight bench-matrix [--out DIR] [--check [DIR]] [--scenarios a,b]
//!     [--scales t,s,m,l] [--seed N] [--threads N] [--mem-budget SIZE]
//!     [--include-large] [--throughput-tolerance PCT] [--f1-tolerance PTS]
//!     Run the scenario-matrix benchmark (DESIGN.md §12): every requested
//!     (scenario, scale) cell goes through the full governed pipeline and
//!     produces one BENCH_<scenario>_<scale>.json. Without --check the
//!     reports are written into --out (default: benchmarks). With --check
//!     the reports are instead compared against the baselines in DIR
//!     (default: benchmarks): the deterministic sections must match
//!     bit-for-bit, throughput may regress at most --throughput-tolerance
//!     percent (default 25), F1 may drop at most --f1-tolerance points
//!     (default 2); any failing cell prints a typed report line and the
//!     command exits 1. Scales: t (test), s (~1k authors, the default),
//!     m (~10k), l (opt-in via --include-large).
//! ```
//!
//! Corpus-reading commands default to **strict** ingestion: the first
//! malformed line aborts. `--lenient` quarantines malformed lines
//! instead (printing a per-line report to stderr) and fails only when
//! more than half the input is bad.
//!
//! Exit codes: 0 success, 1 data/IO error, 2 usage error.

use darklight::activity::profile::{ProfileBuilder, ProfilePolicy};
use darklight::core::artifact::FitArtifact;
use darklight::core::batch::{BatchConfig, BatchError};
use darklight::core::linker::{Linker, LinkerConfig};
use darklight::corpus::io::{load_corpus, load_corpus_lenient, save_corpus, LenientConfig};
use darklight::corpus::model::Corpus;
use darklight::corpus::polish::{PolishConfig, Polisher};
use darklight::corpus::stats::{cdf_at, words_per_user_cdf};
use darklight::eval::profiler::build_profile;
use darklight::govern::{
    fault, parse_duration, seed_from, with_retry, Deadline, MemoryBudget, RetryPolicy,
};
use darklight::obs::PipelineMetrics;
use darklight::store::EpochStore;
use darklight::synth::scenario::{ScenarioBuilder, ScenarioConfig};
use darklight::text::obfuscate::{ObfuscateConfig, Obfuscator};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// A CLI failure, split by whose fault it is: `Usage` (bad invocation,
/// exit 2) vs `Data` (the input or filesystem let us down, exit 1).
enum CliError {
    Usage(String),
    Data(String),
}

fn usage(msg: impl std::fmt::Display) -> CliError {
    CliError::Usage(msg.to_string())
}

fn data(msg: impl std::fmt::Display) -> CliError {
    CliError::Data(msg.to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("polish") => cmd_polish(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("fit") => cmd_fit(&args[1..]),
        Some("link") => cmd_link(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("obfuscate") => cmd_obfuscate(&args[1..]),
        Some("bench-matrix") => cmd_bench_matrix(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            eprintln!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(usage(format!("unknown command {other:?}\n{USAGE}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Data(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Err(CliError::Usage(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str =
    "usage: darklight <gen|polish|stats|fit|link|profile|obfuscate|bench-matrix> ...\n\
  gen <out-dir> [--scale small|default|paper] [--seed N]\n\
  polish <in.tsv> <out.tsv> [--lenient|--strict]\n\
  stats <in.tsv> [--lenient|--strict]\n\
  fit <known.tsv> --out <artifact-dir> [--threads N] [--metrics out.json] [--lenient|--strict]\n\
  link <known.tsv> <unknown.tsv> [--threshold T] [--k K] [--threads N] [--metrics out.json]\n\
       [--lenient|--strict] [--batch-size B] [--mem-budget SIZE] [--deadline DUR]\n\
       [--checkpoint state.json]\n\
  link --artifact <artifact-dir> <unknown.tsv> [--threshold T] [--k K] [--threads N]\n\
       [--metrics out.json] [--lenient|--strict]\n\
  profile <corpus.tsv> <alias>\n\
  obfuscate <in.tsv> <out.tsv>\n\
  bench-matrix [--out DIR] [--check [DIR]] [--scenarios a,b] [--scales t,s,m,l] [--seed N]\n\
       [--threads N] [--mem-budget SIZE] [--include-large]\n\
       [--throughput-tolerance PCT] [--f1-tolerance PTS]\n\
exit codes: 0 success, 1 data/io error (or failed bench-matrix --check), 2 usage error";

/// Flags that take no value (everything else consumes the next token).
const BOOL_FLAGS: &[&str] = &["--lenient", "--strict"];

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn positional(args: &[String], n: usize) -> Result<&str, CliError> {
    let mut seen = 0;
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") {
            skip_next = !BOOL_FLAGS.contains(&a.as_str());
            continue;
        }
        if seen == n {
            return Ok(a);
        }
        seen += 1;
    }
    Err(usage(format!("missing argument #{}\n{USAGE}", n + 1)))
}

/// Resolves `--lenient`/`--strict` (strict wins by default; both at once
/// is a contradiction the user must resolve).
fn lenient_mode(args: &[String]) -> Result<bool, CliError> {
    match (has_flag(args, "--lenient"), has_flag(args, "--strict")) {
        (true, true) => Err(usage("--lenient and --strict are mutually exclusive")),
        (lenient, _) => Ok(lenient),
    }
}

/// Loads a corpus in the selected ingestion mode, retrying transient
/// I/O failures with deterministic backoff (jitter seeded by the path,
/// so a rerun sleeps the same schedule). Parse-class failures — a
/// malformed line in strict mode, a blown lenient tolerance budget —
/// fail fast: rereading a corrupt file cannot fix it. In lenient mode a
/// per-line quarantine report goes to stderr and the load succeeds
/// unless the tolerance budget is blown.
fn load_corpus_cli(
    path: &str,
    lenient: bool,
    metrics: &PipelineMetrics,
) -> Result<Corpus, CliError> {
    use darklight::corpus::io::ReadError;
    let policy = RetryPolicy::default();
    let seed = seed_from(path.as_bytes());
    let transient = |e: &ReadError| matches!(e, ReadError::Io(_));
    if !lenient {
        return with_retry("corpus.read", &policy, seed, metrics, transient, || {
            fault::maybe_fail_io("corpus.read")?;
            load_corpus(Path::new(path))
        })
        .map_err(data);
    }
    let config = LenientConfig {
        metrics: metrics.clone(),
        ..LenientConfig::default()
    };
    let (corpus, report) = with_retry("corpus.read", &policy, seed, metrics, transient, || {
        fault::maybe_fail_io("corpus.read")?;
        load_corpus_lenient(Path::new(path), &config)
    })
    .map_err(data)?;
    if !report.is_clean() {
        eprintln!(
            "warning: quarantined {} of {} line(s) loading {path}:",
            report.quarantined(),
            report.lines_total
        );
        const SHOWN: usize = 10;
        for issue in report.issues.iter().take(SHOWN) {
            eprintln!(
                "  line {}: [{}] {}",
                issue.line,
                issue.kind.as_str(),
                issue.reason
            );
        }
        if report.issues.len() > SHOWN {
            eprintln!("  ... and {} more", report.issues.len() - SHOWN);
        }
    }
    Ok(corpus)
}

fn cmd_gen(args: &[String]) -> Result<(), CliError> {
    let out_dir = positional(args, 0)?;
    let mut config = match flag_value(args, "--scale") {
        Some("small") | None => ScenarioConfig::small(),
        Some("default") => ScenarioConfig::default_scale(),
        Some("paper") => ScenarioConfig::paper_scale(),
        Some(other) => return Err(usage(format!("unknown scale {other:?}"))),
    };
    if let Some(seed) = flag_value(args, "--seed") {
        config.seed = seed
            .parse()
            .map_err(|_| usage("--seed must be an integer"))?;
    }
    std::fs::create_dir_all(out_dir).map_err(data)?;
    eprintln!("generating world (seed {})...", config.seed);
    let scenario = ScenarioBuilder::new(config).build();
    for (name, corpus) in [
        ("reddit.tsv", &scenario.reddit),
        ("tmg.tsv", &scenario.tmg),
        ("dm.tsv", &scenario.dm),
    ] {
        let path = Path::new(out_dir).join(name);
        save_corpus(corpus, &path).map_err(data)?;
        eprintln!("wrote {} ({} users)", path.display(), corpus.len());
    }
    Ok(())
}

fn cmd_polish(args: &[String]) -> Result<(), CliError> {
    let input = positional(args, 0)?;
    let output = positional(args, 1)?;
    let lenient = lenient_mode(args)?;
    let corpus = load_corpus_cli(input, lenient, &PipelineMetrics::disabled())?;
    let (polished, report) = Polisher::new(PolishConfig::default()).polish(&corpus);
    save_corpus(&polished, Path::new(output)).map_err(data)?;
    eprintln!(
        "polished {} -> {}\n  bot accounts dropped:      {}\n  duplicate messages:        {}\n  \
         short messages:            {}\n  low-diversity messages:    {}\n  \
         non-english messages:      {}\n  emptied users dropped:     {}\n  messages kept:             {}",
        input,
        output,
        report.bot_accounts,
        report.duplicate_messages,
        report.short_messages,
        report.low_diversity_messages,
        report.non_english_messages,
        report.emptied_users,
        report.kept_messages,
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    let input = positional(args, 0)?;
    let lenient = lenient_mode(args)?;
    let corpus = load_corpus_cli(input, lenient, &PipelineMetrics::disabled())?;
    println!("corpus:  {}", corpus.name);
    println!("users:   {}", corpus.len());
    println!("posts:   {}", corpus.total_posts());
    let cdf = words_per_user_cdf(&corpus);
    println!("words-per-user CDF:");
    for x in [100u64, 500, 1000, 1500, 3000, 5000, 10_000] {
        println!("  <= {x:>6} words: {:.1}%", cdf_at(&cdf, x) * 100.0);
    }
    Ok(())
}

fn cmd_fit(args: &[String]) -> Result<(), CliError> {
    let known_path = positional(args, 0)?;
    let out_dir = flag_value(args, "--out")
        .ok_or_else(|| usage(format!("fit requires --out <artifact-dir>\n{USAGE}")))?;
    let lenient = lenient_mode(args)?;
    let metrics_path = flag_value(args, "--metrics");
    let metrics = if metrics_path.is_some() {
        PipelineMetrics::enabled()
    } else {
        PipelineMetrics::disabled()
    };
    let mut config = LinkerConfig::default();
    if let Some(t) = flag_value(args, "--threads") {
        config.two_stage.threads = t
            .parse()
            .map_err(|_| usage("--threads must be an integer (0 = auto)"))?;
    }
    let known = load_corpus_cli(known_path, lenient, &metrics)?;
    eprintln!(
        "fitting {} known aliases (threads={})...",
        known.len(),
        config.two_stage.effective_threads(),
    );
    let mut linker = Linker::new(config);
    if metrics_path.is_some() {
        linker = linker.with_metrics(metrics.clone());
    }
    let artifact = linker.fit_artifact(&known);
    let store = EpochStore::new(out_dir).with_metrics(metrics);
    let epoch = artifact.save(&store).map_err(data)?;
    eprintln!(
        "fitted {} alias(es) -> {} (epoch {epoch})",
        artifact.known.len(),
        out_dir,
    );
    if let Some(path) = metrics_path {
        std::fs::write(path, linker.metrics().to_json_pretty()).map_err(data)?;
        eprintln!("pipeline metrics written to {path}");
    }
    Ok(())
}

/// Serving half of the fit-once split: `link --artifact <dir> <unknown>`.
fn cmd_link_artifact(args: &[String], artifact_dir: &str) -> Result<(), CliError> {
    for banned in ["--batch-size", "--mem-budget", "--deadline", "--checkpoint"] {
        if has_flag(args, banned) {
            return Err(usage(format!(
                "{banned} cannot be combined with --artifact: serving a fitted artifact \
                 is always unbatched (batching bounds the fit-side working set, which \
                 the artifact has already paid)",
            )));
        }
    }
    let unknown_path = positional(args, 0)?;
    let lenient = lenient_mode(args)?;
    let metrics_path = flag_value(args, "--metrics");
    let metrics = if metrics_path.is_some() {
        PipelineMetrics::enabled()
    } else {
        PipelineMetrics::disabled()
    };
    let mut config = LinkerConfig::default();
    if let Some(t) = flag_value(args, "--threshold") {
        config.two_stage.threshold = t
            .parse()
            .map_err(|_| usage("--threshold must be a float"))?;
    }
    if let Some(k) = flag_value(args, "--k") {
        config.two_stage.k = k.parse().map_err(|_| usage("--k must be an integer"))?;
    }
    if let Some(t) = flag_value(args, "--threads") {
        config.two_stage.threads = t
            .parse()
            .map_err(|_| usage("--threads must be an integer (0 = auto)"))?;
    }
    let threads = config.two_stage.effective_threads();
    let store = EpochStore::new(artifact_dir).with_metrics(metrics.clone());
    let (artifact, epoch) = FitArtifact::load(&store, threads).map_err(data)?;
    let unknown = load_corpus_cli(unknown_path, lenient, &metrics)?;
    eprintln!(
        "linking {} unknowns against {} fitted knowns from {} epoch {epoch} \
         (k={}, threshold={}, threads={threads})...",
        unknown.len(),
        artifact.known.len(),
        artifact_dir,
        config.two_stage.k,
        config.two_stage.threshold,
    );
    let mut linker = Linker::new(config);
    if metrics_path.is_some() {
        linker = linker.with_metrics(metrics);
    }
    let matches = linker.link_with_artifact(&artifact, &unknown);
    println!("unknown_alias\tknown_alias\tscore");
    for m in &matches {
        println!("{}\t{}\t{:.4}", m.unknown_alias, m.known_alias, m.score);
    }
    eprintln!("{} pair(s) emitted", matches.len());
    if let Some(path) = metrics_path {
        std::fs::write(path, linker.metrics().to_json_pretty()).map_err(data)?;
        eprintln!("pipeline metrics written to {path}");
    }
    Ok(())
}

fn cmd_link(args: &[String]) -> Result<(), CliError> {
    if let Some(dir) = flag_value(args, "--artifact") {
        let dir = dir.to_string();
        return cmd_link_artifact(args, &dir);
    }
    let known_path = positional(args, 0)?;
    let unknown_path = positional(args, 1)?;
    let lenient = lenient_mode(args)?;
    let metrics_path = flag_value(args, "--metrics");
    let metrics = if metrics_path.is_some() {
        PipelineMetrics::enabled()
    } else {
        PipelineMetrics::disabled()
    };
    let mut config = LinkerConfig::default();
    if let Some(t) = flag_value(args, "--threshold") {
        config.two_stage.threshold = t
            .parse()
            .map_err(|_| usage("--threshold must be a float"))?;
    }
    if let Some(k) = flag_value(args, "--k") {
        config.two_stage.k = k.parse().map_err(|_| usage("--k must be an integer"))?;
    }
    if let Some(t) = flag_value(args, "--threads") {
        config.two_stage.threads = t
            .parse()
            .map_err(|_| usage("--threads must be an integer (0 = auto)"))?;
    }
    if let Some(b) = flag_value(args, "--batch-size") {
        let batch_size = b
            .parse()
            .map_err(|_| usage("--batch-size must be an integer"))?;
        config.batch = Some(BatchConfig { batch_size });
    }
    match flag_value(args, "--mem-budget") {
        Some(_) if config.batch.is_some() => {
            return Err(usage(
                "--batch-size and --mem-budget are mutually exclusive: give an explicit \
                 batch size or let the budget derive one, not both",
            ));
        }
        Some(s) => {
            config.two_stage.govern.budget = Some(MemoryBudget::parse(s).map_err(usage)?);
        }
        // The environment variable is a softer signal than the flag: it
        // composes with an explicit --batch-size, acting as a guard-rail
        // (the pressure ladder shrinks rounds that would breach it).
        None => config.two_stage.govern.budget = MemoryBudget::from_env().map_err(usage)?,
    }
    if let Some(p) = flag_value(args, "--checkpoint") {
        // Checkpoints only exist for the batched driver; default to the
        // paper's B=100 when neither --batch-size nor --mem-budget was
        // given to pick one.
        if config.two_stage.govern.budget.is_none() {
            config.batch.get_or_insert_with(BatchConfig::default);
        }
        config.checkpoint = Some(PathBuf::from(p));
    }
    if let Some(d) = flag_value(args, "--deadline") {
        if config.batch.is_none() && config.two_stage.govern.budget.is_none() {
            return Err(usage(
                "--deadline only bounds batched runs: add --batch-size, --mem-budget, \
                 or --checkpoint",
            ));
        }
        let limit = parse_duration(d).map_err(usage)?;
        config.two_stage.govern.deadline = Deadline::after(limit);
    }
    if let Some(batch) = &config.batch {
        batch.validate().map_err(usage)?;
    }
    let known = load_corpus_cli(known_path, lenient, &metrics)?;
    let unknown = load_corpus_cli(unknown_path, lenient, &metrics)?;
    eprintln!(
        "linking {} unknowns against {} knowns (k={}, threshold={}, threads={})...",
        unknown.len(),
        known.len(),
        config.two_stage.k,
        config.two_stage.threshold,
        config.two_stage.effective_threads(),
    );
    let mut linker = Linker::new(config);
    if metrics_path.is_some() {
        linker = linker.with_metrics(metrics);
    }
    let matches = linker.try_link(&known, &unknown).map_err(|e| match e {
        BatchError::InvalidConfig(_) => usage(e),
        other => data(other),
    })?;
    println!("unknown_alias\tknown_alias\tscore");
    for m in &matches {
        println!("{}\t{}\t{:.4}", m.unknown_alias, m.known_alias, m.score);
    }
    eprintln!("{} pair(s) emitted", matches.len());
    if let Some(path) = metrics_path {
        std::fs::write(path, linker.metrics().to_json_pretty()).map_err(data)?;
        eprintln!("pipeline metrics written to {path}");
    }
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), CliError> {
    let input = positional(args, 0)?;
    let alias = positional(args, 1)?;
    let corpus = load_corpus(Path::new(input)).map_err(data)?;
    let user = corpus
        .user(alias)
        .ok_or_else(|| data(format!("alias {alias:?} not found in {input}")))?;
    println!("alias:  {}", user.alias);
    println!("posts:  {}", user.posts.len());
    println!("words:  {}", user.total_words());
    let builder = ProfileBuilder::new(ProfilePolicy::default());
    match builder.build(&user.timestamps()) {
        Ok(profile) => {
            println!(
                "daily activity profile ({} usable posts, peak {:02}:00 UTC, entropy {:.2} bits):",
                profile.total_posts(),
                profile.peak_hour(),
                profile.entropy_bits()
            );
            for h in 0..24 {
                let bar = "#".repeat((profile.share(h) * 100.0).round() as usize);
                println!("  {h:02}:00 {bar}");
            }
        }
        Err(e) => println!("daily activity profile: unavailable ({e})"),
    }
    let dossier = build_profile([user]);
    if dossier.fact_count() > 0 {
        println!("\nleaked identity facts:\n{}", dossier.render());
    } else {
        println!("\nno identity facts recorded for this alias.");
    }
    Ok(())
}

fn cmd_obfuscate(args: &[String]) -> Result<(), CliError> {
    let input = positional(args, 0)?;
    let output = positional(args, 1)?;
    let mut corpus = load_corpus(Path::new(input)).map_err(data)?;
    let obfuscator = Obfuscator::new(ObfuscateConfig::default());
    let mut posts = 0usize;
    for user in &mut corpus.users {
        for post in &mut user.posts {
            post.text = obfuscator.apply(&post.text);
            posts += 1;
        }
    }
    save_corpus(&corpus, Path::new(output)).map_err(data)?;
    eprintln!("obfuscated {posts} posts -> {output}");
    Ok(())
}

fn cmd_bench_matrix(args: &[String]) -> Result<(), CliError> {
    use darklight_bench::matrix::{
        check_cell, run_cell, CellOptions, CheckTolerance, DEFAULT_F1_TOLERANCE,
        DEFAULT_THROUGHPUT_TOLERANCE,
    };
    use darklight_synth::matrix::{cells_for, MatrixScale, ScenarioKind, MATRIX_SEED};

    let kinds: Vec<ScenarioKind> = match flag_value(args, "--scenarios") {
        None => ScenarioKind::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .map(|name| {
                ScenarioKind::from_name(name.trim())
                    .ok_or_else(|| usage(format!("unknown scenario {name:?}")))
            })
            .collect::<Result<_, _>>()?,
    };
    let scales: Vec<MatrixScale> = match flag_value(args, "--scales") {
        None => vec![MatrixScale::Small],
        Some(list) => list
            .split(',')
            .map(|name| {
                MatrixScale::from_name(name.trim())
                    .ok_or_else(|| usage(format!("unknown scale {name:?}")))
            })
            .collect::<Result<_, _>>()?,
    };
    if !has_flag(args, "--include-large") {
        if let Some(scale) = scales.iter().find(|s| s.opt_in()) {
            return Err(usage(format!(
                "scale {:?} is opt-in: pass --include-large to run it",
                scale.name()
            )));
        }
    }
    let seed: u64 = match flag_value(args, "--seed") {
        None => MATRIX_SEED,
        Some(s) => s.parse().map_err(|_| usage("--seed must be an integer"))?,
    };
    let mut opts = CellOptions::default();
    if let Some(t) = flag_value(args, "--threads") {
        opts.threads = t
            .parse()
            .map_err(|_| usage("--threads must be an integer (0 = auto)"))?;
    }
    if let Some(s) = flag_value(args, "--mem-budget") {
        opts.mem_budget = Some(MemoryBudget::parse(s).map_err(usage)?);
    }
    let tol = CheckTolerance {
        throughput: match flag_value(args, "--throughput-tolerance") {
            None => DEFAULT_THROUGHPUT_TOLERANCE,
            Some(p) => {
                let pct: f64 = p
                    .parse()
                    .map_err(|_| usage("--throughput-tolerance must be a percentage"))?;
                pct / 100.0
            }
        },
        f1: match flag_value(args, "--f1-tolerance") {
            None => DEFAULT_F1_TOLERANCE,
            Some(p) => {
                let pts: f64 = p
                    .parse()
                    .map_err(|_| usage("--f1-tolerance must be a number of points"))?;
                pts / 100.0
            }
        },
    };
    // `--check` takes an optional directory: bare `--check` compares
    // against the committed default.
    let check_dir: Option<String> =
        args.iter()
            .position(|a| a == "--check")
            .map(|i| match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => "benchmarks".to_string(),
            });
    let out_dir = flag_value(args, "--out").unwrap_or("benchmarks");

    let cells = cells_for(&kinds, &scales, seed);
    if let Some(dir) = check_dir {
        let mut failures = 0usize;
        for spec in &cells {
            let path = Path::new(&dir).join(spec.file_name());
            let check = match std::fs::read_to_string(&path) {
                Err(_) => darklight_bench::matrix::CellCheck {
                    cell: spec.id(),
                    verdict: darklight_bench::matrix::CellVerdict::MissingBaseline,
                },
                Ok(baseline) => {
                    eprintln!("[{}] running cell...", spec.id());
                    let report = run_cell(spec, &opts).map_err(data)?;
                    check_cell(&spec.id(), &baseline, &report, &tol)
                }
            };
            if !check.verdict.passed() {
                failures += 1;
            }
            println!("{}", check.render());
        }
        if failures > 0 {
            return Err(data(format!(
                "{failures} of {} cell(s) failed the regression gate",
                cells.len()
            )));
        }
        eprintln!("all {} cell(s) passed", cells.len());
        Ok(())
    } else {
        std::fs::create_dir_all(out_dir).map_err(data)?;
        for spec in &cells {
            eprintln!("[{}] running cell...", spec.id());
            let report = run_cell(spec, &opts).map_err(data)?;
            let path = Path::new(out_dir).join(spec.file_name());
            std::fs::write(&path, report.render_pretty())
                .map_err(|e| data(format!("cannot write {}: {e}", path.display())))?;
            eprintln!("wrote {}", path.display());
        }
        Ok(())
    }
}
