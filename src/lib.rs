//! # darklight
//!
//! A from-scratch Rust implementation of the alias-linking pipeline of
//! *"A Light in the Dark Web: Linking Dark Web Aliases to Real Internet
//! Identities"* (Arabnezhad, La Morgia, Mei, Nemmi, Stefa — ICDCS 2020):
//! linking forum aliases across the Dark Web and the open web by combining
//! **stylometry** (TF-IDF-weighted word/char n-grams and char-class
//! frequencies) with **daily activity profiles** (24-bin posting-hour
//! histograms), through a two-stage *k-attribution → re-fit → threshold*
//! pipeline.
//!
//! The workspace is organized as one crate per subsystem, re-exported here:
//!
//! * [`activity`] — civil time, holiday calendars, activity profiles;
//! * [`text`] — tokenizer, lemmatizer, normalization, language detection;
//! * [`features`] — sparse vectors, n-grams, TF-IDF, the Table II pipeline;
//! * [`corpus`] — the forum data model, the 12 polishing steps, refinement
//!   and alter-ego generation, statistics, TSV I/O;
//! * [`synth`] — the synthetic three-forum world used in place of the
//!   paper's (non-public) scraped datasets;
//! * [`core`] — k-attribution, the two-stage algorithm, baselines, batch
//!   mode, and the high-level [`Linker`](core::linker::Linker);
//! * [`eval`] — precision/recall curves, AUC, accuracy@k, verdict
//!   simulation, and personal-profile aggregation;
//! * [`obs`] — opt-in pipeline metrics (counters, gauges, stage timers,
//!   latency histograms) with a dependency-free JSON snapshot;
//! * [`govern`] — the resource governor: memory-budgeted batch sizing,
//!   cooperative stage deadlines, and deterministic retrying I/O;
//! * [`par`] — the shared scoped-thread worker-pool helpers every parallel
//!   stage routes through (deterministic indexed parallel map);
//! * [`store`] — durable fit artifacts: a versioned, checksummed,
//!   epoch-swapped container for persisted pipeline state (DESIGN.md §14);
//! * [`bench`] — the experiment harness behind the `repro` binary and the
//!   `bench-matrix` scenario-matrix benchmark (DESIGN.md §12).
//!
//! # Quickstart
//!
//! ```
//! use darklight::core::linker::{Linker, LinkerConfig};
//! use darklight::corpus::model::{Corpus, Post, User};
//!
//! // Two forums where the same person posts under different aliases.
//! let mut forum_a = Corpus::new("forum_a");
//! let mut forum_b = Corpus::new("forum_b");
//! let base = 1_486_375_200; // Monday 2017-02-06, 10:00 UTC
//! for (corpus, alias) in [(&mut forum_a, "night_gardener"), (&mut forum_b, "moss_witch")] {
//!     let mut user = User::new(alias, Some(1));
//!     for i in 0..95i64 {
//!         let ts = base + (i / 5) * 7 * 86_400 + (i % 5) * 86_400;
//!         user.posts.push(Post::new(
//!             format!("my orchid greenhouse log entry {i}: the phalaenopsis cuttings rooted \
//!                      nicely and the terrarium humidity sensors read steady again"),
//!             ts,
//!         ));
//!     }
//!     corpus.users.push(user);
//! }
//!
//! let mut config = LinkerConfig::default();
//! config.two_stage.threshold = 0.5;
//! let matches = Linker::new(config).link(&forum_a, &forum_b);
//! assert_eq!(matches[0].known_alias, "night_gardener");
//! assert_eq!(matches[0].unknown_alias, "moss_witch");
//! ```

#![forbid(unsafe_code)]

pub use darklight_activity as activity;
pub use darklight_bench as bench;
pub use darklight_core as core;
pub use darklight_corpus as corpus;
pub use darklight_eval as eval;
pub use darklight_features as features;
pub use darklight_govern as govern;
pub use darklight_obs as obs;
pub use darklight_par as par;
pub use darklight_store as store;
pub use darklight_synth as synth;
pub use darklight_text as text;

/// Commonly used types, importable in one line.
pub mod prelude {
    pub use darklight_activity::profile::{DailyActivityProfile, ProfileBuilder, ProfilePolicy};
    pub use darklight_core::dataset::{Dataset, DatasetBuilder, Record};
    pub use darklight_core::linker::{AliasMatch, Linker, LinkerConfig};
    pub use darklight_core::twostage::{RankedMatch, TwoStage, TwoStageConfig};
    pub use darklight_corpus::model::{Corpus, Fact, FactKind, Post, User};
    pub use darklight_corpus::polish::{PolishConfig, Polisher};
    pub use darklight_eval::curve::PrCurve;
    pub use darklight_eval::verdict::{judge_pair, Verdict};
    pub use darklight_features::pipeline::{FeatureConfig, FeatureExtractor};
    pub use darklight_obs::PipelineMetrics;
    pub use darklight_synth::scenario::{Scenario, ScenarioBuilder, ScenarioConfig};
}
