//! Property tests for the shared worker-pool helper.
//!
//! The contract under test: for every input length and thread count —
//! including the ragged cases (empty, singleton, fewer items than
//! threads, length not divisible by the thread count) — `par_map`
//! returns exactly the serial map, in order, with correct indices, and
//! `par_map_chunks` partitions the slice into contiguous shards that
//! reassemble to the input.

use proptest::prelude::*;

proptest! {
    /// `par_map` equals the serial map for arbitrary lengths (0..=97,
    /// biased to straddle the thread count) and thread counts (0..=16,
    /// where 0 exercises the clamp-to-1 path).
    #[test]
    fn par_map_matches_serial(items in proptest::collection::vec(0i64..1000, 0..97), threads in 0usize..16) {
        let serial: Vec<(usize, i64)> = items.iter().enumerate().map(|(i, &x)| (i, x * 3 - 7)).collect();
        let parallel = darklight_par::par_map(&items, threads, |i, &x| (i, x * 3 - 7));
        prop_assert_eq!(parallel, serial);
    }

    /// Every item's closure sees its own global index, regardless of
    /// which chunk (and thread) it lands on.
    #[test]
    fn par_map_indices_are_global(len in 0usize..64, threads in 1usize..9) {
        let items: Vec<usize> = (0..len).collect();
        let indices = darklight_par::par_map(&items, threads, |i, &x| {
            prop_assert_eq!(i, x);
            Ok(i)
        });
        for (expect, got) in indices.into_iter().enumerate() {
            prop_assert_eq!(got?, expect);
        }
    }

    /// `par_map_chunks` shards are contiguous, ordered, and cover the
    /// input exactly once — so any associative per-shard fold merged in
    /// shard order equals the serial fold.
    #[test]
    fn par_map_chunks_reassembles_input(items in proptest::collection::vec(any::<u32>(), 0..80), threads in 0usize..12) {
        let shards = darklight_par::par_map_chunks(&items, threads, |shard| shard.to_vec());
        let reassembled: Vec<u32> = shards.iter().flatten().copied().collect();
        prop_assert_eq!(reassembled, items.clone());
        // No empty shards: every spawned worker had real work.
        if !items.is_empty() {
            prop_assert!(shards.iter().all(|s| !s.is_empty()));
        }
    }
}

/// The named ragged shapes from the issue, pinned explicitly so a
/// shrinking failure elsewhere cannot hide them: 0 items, 1 item,
/// fewer items than threads, and a length not divisible by the
/// thread count.
#[test]
fn ragged_shapes_pinned() {
    for (len, threads) in [(0usize, 4usize), (1, 4), (3, 8), (7, 3), (10, 4), (11, 3)] {
        let items: Vec<usize> = (0..len).collect();
        let out = darklight_par::par_map(&items, threads, |i, &x| i + x);
        let expect: Vec<usize> = (0..len).map(|i| i * 2).collect();
        assert_eq!(out, expect, "len={len} threads={threads}");
    }
}
