//! # darklight-par — shared worker-pool helpers
//!
//! Every parallel call site in the pipeline used to hand-roll its own
//! `std::thread::scope` chunking, which is exactly the pattern that
//! produced the seed's `top_k_batch` chunk-offset bug: computing a slot's
//! global index as `chunk_position × chunk_len` silently breaks the moment
//! the final chunk is short. This crate centralizes the correct pattern —
//! running-offset chunking over `chunks_mut`/`chunks` pairs that split at
//! identical boundaries — behind two order-preserving helpers:
//!
//! * [`par_map`] — indexed element-wise map: `f(i, &items[i])` for every
//!   `i`, output in input order;
//! * [`par_map_chunks`] — per-shard map for map-reduce accumulation:
//!   `f(shard)` once per contiguous shard, shards returned in order so the
//!   caller's serial merge is deterministic.
//!
//! Both are plain scoped threads (no work stealing, no dependencies): the
//! items are split into at most `threads` contiguous chunks and each chunk
//! runs on its own scoped thread. Output ordering is positional and does
//! not depend on scheduling, so for a pure `f` the result is bit-identical
//! for every thread count — the property the attribution pipeline's
//! determinism contract (threads = N ≡ threads = 1) is built on, and the
//! parity/property suites pin.
//!
//! [`resolve_threads`] turns a configuration knob (`0` = auto) into a
//! concrete worker count. The `DARKLIGHT_THREADS` environment variable
//! overrides auto-detection, which CI uses to run the whole test suite
//! once pinned to one worker and once unpinned; any divergence between the
//! two runs is a scheduling-dependent output bug.
//!
//! ## Panic isolation
//!
//! A panic inside a `par_map` closure unwinds its scoped thread and
//! re-raises when the scope joins, killing the whole process mid-run —
//! acceptable for a bug, ruinous for an hours-long attribution run felled
//! by one poisoned record. [`try_par_map`] and [`try_par_map_chunks`]
//! wrap every closure call in `catch_unwind`: a panicking item becomes an
//! `Err(`[`WorkerPanic`]`)` slot carrying the item index and the panic
//! payload, every other slot completes normally, and each caught panic
//! increments the `par.worker_panics` counter of the metrics handle the
//! caller passes in. Callers then choose the failure policy per stage:
//! skip-and-record (drop the item, keep the run alive) or fail-fast
//! (re-raise, where a silent hole would corrupt downstream results).
//!
//! The [`fault`] module provides the deterministic fault-injection hook
//! the resilience test-suite drives: `DARKLIGHT_FAULT_PANICS` names
//! `site:index` pairs at which instrumented call sites panic on purpose.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use darklight_govern::{Deadline, Expired};
use darklight_obs::PipelineMetrics;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};

/// Environment variable overriding auto-detected parallelism (`threads ==
/// 0`). Ignored when a caller asks for an explicit thread count.
pub const THREADS_ENV: &str = "DARKLIGHT_THREADS";

/// Resolves a requested thread count to the concrete number of workers.
///
/// * `requested > 0` — used as-is;
/// * `requested == 0` — the `DARKLIGHT_THREADS` environment variable if
///   set to a positive integer, otherwise
///   [`std::thread::available_parallelism`];
/// * detection failure — **1** (serial, always correct). The fallback is
///   deliberately not a fixed pool size: a machine whose parallelism
///   cannot be queried should degrade to the configuration whose output
///   every parallel path is defined against, not to four phantom workers.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f(index, item)` over `items` on up to `threads` scoped workers,
/// returning the results in input order.
///
/// The slice is split into `ceil(len / threads)`-sized contiguous chunks;
/// each worker owns one chunk of the output and computes the global index
/// of every slot from a running offset over the *actual* chunk lengths, so
/// a ragged final chunk (e.g. 7 items on 3 workers → 3 + 3 + 1) cannot
/// shift indices. `threads <= 1`, empty input, and single-item input all
/// take the serial path, which is definitionally identical to the parallel
/// one for pure `f`.
///
/// ```
/// let squares = darklight_par::par_map(&[1, 2, 3, 4, 5], 3, |i, &x| (i, x * x));
/// assert_eq!(squares, vec![(0, 1), (1, 4), (2, 9), (3, 16), (4, 25)]);
/// ```
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let f = &f;
    std::thread::scope(|scope| {
        // `chunks_mut` and `chunks` split at the same boundaries, so each
        // output chunk pairs positionally with its input chunk; the global
        // index follows from a running offset over actual chunk lengths.
        let mut start = 0usize;
        for (slot, shard) in results.chunks_mut(chunk).zip(items.chunks(chunk)) {
            let begin = start;
            start += slot.len();
            scope.spawn(move || {
                for (off, (out, item)) in slot.iter_mut().zip(shard).enumerate() {
                    *out = Some(f(begin + off, item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot filled by exactly one worker"))
        .collect()
}

/// Runs `f` once per contiguous shard of `items` on up to `threads` scoped
/// workers, returning one result per shard **in shard order**.
///
/// This is the map side of a map-reduce: each worker accumulates a private
/// partial result over its shard (no shared state, no locks), and the
/// caller folds the returned shards serially. When the fold is commutative
/// and associative over the shard contents — summing term counts, merging
/// frequency maps — the reduced value is identical to a serial pass for
/// every thread count.
///
/// ```
/// let partial = darklight_par::par_map_chunks(&[1u64, 2, 3, 4, 5], 2, |s| {
///     s.iter().sum::<u64>()
/// });
/// assert_eq!(partial.iter().sum::<u64>(), 15);
/// ```
pub fn par_map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        if items.is_empty() {
            return Vec::new();
        }
        return vec![f(items)];
    }
    let chunk = items.len().div_ceil(threads);
    let shards: Vec<&[T]> = items.chunks(chunk).collect();
    par_map(&shards, threads, |_, shard| f(shard))
}

/// Like [`par_map`], but cooperatively cancellable: every worker polls
/// `deadline` before each item, and observing expiry abandons the whole
/// map — partial results are discarded and `Err(Expired)` returned, so a
/// cancelled map never leaks half-computed state into the caller.
///
/// Discard-wholesale is what keeps degraded runs thread-count-invariant:
/// *which* items finished before expiry depends on scheduling, but since
/// none of them survive, the caller sees exactly two scheduling-free
/// outcomes — the complete result or `Expired`. Round-counted deadlines
/// ([`Deadline::after_rounds`]) only flip at round boundaries between
/// maps, so for them a given call is deterministically all-or-nothing.
///
/// ```
/// use darklight_govern::Deadline;
/// let ok = darklight_par::par_map_deadline(&[1, 2, 3], 2, &Deadline::none(), |_, &x| x * 2);
/// assert_eq!(ok.unwrap(), vec![2, 4, 6]);
/// let expired = Deadline::after_rounds(0);
/// assert!(darklight_par::par_map_deadline(&[1, 2, 3], 2, &expired, |_, &x| x * 2).is_err());
/// ```
///
/// # Errors
///
/// [`Expired`] when the deadline passed before the map completed.
pub fn par_map_deadline<T, R, F>(
    items: &[T],
    threads: usize,
    deadline: &Deadline,
    f: F,
) -> Result<Vec<R>, Expired>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            if deadline.is_expired() {
                return Err(Expired);
            }
            out.push(f(i, item));
        }
        return Ok(out);
    }
    let chunk = items.len().div_ceil(threads);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let f = &f;
    let aborted = &AtomicBool::new(false);
    std::thread::scope(|scope| {
        let mut start = 0usize;
        for (slot, shard) in results.chunks_mut(chunk).zip(items.chunks(chunk)) {
            let begin = start;
            start += slot.len();
            scope.spawn(move || {
                for (off, (out, item)) in slot.iter_mut().zip(shard).enumerate() {
                    if deadline.is_expired() {
                        aborted.store(true, Ordering::Relaxed);
                        return;
                    }
                    *out = Some(f(begin + off, item));
                }
            });
        }
    });
    if aborted.load(Ordering::Relaxed) {
        return Err(Expired);
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("every slot filled by exactly one worker"))
        .collect())
}

/// A panic caught inside a worker closure, reported as the `Err` slot of
/// [`try_par_map`] / [`try_par_map_chunks`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the item (or shard) whose closure panicked.
    pub index: usize,
    /// The panic payload, stringified (`&str` and `String` payloads are
    /// preserved verbatim; anything else is a placeholder).
    pub payload: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker panicked on item {}: {}",
            self.index, self.payload
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// Stringifies a `catch_unwind` payload, preserving the common cases.
fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "<non-string panic payload>".to_string(),
        },
    }
}

/// Like [`par_map`], but every closure call is isolated with
/// `catch_unwind`: a panicking item yields `Err(WorkerPanic)` in its slot
/// while every other item completes, and each caught panic increments the
/// `par.worker_panics` counter of `metrics`.
///
/// The output is positional and deterministic exactly like [`par_map`]'s:
/// whether an item panics depends only on `f` and the item, never on
/// scheduling, so degraded runs are bit-identical across thread counts.
///
/// ```
/// use darklight_obs::PipelineMetrics;
/// let metrics = PipelineMetrics::enabled();
/// let out = darklight_par::try_par_map(&[1, 2, 3], 2, &metrics, |_, &x| {
///     assert!(x != 2, "poisoned item");
///     x * 10
/// });
/// assert_eq!(out[0].as_ref().unwrap(), &10);
/// assert!(out[1].is_err());
/// assert_eq!(metrics.counter("par.worker_panics").get(), 1);
/// ```
pub fn try_par_map<T, R, F>(
    items: &[T],
    threads: usize,
    metrics: &PipelineMetrics,
    f: F,
) -> Vec<Result<R, WorkerPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let panics = metrics.counter("par.worker_panics");
    let out = par_map(items, threads, |i, item| {
        catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|payload| WorkerPanic {
            index: i,
            payload: payload_to_string(payload),
        })
    });
    for slot in &out {
        if slot.is_err() {
            panics.incr();
        }
    }
    out
}

/// Like [`par_map_chunks`], but each shard closure is isolated with
/// `catch_unwind`; a panicking shard yields `Err(WorkerPanic)` (index =
/// shard number) and increments `par.worker_panics`. Note the blast
/// radius is the whole shard: callers that need per-item isolation should
/// use [`try_par_map`].
pub fn try_par_map_chunks<T, R, F>(
    items: &[T],
    threads: usize,
    metrics: &PipelineMetrics,
    f: F,
) -> Vec<Result<R, WorkerPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let panics = metrics.counter("par.worker_panics");
    let out = par_map_chunks(items, threads, |shard| {
        catch_unwind(AssertUnwindSafe(|| f(shard))).map_err(payload_to_string)
    });
    out.into_iter()
        .enumerate()
        .map(|(i, r)| {
            r.map_err(|payload| {
                panics.incr();
                WorkerPanic { index: i, payload }
            })
        })
        .collect()
}

pub mod fault {
    //! Deterministic fault injection for resilience tests.
    //!
    //! The `DARKLIGHT_FAULT_PANICS` environment variable names injection
    //! points as comma-separated `site:index` pairs, e.g.
    //! `twostage.vectorize_known:1,polish.user:3`. Instrumented call
    //! sites invoke [`maybe_panic`] with their site name and item index;
    //! when the pair is listed, the call panics with a recognizable
    //! message. Faults depend only on (site, index) — never on thread
    //! count or scheduling — so a degraded run is still deterministic,
    //! which the CI injected-panic thread-parity leg pins.
    //!
    //! The spec is parsed once per process; with the variable unset the
    //! hook is one atomic load and a `None` check.

    use std::sync::OnceLock;

    /// Environment variable listing `site:index` injection points.
    pub const FAULT_ENV: &str = "DARKLIGHT_FAULT_PANICS";

    fn spec() -> &'static [(String, usize)] {
        static SPEC: OnceLock<Vec<(String, usize)>> = OnceLock::new();
        SPEC.get_or_init(|| {
            let Ok(raw) = std::env::var(FAULT_ENV) else {
                return Vec::new();
            };
            raw.split(',')
                .filter_map(|entry| {
                    let (site, index) = entry.trim().rsplit_once(':')?;
                    Some((site.to_string(), index.parse().ok()?))
                })
                .collect()
        })
    }

    /// `true` when `site:index` is listed in `DARKLIGHT_FAULT_PANICS`.
    pub fn is_injected(site: &str, index: usize) -> bool {
        spec().iter().any(|(s, i)| s == site && *i == index)
    }

    /// Panics iff `site:index` is an injection point. Call from inside a
    /// worker closure that a `try_par_map` wrapper isolates.
    pub fn maybe_panic(site: &str, index: usize) {
        if is_injected(site, index) {
            panic!("injected fault at {site}:{index}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_and_indices() {
        let items: Vec<usize> = (0..37).collect();
        for threads in [1, 2, 3, 5, 8, 64] {
            let out = par_map(&items, threads, |i, &x| {
                assert_eq!(i, x, "index must match item position");
                x * 10
            });
            let want: Vec<usize> = items.iter().map(|&x| x * 10).collect();
            assert_eq!(out, want, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[9u8], 4, |i, &x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn par_map_ragged_tail() {
        // 7 items on 3 workers: chunks of 3, 3, 1 — the classic shape that
        // broke offset arithmetic in the seed.
        let items: Vec<usize> = (0..7).collect();
        let out = par_map(&items, 3, |i, _| i);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn par_map_more_threads_than_items() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map(&items, 16, |_, &x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn par_map_chunks_covers_every_item_once() {
        let items: Vec<u64> = (1..=100).collect();
        for threads in [1, 2, 3, 7, 100, 1000] {
            let shards = par_map_chunks(&items, threads, |s| s.to_vec());
            let flat: Vec<u64> = shards.into_iter().flatten().collect();
            assert_eq!(flat, items, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_chunks_empty() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map_chunks(&empty, 4, |s| s.len()).is_empty());
    }

    #[test]
    fn try_par_map_isolates_panics_per_item() {
        let items: Vec<usize> = (0..23).collect();
        let metrics = PipelineMetrics::enabled();
        for threads in [1, 2, 5, 64] {
            let out = try_par_map(&items, threads, &metrics, |_, &x| {
                assert!(x % 7 != 3, "poisoned item {x}");
                x * 2
            });
            for (i, slot) in out.iter().enumerate() {
                if i % 7 == 3 {
                    let err = slot.as_ref().unwrap_err();
                    assert_eq!(err.index, i);
                    assert!(err.payload.contains("poisoned item"), "{}", err.payload);
                } else {
                    assert_eq!(*slot.as_ref().unwrap(), i * 2, "threads = {threads}");
                }
            }
        }
        // 23 items, indices 3, 10, 17 poisoned, across four thread counts.
        assert_eq!(metrics.counter("par.worker_panics").get(), 12);
    }

    #[test]
    fn try_par_map_all_ok_matches_par_map() {
        let items: Vec<u32> = (0..9).collect();
        let metrics = PipelineMetrics::disabled();
        let out = try_par_map(&items, 3, &metrics, |i, &x| (i, x + 1));
        let want: Vec<_> = par_map(&items, 3, |i, &x| (i, x + 1));
        assert_eq!(
            out.into_iter().map(Result::unwrap).collect::<Vec<_>>(),
            want
        );
    }

    #[test]
    fn try_par_map_preserves_string_payloads() {
        let metrics = PipelineMetrics::disabled();
        let out = try_par_map(&[0u8], 1, &metrics, |_, _| -> u8 {
            panic!("owned {} payload", "string");
        });
        assert_eq!(out[0].as_ref().unwrap_err().payload, "owned string payload");
        let out = try_par_map(&[0u8], 1, &metrics, |_, _| -> u8 {
            std::panic::panic_any(42i32);
        });
        assert_eq!(
            out[0].as_ref().unwrap_err().payload,
            "<non-string panic payload>"
        );
    }

    #[test]
    fn try_par_map_chunks_isolates_whole_shards() {
        let items: Vec<u64> = (1..=10).collect();
        let metrics = PipelineMetrics::enabled();
        let out = try_par_map_chunks(&items, 5, &metrics, |s| {
            assert!(!s.contains(&4), "poisoned shard");
            s.iter().sum::<u64>()
        });
        assert_eq!(out.len(), 5);
        let sum: u64 = out.iter().filter_map(|r| r.as_ref().ok()).sum();
        assert_eq!(sum, 55 - 3 - 4); // the (3, 4) shard is lost whole
        assert_eq!(out.iter().filter(|r| r.is_err()).count(), 1);
        assert_eq!(metrics.counter("par.worker_panics").get(), 1);
    }

    #[test]
    fn par_map_deadline_without_deadline_matches_par_map() {
        let items: Vec<usize> = (0..37).collect();
        let want = par_map(&items, 1, |i, &x| i * x);
        for threads in [1, 2, 3, 7, 64] {
            let out = par_map_deadline(&items, threads, &Deadline::none(), |i, &x| i * x);
            assert_eq!(out.unwrap(), want, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_deadline_expiry_is_all_or_nothing() {
        let items: Vec<usize> = (0..37).collect();
        let expired = Deadline::after_rounds(0);
        for threads in [1, 2, 7] {
            let out = par_map_deadline(&items, threads, &expired, |_, &x| x);
            assert!(out.is_err(), "threads = {threads}");
        }
        // Empty input with a live token is a complete (empty) result.
        let empty: Vec<u8> = Vec::new();
        assert_eq!(
            par_map_deadline(&empty, 4, &Deadline::none(), |_, &x| x).unwrap(),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn fault_hook_is_inert_without_env() {
        // The test process never sets DARKLIGHT_FAULT_PANICS, so every
        // lookup must be a no-op (env-driven behavior is exercised in the
        // fault-injection integration suite, which owns its own process).
        assert!(!fault::is_injected("any.site", 0));
        fault::maybe_panic("any.site", 0);
    }

    #[test]
    fn resolve_explicit_request_wins() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
    }

    #[test]
    fn resolve_auto_is_positive() {
        assert!(resolve_threads(0) >= 1);
    }
}
