//! # darklight-par — shared worker-pool helpers
//!
//! Every parallel call site in the pipeline used to hand-roll its own
//! `std::thread::scope` chunking, which is exactly the pattern that
//! produced the seed's `top_k_batch` chunk-offset bug: computing a slot's
//! global index as `chunk_position × chunk_len` silently breaks the moment
//! the final chunk is short. This crate centralizes the correct pattern —
//! running-offset chunking over `chunks_mut`/`chunks` pairs that split at
//! identical boundaries — behind two order-preserving helpers:
//!
//! * [`par_map`] — indexed element-wise map: `f(i, &items[i])` for every
//!   `i`, output in input order;
//! * [`par_map_chunks`] — per-shard map for map-reduce accumulation:
//!   `f(shard)` once per contiguous shard, shards returned in order so the
//!   caller's serial merge is deterministic.
//!
//! Both are plain scoped threads (no work stealing, no dependencies): the
//! items are split into at most `threads` contiguous chunks and each chunk
//! runs on its own scoped thread. Output ordering is positional and does
//! not depend on scheduling, so for a pure `f` the result is bit-identical
//! for every thread count — the property the attribution pipeline's
//! determinism contract (threads = N ≡ threads = 1) is built on, and the
//! parity/property suites pin.
//!
//! [`resolve_threads`] turns a configuration knob (`0` = auto) into a
//! concrete worker count. The `DARKLIGHT_THREADS` environment variable
//! overrides auto-detection, which CI uses to run the whole test suite
//! once pinned to one worker and once unpinned; any divergence between the
//! two runs is a scheduling-dependent output bug.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Environment variable overriding auto-detected parallelism (`threads ==
/// 0`). Ignored when a caller asks for an explicit thread count.
pub const THREADS_ENV: &str = "DARKLIGHT_THREADS";

/// Resolves a requested thread count to the concrete number of workers.
///
/// * `requested > 0` — used as-is;
/// * `requested == 0` — the `DARKLIGHT_THREADS` environment variable if
///   set to a positive integer, otherwise
///   [`std::thread::available_parallelism`];
/// * detection failure — **1** (serial, always correct). The fallback is
///   deliberately not a fixed pool size: a machine whose parallelism
///   cannot be queried should degrade to the configuration whose output
///   every parallel path is defined against, not to four phantom workers.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f(index, item)` over `items` on up to `threads` scoped workers,
/// returning the results in input order.
///
/// The slice is split into `ceil(len / threads)`-sized contiguous chunks;
/// each worker owns one chunk of the output and computes the global index
/// of every slot from a running offset over the *actual* chunk lengths, so
/// a ragged final chunk (e.g. 7 items on 3 workers → 3 + 3 + 1) cannot
/// shift indices. `threads <= 1`, empty input, and single-item input all
/// take the serial path, which is definitionally identical to the parallel
/// one for pure `f`.
///
/// ```
/// let squares = darklight_par::par_map(&[1, 2, 3, 4, 5], 3, |i, &x| (i, x * x));
/// assert_eq!(squares, vec![(0, 1), (1, 4), (2, 9), (3, 16), (4, 25)]);
/// ```
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let f = &f;
    std::thread::scope(|scope| {
        // `chunks_mut` and `chunks` split at the same boundaries, so each
        // output chunk pairs positionally with its input chunk; the global
        // index follows from a running offset over actual chunk lengths.
        let mut start = 0usize;
        for (slot, shard) in results.chunks_mut(chunk).zip(items.chunks(chunk)) {
            let begin = start;
            start += slot.len();
            scope.spawn(move || {
                for (off, (out, item)) in slot.iter_mut().zip(shard).enumerate() {
                    *out = Some(f(begin + off, item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot filled by exactly one worker"))
        .collect()
}

/// Runs `f` once per contiguous shard of `items` on up to `threads` scoped
/// workers, returning one result per shard **in shard order**.
///
/// This is the map side of a map-reduce: each worker accumulates a private
/// partial result over its shard (no shared state, no locks), and the
/// caller folds the returned shards serially. When the fold is commutative
/// and associative over the shard contents — summing term counts, merging
/// frequency maps — the reduced value is identical to a serial pass for
/// every thread count.
///
/// ```
/// let partial = darklight_par::par_map_chunks(&[1u64, 2, 3, 4, 5], 2, |s| {
///     s.iter().sum::<u64>()
/// });
/// assert_eq!(partial.iter().sum::<u64>(), 15);
/// ```
pub fn par_map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        if items.is_empty() {
            return Vec::new();
        }
        return vec![f(items)];
    }
    let chunk = items.len().div_ceil(threads);
    let shards: Vec<&[T]> = items.chunks(chunk).collect();
    par_map(&shards, threads, |_, shard| f(shard))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_and_indices() {
        let items: Vec<usize> = (0..37).collect();
        for threads in [1, 2, 3, 5, 8, 64] {
            let out = par_map(&items, threads, |i, &x| {
                assert_eq!(i, x, "index must match item position");
                x * 10
            });
            let want: Vec<usize> = items.iter().map(|&x| x * 10).collect();
            assert_eq!(out, want, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[9u8], 4, |i, &x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn par_map_ragged_tail() {
        // 7 items on 3 workers: chunks of 3, 3, 1 — the classic shape that
        // broke offset arithmetic in the seed.
        let items: Vec<usize> = (0..7).collect();
        let out = par_map(&items, 3, |i, _| i);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn par_map_more_threads_than_items() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map(&items, 16, |_, &x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn par_map_chunks_covers_every_item_once() {
        let items: Vec<u64> = (1..=100).collect();
        for threads in [1, 2, 3, 7, 100, 1000] {
            let shards = par_map_chunks(&items, threads, |s| s.to_vec());
            let flat: Vec<u64> = shards.into_iter().flatten().collect();
            assert_eq!(flat, items, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_chunks_empty() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map_chunks(&empty, 4, |s| s.len()).is_empty());
    }

    #[test]
    fn resolve_explicit_request_wins() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
    }

    #[test]
    fn resolve_auto_is_positive() {
        assert!(resolve_threads(0) >= 1);
    }
}
