//! End-to-end pin of the sparse-history scenario contract: authors below
//! the 30-usable-timestamp activity floor survive the scenario's relaxed
//! refinement *without* an activity profile — the activity layer skips
//! them — yet the two-stage linker still ranks them by text alone. The
//! default refinement (activity floor 30) excludes the same authors
//! entirely, which is exactly the gap the scenario exists to measure.

use darklight_activity::profile::{ProfileBuilder, ProfilePolicy};
use darklight_bench::matrix::prepare_cell;
use darklight_core::twostage::{TwoStage, TwoStageConfig};
use darklight_corpus::polish::{PolishConfig, Polisher};
use darklight_corpus::refine::{refine, RefineConfig};
use darklight_synth::matrix::{CellSpec, MatrixScale, ScenarioKind};
use darklight_synth::scenario::ScenarioBuilder;

#[test]
fn sparse_aliases_skip_activity_but_stay_text_rankable() {
    let spec = CellSpec::new(ScenarioKind::SparseHistory, MatrixScale::Tiny);
    let prep = prepare_cell(&spec);

    // The scenario floods the dark forums with below-floor authors: some
    // survive the relaxed refinement with no buildable activity profile.
    let sparse: Vec<&str> = prep
        .unknown
        .records
        .iter()
        .filter(|r| r.profile.is_none())
        .map(|r| r.alias.as_str())
        .collect();
    assert!(
        !sparse.is_empty(),
        "sparse-history cell produced no below-floor unknowns"
    );
    assert!(
        prep.unknown.records.iter().any(|r| r.profile.is_some()),
        "cell must also keep rich unknowns for contrast"
    );

    // The default activity floor (30 usable timestamps) excludes exactly
    // those authors from refinement altogether.
    let scenario = ScenarioBuilder::new(spec.config()).build();
    let (polished_dm, _) = Polisher::new(PolishConfig::default()).polish(&scenario.dm);
    let profiles = ProfileBuilder::new(ProfilePolicy::default());
    let default_refined = refine(&polished_dm, RefineConfig::default(), &profiles);
    for alias in &sparse {
        assert!(
            !default_refined.users.iter().any(|u| u.alias == *alias),
            "{alias} is below the activity floor yet survived default refinement"
        );
    }

    // The linker still ranks every sparse alias — by stylometry alone.
    let ranked = TwoStage::new(TwoStageConfig::default()).run(&prep.known, &prep.unknown);
    for alias in &sparse {
        let idx = prep.unknown.index_of(alias).unwrap();
        let m = ranked
            .iter()
            .find(|m| m.unknown == idx)
            .unwrap_or_else(|| panic!("{alias} missing from the ranking"));
        assert!(
            m.best().is_some(),
            "{alias} has no ranked candidates despite usable text"
        );
    }
}
