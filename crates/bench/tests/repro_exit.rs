//! Pin of the `repro` binary's failure contract: when the benchmark
//! report cannot be written, the process must exit non-zero with a
//! diagnostic naming the path — not panic, and not exit 0 with the
//! report silently missing (the failure mode this pins out was an
//! `expect` unwind, which still reports "success" to make-style callers
//! under some panic configurations, and prints an unhelpful backtrace).

use std::process::Command;

#[test]
fn unwritable_bench_report_exits_nonzero() {
    let dir = std::env::temp_dir().join(format!("darklight_repro_exit_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    // A *directory* squatting on the report path makes the final
    // `fs::write` fail after every experiment has succeeded.
    std::fs::create_dir_all(dir.join("BENCH_repro.json")).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("table1")
        .env("DARKLIGHT_SCALE", "small")
        .env("DARKLIGHT_OUT", &dir)
        .output()
        .expect("spawn repro");

    assert_eq!(
        out.status.code(),
        Some(1),
        "unwritable report must exit 1, got: {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("BENCH_repro.json"),
        "diagnostic must name the report path; stderr: {stderr}"
    );
    // The failure came from the write, not from a panic unwind.
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");

    std::fs::remove_dir_all(&dir).ok();
}
