//! Golden pin of the `BENCH_*.json` schema (every key, per section) and
//! a structural audit of the committed baseline trajectory under
//! `benchmarks/`: at least the full scenario set at two scales, each file
//! parseable with the full throughput and accuracy sections.

use darklight_bench::matrix::{run_cell, CellOptions, BENCH_SCHEMA_VERSION};
use darklight_obs::Json;
use darklight_synth::matrix::{CellSpec, MatrixScale, ScenarioKind};
use std::path::PathBuf;

fn section<'a>(report: &'a Json, key: &str) -> &'a Json {
    report
        .get(key)
        .unwrap_or_else(|| panic!("report missing section {key:?}"))
}

#[test]
fn report_schema_is_pinned() {
    let spec = CellSpec::new(ScenarioKind::Clean, MatrixScale::Tiny);
    let report = run_cell(&spec, &CellOptions::default()).expect("tiny cell runs");

    assert_eq!(
        report.keys(),
        [
            "accuracy",
            "cell",
            "govern",
            "schema_version",
            "throughput",
            "world"
        ],
        "root sections changed — bump BENCH_SCHEMA_VERSION"
    );
    assert_eq!(
        report.get("schema_version"),
        Some(&Json::UInt(BENCH_SCHEMA_VERSION))
    );
    assert_eq!(
        section(&report, "cell").keys(),
        ["scale", "scenario", "seed"]
    );
    assert_eq!(
        section(&report, "world").keys(),
        [
            "known_aliases",
            "messages",
            "positives",
            "raw_aliases",
            "unknown_aliases"
        ]
    );
    assert_eq!(
        section(&report, "accuracy").keys(),
        ["f1", "pr_auc", "precision", "recall", "threshold"]
    );
    assert_eq!(
        section(&report, "govern").keys(),
        [
            "batch_shrinks",
            "batch_size",
            "bytes_estimated",
            "mem_budget_bytes"
        ]
    );
    assert_eq!(
        section(&report, "throughput").keys(),
        [
            "messages_per_sec",
            "messages_per_sec_serial",
            "parallel_s",
            "serial_s",
            "speedup",
            "threads",
            "world_prep_s"
        ]
    );

    // The rendering is stable: parse(render) == original, so committed
    // baselines can be byte-compared against fresh renders.
    let reparsed = Json::parse(&report.render_pretty()).expect("self-render parses");
    assert_eq!(reparsed.render(), report.render());
}

fn committed_benchmarks_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../benchmarks")
}

#[test]
fn committed_baseline_trajectory_is_complete_and_well_formed() {
    let dir = committed_benchmarks_dir();
    let mut cells = 0usize;
    for scale in [MatrixScale::Small, MatrixScale::Medium] {
        for kind in ScenarioKind::ALL {
            let spec = CellSpec::new(kind, scale);
            let path = dir.join(spec.file_name());
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing committed baseline {}: {e}", path.display()));
            let report = Json::parse(&text)
                .unwrap_or_else(|e| panic!("unparseable baseline {}: {e:?}", path.display()));
            assert_eq!(
                report.get("schema_version"),
                Some(&Json::UInt(BENCH_SCHEMA_VERSION)),
                "{}",
                path.display()
            );
            let cell = section(&report, "cell");
            assert_eq!(cell.get("scenario"), Some(&Json::Str(kind.name().into())));
            assert_eq!(cell.get("scale"), Some(&Json::Str(scale.name().into())));
            for key in ["precision", "recall", "f1", "pr_auc", "threshold"] {
                assert!(
                    matches!(section(&report, "accuracy").get(key), Some(Json::Float(_))),
                    "{}: accuracy.{key}",
                    path.display()
                );
            }
            for key in ["messages_per_sec", "messages_per_sec_serial", "speedup"] {
                assert!(
                    matches!(
                        section(&report, "throughput").get(key),
                        Some(Json::Float(_))
                    ),
                    "{}: throughput.{key}",
                    path.display()
                );
            }
            cells += 1;
        }
    }
    assert!(cells >= 10, "committed trajectory too small: {cells} cells");
}
