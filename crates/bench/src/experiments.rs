//! The experiment implementations behind the `repro` binary: one function
//! per table/figure of the paper, each returning a rendered report
//! section. See DESIGN.md §4 for the experiment index.

use crate::World;
use darklight_core::attrib::Ranked;
use darklight_core::baseline::{KoppelBaseline, StandardBaseline};
use darklight_core::batch::{run_batched, BatchConfig};
use darklight_core::dataset::Dataset;
use darklight_core::twostage::{RankedMatch, TwoStage, TwoStageConfig};
use darklight_corpus::stats::{topic_composition, words_per_user_cdf};
use darklight_eval::curve::PrCurve;
use darklight_eval::metrics::{
    labeled_best_matches, precision_recall_at, reduction_accuracy_at_k, LabeledScore,
};
use darklight_eval::profiler::build_profile;
use darklight_eval::report::{num, pct, Table};
use darklight_eval::verdict::{judge_pair, Verdict, VerdictCounts};
use darklight_features::pipeline::{FeatureConfig, FeatureExtractor};
use darklight_synth::lexicon::TOPICS;
use std::fmt::Write as _;
use std::time::Instant;

/// Shared experiment context: the prepared world plus lazily computed
/// intermediates (the calibrated global threshold, the W1/W2 splits).
#[derive(Debug)]
pub struct Ctx {
    /// The prepared world.
    pub world: World,
    /// Attribution engine settings shared by every experiment.
    pub engine_config: TwoStageConfig,
    /// Cap on unknown aliases per Reddit-scale experiment (the paper uses
    /// 1,000 alter-egos).
    pub max_unknowns: usize,
    threshold: std::sync::OnceLock<f64>,
}

impl Ctx {
    /// Builds a context from a prepared world.
    pub fn new(world: World) -> Ctx {
        Ctx {
            world,
            engine_config: TwoStageConfig::default(),
            max_unknowns: 1_000,
            threshold: std::sync::OnceLock::new(),
        }
    }

    fn engine(&self) -> TwoStage {
        TwoStage::new(self.engine_config.clone())
    }

    /// The W1/W2 calibration split of AE_Reddit (§IV-E): up to 1,000
    /// alter-egos split into two halves.
    pub fn w_splits(&self) -> (Dataset, Dataset) {
        let ae = &self.world.reddit.alter_egos;
        let n = ae.len().min(self.max_unknowns);
        let half = n / 2;
        let w1 = Dataset::new("w1", ae.records[..half].to_vec());
        let w2 = Dataset::new("w2", ae.records[half..n].to_vec());
        (w1, w2)
    }

    /// The calibrated global threshold: the highest threshold reaching 80%
    /// recall on W1 (§IV-E). Falls back to the best-F1 threshold if recall
    /// never reaches 80%.
    pub fn global_threshold(&self) -> f64 {
        *self.threshold.get_or_init(|| {
            let (w1, _) = self.w_splits();
            let curve = self.curve_for(&self.world.reddit.originals, &w1);
            curve
                .threshold_for_recall(0.80)
                .or_else(|| curve.best_f1())
                .map(|p| p.threshold)
                .unwrap_or(crate::PAPER_THRESHOLD_FALLBACK)
        })
    }

    /// Runs the full pipeline and returns the PR curve of best-match
    /// scores.
    pub fn curve_for(&self, known: &Dataset, unknown: &Dataset) -> PrCurve {
        let results = self.engine().run(known, unknown);
        let labeled = labeled_best_matches(&results, known, unknown);
        PrCurve::from_labeled(&labeled)
    }
}

/// Table I — Reddit dataset composition by topic.
pub fn table1(ctx: &Ctx) -> String {
    // Community → topic mapping straight from the generator's lexicon.
    let topic_of = |community: &str| -> Option<String> {
        TOPICS
            .iter()
            .find(|t| t.communities.contains(&community))
            .map(|t| t.name.to_string())
    };
    // The paper computes Table I on the collected (polished) Reddit data.
    let polished = {
        let polisher = darklight_corpus::polish::Polisher::default();
        polisher.polish(&ctx.world.scenario.reddit).0
    };
    let stats = topic_composition(&polished, |c| topic_of(c));
    let mut t = Table::new([
        "Topic",
        "communities(#)",
        "subscriptions(%)",
        "messages(%)",
        "popular community",
        "messages(#)",
    ]);
    for s in &stats {
        t.row([
            s.topic.clone(),
            s.communities.to_string(),
            pct(s.user_share),
            pct(s.message_share),
            s.top_community.clone(),
            s.top_community_messages.to_string(),
        ]);
    }
    format!(
        "## Table I — Reddit composition by topic\n\n{}",
        t.to_markdown()
    )
}

/// Table II — feature counts for the two pipeline stages, as configured
/// and as actually materialized on the Reddit dataset.
pub fn table2(ctx: &Ctx) -> String {
    let reddit = &ctx.world.reddit.originals;
    let fitted = |cfg: FeatureConfig| {
        FeatureExtractor::new(cfg).fit_counted(reddit.records.iter().map(|r| &r.counted))
    };
    let sr_cfg = FeatureConfig::space_reduction();
    let fin_cfg = FeatureConfig::final_stage();
    let sr = fitted(sr_cfg.clone());
    let fin = fitted(fin_cfg.clone());
    let mut t = Table::new([
        "Type",
        "Space Reduction (cap)",
        "fitted",
        "Final (cap)",
        "fitted",
    ]);
    t.row([
        "Word n-grams 1-3".to_string(),
        sr_cfg.top_word_ngrams.to_string(),
        sr.word_vocab_len().to_string(),
        fin_cfg.top_word_ngrams.to_string(),
        fin.word_vocab_len().to_string(),
    ]);
    t.row([
        "Char n-grams 1-5".to_string(),
        sr_cfg.top_char_ngrams.to_string(),
        sr.char_vocab_len().to_string(),
        fin_cfg.top_char_ngrams.to_string(),
        fin.char_vocab_len().to_string(),
    ]);
    t.row(["Freq. of punctuation", "11", "11", "11", "11"]);
    t.row(["Freq. of digit", "10", "10", "10", "10"]);
    t.row(["Freq. of special chars", "21", "21", "21", "21"]);
    t.row(["Daily activity profile", "24", "24", "24", "24"]);
    format!("## Table II — features per stage\n\n{}", t.to_markdown())
}

/// Table III — k-attribution accuracy vs number of words, with text-only
/// vs text+activity features, for k = 1 and k = 10.
pub fn table3(ctx: &Ctx) -> String {
    let known = &ctx.world.reddit.originals;
    let (w1, _) = ctx.w_splits();
    let mut t = Table::new([
        "# of words",
        "K=1 (text)",
        "K=1 (all)",
        "K=10 (text)",
        "K=10 (all)",
    ]);
    for words in [
        400, 600, 800, 1000, 1100, 1200, 1300, 1400, 1500, 1600, 1700,
    ] {
        let k_ds = known.with_word_budget(words);
        let u_ds = w1.with_word_budget(words);
        let mut cells = vec![words.to_string()];
        let mut accs = [0.0f64; 4];
        for (ci, cfg) in [
            ctx.engine_config.clone().without_activity(),
            ctx.engine_config.clone(),
        ]
        .into_iter()
        .enumerate()
        {
            let engine = TwoStage::new(cfg);
            let results = wrap_stage1(engine.reduce(&k_ds, &u_ds));
            accs[ci] = reduction_accuracy_at_k(&results, &k_ds, &u_ds, 1);
            accs[2 + ci] = reduction_accuracy_at_k(&results, &k_ds, &u_ds, 10);
        }
        for a in accs {
            cells.push(pct(a));
        }
        t.row(cells);
    }
    format!(
        "## Table III — k-attribution accuracy vs words/user\n\n{}",
        t.to_markdown()
    )
}

/// Table IV — dataset sizes after refinement and alter-ego generation.
pub fn table4(ctx: &Ctx) -> String {
    let mut t = Table::new(["Name", "(#)Aliases", "raw", "polished"]);
    for (name, fd) in [
        ("Reddit", &ctx.world.reddit),
        ("TMG", &ctx.world.tmg),
        ("DM", &ctx.world.dm),
    ] {
        t.row([
            name.to_string(),
            fd.originals.len().to_string(),
            fd.raw_users.to_string(),
            fd.polished_users.to_string(),
        ]);
        t.row([
            format!("AE_{name}"),
            fd.alter_egos.len().to_string(),
            String::new(),
            String::new(),
        ]);
    }
    format!("## Table IV — dataset composition\n\n{}", t.to_markdown())
}

/// Table V — per-forum thresholds at 80% recall and the global threshold's
/// precision/recall on every forum (§IV-E, §IV-G).
pub fn table5(ctx: &Ctx) -> String {
    let global = ctx.global_threshold();
    let (w1, w2) = ctx.w_splits();
    let reddit = &ctx.world.reddit.originals;
    let cases: Vec<(&str, &Dataset, Dataset)> = vec![
        ("Reddit_A", reddit, w1),
        ("Reddit_B", reddit, w2),
        (
            "DM",
            &ctx.world.dm.originals,
            ctx.world.dm.alter_egos.clone(),
        ),
        (
            "TMG",
            &ctx.world.tmg.originals,
            ctx.world.tmg.alter_egos.clone(),
        ),
    ];
    let mut own = Table::new(["Forum", "threshold@80%R", "Precision", "Recall"]);
    let mut glob = Table::new(["Forum", "global threshold", "Precision", "Recall"]);
    for (name, known, unknown) in &cases {
        let curve = ctx.curve_for(known, unknown);
        match curve.threshold_for_recall(0.80) {
            Some(p) => {
                own.row([
                    name.to_string(),
                    num(p.threshold, 4),
                    pct(p.precision),
                    pct(p.recall),
                ]);
            }
            None => {
                own.row([name.to_string(), "n/a".into(), "-".into(), "-".into()]);
            }
        }
        let p = curve.at_threshold(global);
        glob.row([
            name.to_string(),
            num(global, 4),
            pct(p.precision),
            pct(p.recall),
        ]);
    }
    format!(
        "## Table V — precision/recall at per-forum and global thresholds\n\n\
         Per-forum thresholds at 80% recall:\n\n{}\n\
         Global threshold (calibrated on Reddit_A):\n\n{}",
        own.to_markdown(),
        glob.to_markdown()
    )
}

/// Table VI — AUC with vs without search-space reduction per forum.
///
/// Two emission semantics are reported. *Best-match*: each unknown emits
/// only its top candidate (how §V counts "possible matches"). *All-pairs*:
/// every candidate pair above the threshold is emitted — the literal §IV-I
/// rule, under which the reduction's k-cap is what keeps the pair pool
/// clean; without it the full candidate set floods the curve, which is the
/// effect behind the paper's Table VI gap.
pub fn table6(ctx: &Ctx) -> String {
    let (w1, _) = ctx.w_splits();
    let cases: Vec<(&str, &Dataset, Dataset)> = vec![
        ("Reddit", &ctx.world.reddit.originals, w1),
        (
            "TMG",
            &ctx.world.tmg.originals,
            ctx.world.tmg.alter_egos.clone(),
        ),
        (
            "DM",
            &ctx.world.dm.originals,
            ctx.world.dm.alter_egos.clone(),
        ),
    ];
    let engine = ctx.engine();
    let mut t = Table::new([
        "Forum",
        "with reduction (best)",
        "without (best)",
        "with reduction (pairs)",
        "without (pairs)",
    ]);
    for (name, known, unknown) in &cases {
        let with_results = engine.run(known, unknown);
        let without_top = engine.run_without_reduction(known, unknown);
        let without_full = engine.run_without_reduction_depth(known, unknown, known.len());
        let auc_best_with =
            PrCurve::from_labeled(&labeled_best_matches(&with_results, known, unknown)).auc();
        let auc_best_without =
            PrCurve::from_labeled(&labeled_best_matches(&without_top, known, unknown)).auc();
        let auc_pairs_with = PrCurve::from_labeled(&darklight_eval::metrics::labeled_all_pairs(
            &with_results,
            known,
            unknown,
        ))
        .auc();
        let auc_pairs_without = PrCurve::from_labeled(&darklight_eval::metrics::labeled_all_pairs(
            &without_full,
            known,
            unknown,
        ))
        .auc();
        t.row([
            name.to_string(),
            num(auc_best_with, 3),
            num(auc_best_without, 3),
            num(auc_pairs_with, 3),
            num(auc_pairs_without, 3),
        ]);
    }
    format!("## Table VI — AUC values\n\n{}", t.to_markdown())
}

/// Fig. 1 — cumulative distribution of words per user on the dark-web
/// forums (computed on the polished corpora, before refinement).
pub fn fig1(ctx: &Ctx) -> String {
    let mut out = String::from("## Fig. 1 — CDF of words per user (dark web)\n\n");
    for (name, raw) in [
        ("TMG", &ctx.world.scenario.tmg),
        ("DM", &ctx.world.scenario.dm),
    ] {
        let polished = darklight_corpus::polish::Polisher::default().polish(raw).0;
        let cdf = words_per_user_cdf(&polished);
        let mut t = Table::new(["words ≤", "fraction of users"]);
        for x in [50u64, 100, 250, 500, 1000, 1500, 2500, 5000, 10_000, 20_000] {
            t.row([
                x.to_string(),
                num(darklight_corpus::stats::cdf_at(&cdf, x), 3),
            ]);
        }
        let _ = write!(out, "### {name}\n\n{}\n", t.to_markdown());
    }
    out
}

/// Fig. 2 — precision-recall curves of the two calibration splits with the
/// chosen threshold's operating points.
pub fn fig2(ctx: &Ctx) -> String {
    let global = ctx.global_threshold();
    let (w1, w2) = ctx.w_splits();
    let reddit = &ctx.world.reddit.originals;
    let mut out = String::from("## Fig. 2 — PR curves for W1 and W2\n\n");
    for (name, unknown) in [("W1", &w1), ("W2", &w2)] {
        let curve = ctx.curve_for(reddit, unknown);
        let _ = write!(out, "### {name} (AUC {:.3})\n\n", curve.auc());
        out.push_str(&curve_series(&curve, 20));
        let p = curve.at_threshold(global);
        let _ = write!(
            out,
            "\nthreshold {:.4} → precision {} recall {}\n\n",
            global,
            pct(p.precision),
            pct(p.recall)
        );
    }
    out
}

/// Fig. 3 — the baseline comparison: PR curves + AUC + wall-clock times
/// for the Standard baseline, the Koppel baseline, and our method.
pub fn fig3(ctx: &Ctx, max_unknowns: usize) -> String {
    let known = &ctx.world.reddit.originals;
    let (w1, _) = ctx.w_splits();
    let unknown = Dataset::new("fig3", w1.records[..w1.len().min(max_unknowns)].to_vec());
    let mut out = String::from("## Fig. 3 — baseline comparison\n\n");
    let mut t = Table::new(["Method", "AUC", "wall-clock (s)"]);

    let t0 = Instant::now();
    let std_ranked = StandardBaseline::default().run(known, &unknown);
    let std_time = t0.elapsed().as_secs_f64();
    let std_curve = PrCurve::from_labeled(&label_ranked(&std_ranked, known, &unknown));

    let t0 = Instant::now();
    let kop_ranked = KoppelBaseline::default().run(known, &unknown);
    let kop_time = t0.elapsed().as_secs_f64();
    let kop_curve = PrCurve::from_labeled(&label_ranked(&kop_ranked, known, &unknown));

    let t0 = Instant::now();
    let ours = ctx.engine().run(known, &unknown);
    let our_time = t0.elapsed().as_secs_f64();
    let our_curve = PrCurve::from_labeled(&labeled_best_matches(&ours, known, &unknown));

    t.row([
        "Standard baseline".to_string(),
        num(std_curve.auc(), 3),
        num(std_time, 1),
    ]);
    t.row([
        "Koppel baseline".to_string(),
        num(kop_curve.auc(), 3),
        num(kop_time, 1),
    ]);
    t.row([
        "Our method".to_string(),
        num(our_curve.auc(), 3),
        num(our_time, 1),
    ]);
    out.push_str(&t.to_markdown());
    out.push_str("\n### PR series\n");
    for (name, curve) in [
        ("Standard", &std_curve),
        ("Koppel", &kop_curve),
        ("Ours", &our_curve),
    ] {
        let _ = write!(out, "\n#### {name}\n\n{}", curve_series(curve, 15));
    }
    out
}

/// Fig. 4 — impact of the daily-activity feature: accuracy vs k with and
/// without it, on Reddit and on the merged DarkWeb datasets.
pub fn fig4(ctx: &Ctx) -> String {
    let (w1, _) = ctx.w_splits();
    let (darkweb, ae_darkweb) = ctx.world.darkweb();
    let mut out = String::from("## Fig. 4 — impact of the daily activity profile\n\n");
    for (panel, known, unknown) in [
        ("Reddit", &ctx.world.reddit.originals, &w1),
        ("DarkWeb", &darkweb, &ae_darkweb),
    ] {
        let mut t = Table::new(["k", "text only", "text + activity"]);
        let text = wrap_stage1(
            TwoStage::new(ctx.engine_config.clone().without_activity()).reduce(known, unknown),
        );
        let all = wrap_stage1(ctx.engine().reduce(known, unknown));
        for k in 1..=10 {
            t.row([
                k.to_string(),
                pct(reduction_accuracy_at_k(&text, known, unknown, k)),
                pct(reduction_accuracy_at_k(&all, known, unknown, k)),
            ]);
        }
        let _ = write!(out, "### {panel}\n\n{}\n", t.to_markdown());
    }
    out
}

/// Fig. 5 — precision-recall with vs without search-space reduction,
/// under the paper's literal all-pairs emission rule (see [`table6`]).
pub fn fig5(ctx: &Ctx) -> String {
    let (w1, _) = ctx.w_splits();
    let cases: Vec<(&str, &Dataset, Dataset)> = vec![
        ("Reddit", &ctx.world.reddit.originals, w1),
        (
            "TMG",
            &ctx.world.tmg.originals,
            ctx.world.tmg.alter_egos.clone(),
        ),
        (
            "DM",
            &ctx.world.dm.originals,
            ctx.world.dm.alter_egos.clone(),
        ),
    ];
    let engine = ctx.engine();
    let mut out = String::from("## Fig. 5 — PR with vs without reduction\n\n");
    for (name, known, unknown) in &cases {
        let with = {
            let r = engine.run(known, unknown);
            PrCurve::from_labeled(&darklight_eval::metrics::labeled_all_pairs(
                &r, known, unknown,
            ))
        };
        let without = {
            let r = engine.run_without_reduction_depth(known, unknown, known.len());
            PrCurve::from_labeled(&darklight_eval::metrics::labeled_all_pairs(
                &r, known, unknown,
            ))
        };
        let _ = write!(
            out,
            "### {name}\n\nwith reduction (AUC {:.3}):\n\n{}\nwithout reduction (AUC {:.3}):\n\n{}\n",
            with.auc(),
            curve_series(&with, 12),
            without.auc(),
            curve_series(&without, 12)
        );
    }
    out
}

/// §IV-G — 10-attribution accuracy on the merged DarkWeb dataset.
pub fn darkweb_accuracy(ctx: &Ctx) -> String {
    let (darkweb, ae_darkweb) = ctx.world.darkweb();
    let results = wrap_stage1(ctx.engine().reduce(&darkweb, &ae_darkweb));
    let acc = reduction_accuracy_at_k(&results, &darkweb, &ae_darkweb, 10);
    format!(
        "## §IV-G — DarkWeb 10-attribution\n\naccuracy@10 on DarkWeb ∪ AE_DarkWeb: {}\n",
        pct(acc)
    )
}

/// §IV-J — the batched pipeline at B=100 against the unbatched one.
pub fn batch_experiment(ctx: &Ctx, batch_size: usize) -> String {
    let global = ctx.global_threshold();
    let known = &ctx.world.reddit.originals;
    let (w1, _) = ctx.w_splits();
    let engine = ctx.engine();
    let unbatched = engine.run(known, &w1);
    let batched =
        run_batched(&engine, &BatchConfig { batch_size }, known, &w1).expect("valid batch config");
    let mut t = Table::new(["Mode", "Precision", "Recall"]);
    for (name, results) in [
        ("unbatched", &unbatched),
        (&format!("batched B={batch_size}"), &batched),
    ] {
        let labeled = labeled_best_matches(results, known, &w1);
        let (p, r) = precision_recall_at(&labeled, global);
        t.row([name.to_string(), pct(p), pct(r)]);
    }
    format!(
        "## §IV-J — batched processing (B = {batch_size})\n\nat the global threshold {:.4}:\n\n{}",
        global,
        t.to_markdown()
    )
}

/// §V-B — The Majestic Garden vs Dream Market linking with verdicts.
pub fn results_dark(ctx: &Ctx) -> String {
    link_and_judge(
        ctx,
        "§V-B — TMG vs DM (pseudo-anonymity)",
        &ctx.world.tmg.originals,
        &ctx.world.dm.originals,
    )
}

/// §V-C — Reddit vs the Dark Web with verdicts.
pub fn results_open(ctx: &Ctx) -> String {
    let (darkweb, _) = ctx.world.darkweb();
    link_and_judge(
        ctx,
        "§V-C — Reddit vs Dark Web (de-anonymization)",
        &ctx.world.reddit.originals,
        &darkweb,
    )
}

/// §V-D — the "John Doe" dossier: profile the best True pair found by the
/// open-web experiment.
pub fn john_doe(ctx: &Ctx) -> String {
    let (darkweb, _) = ctx.world.darkweb();
    let known = &ctx.world.reddit.originals;
    let engine = ctx.engine();
    let results = engine.run(known, &darkweb);
    let global = ctx.global_threshold();
    let mut best: Option<(f64, usize, usize)> = None;
    for m in &results {
        if let Some(b) = m.best() {
            if b.score >= global {
                let dark = &darkweb.records[m.unknown];
                let open = &known.records[b.index];
                if judge_pair(&dark.alias, &dark.facts, &open.alias, &open.facts) == Verdict::True
                    && best.is_none_or(|(s, _, _)| b.score > s)
                {
                    best = Some((b.score, m.unknown, b.index));
                }
            }
        }
    }
    match best {
        Some((score, dark_idx, open_idx)) => {
            let dark = &darkweb.records[dark_idx];
            let open = &known.records[open_idx];
            let mut du = darklight_corpus::model::User::new(dark.alias.clone(), dark.persona);
            du.facts = dark.facts.clone();
            let mut ou = darklight_corpus::model::User::new(open.alias.clone(), open.persona);
            ou.facts = open.facts.clone();
            let profile = build_profile([&du, &ou]);
            format!(
                "## §V-D — John Doe\n\nBest confirmed pair (score {:.4}): dark alias `{}` ↔ open alias `{}`\n\n```\n{}```\n",
                score,
                dark.alias,
                open.alias,
                profile.render()
            )
        }
        None => "## §V-D — John Doe\n\nNo confirmed pair above threshold.\n".to_string(),
    }
}

/// Runner-up margin required for cross-forum emission. The score-only
/// threshold calibrated on Reddit alter-egos over-emits on the dark
/// forums, whose drug-only single-domain texts push *everyone's* base
/// similarity up (the paper observes the same compression: "all the
/// messages belong to the same domain"); requiring the winner to stand
/// clear of the runner-up (see `darklight_core::confidence`) restores
/// precision without touching the threshold.
const MARGIN: f64 = 0.006;

fn link_and_judge(ctx: &Ctx, title: &str, known: &Dataset, unknown: &Dataset) -> String {
    use darklight_core::confidence::MatchConfidence;
    let global = ctx.global_threshold();
    let engine = ctx.engine();
    let results = engine.run(known, unknown);
    let mut counts = VerdictCounts::default();
    let mut score_only_emitted = 0usize;
    let mut score_only_correct = 0usize;
    let mut ground_truth_correct = 0usize;
    let mut rows = Table::new([
        "unknown alias",
        "matched alias",
        "score",
        "margin",
        "verdict",
        "truth",
    ]);
    let mut emitted = 0usize;
    for m in &results {
        let Some(best) = m.best() else { continue };
        let u = &unknown.records[m.unknown];
        let k = &known.records[best.index];
        let truth = u.persona.is_some() && u.persona == k.persona;
        if best.score >= global {
            score_only_emitted += 1;
            if truth {
                score_only_correct += 1;
            }
        }
        let Some(conf) = MatchConfidence::of(m) else {
            continue;
        };
        if !conf.accept(global, MARGIN) {
            continue;
        }
        emitted += 1;
        let verdict = judge_pair(&u.alias, &u.facts, &k.alias, &k.facts);
        counts.add(verdict);
        if truth {
            ground_truth_correct += 1;
        }
        rows.row([
            u.alias.clone(),
            k.alias.clone(),
            num(best.score, 4),
            num(conf.margin, 4),
            verdict.to_string(),
            if truth { "same persona" } else { "different" }.to_string(),
        ]);
    }
    format!(
        "## {title}\n\nscore-only rule (≥ {global:.4}): {score_only_emitted} pairs, \
         {score_only_correct} same persona\n\
         with margin rule (≥ {MARGIN}): {emitted} pairs emitted\n\
         verdicts: True {} / Probably {} / Unclear {} / False {}\n\
         ground truth: {ground_truth_correct} of {emitted} emitted pairs are the same persona\n\n{}",
        counts.true_,
        counts.probably,
        counts.unclear,
        counts.false_,
        rows.to_markdown()
    )
}

/// Renders a PR curve as a downsampled `(recall, precision)` table.
fn curve_series(curve: &PrCurve, max_points: usize) -> String {
    let pts = curve.points();
    let mut t = Table::new(["recall", "precision", "threshold"]);
    if pts.is_empty() {
        return t.to_markdown();
    }
    let step = (pts.len() / max_points.max(1)).max(1);
    for p in pts.iter().step_by(step) {
        t.row([num(p.recall, 3), num(p.precision, 3), num(p.threshold, 4)]);
    }
    let last = pts.last().expect("non-empty");
    t.row([
        num(last.recall, 3),
        num(last.precision, 3),
        num(last.threshold, 4),
    ]);
    t.to_markdown()
}

/// Wraps stage-1 candidate lists as `RankedMatch`es (for accuracy@k).
pub fn wrap_stage1(stage1: Vec<Vec<Ranked>>) -> Vec<RankedMatch> {
    stage1
        .into_iter()
        .enumerate()
        .map(|(u, s1)| RankedMatch {
            unknown: u,
            stage1: s1.clone(),
            stage2: s1,
        })
        .collect()
}

fn label_ranked(ranked: &[Vec<Ranked>], known: &Dataset, unknown: &Dataset) -> Vec<LabeledScore> {
    let results = wrap_stage1(ranked.to_vec());
    labeled_best_matches(&results, known, unknown)
}

/// Extension — rank histogram of the reduction stage: where does the true
/// author land in the candidate ranking? (Not a paper figure; summarizes
/// the same data as Fig. 4 at full resolution.)
pub fn rank_histogram(ctx: &Ctx) -> String {
    use darklight_eval::ranks::RankHistogram;
    let known = &ctx.world.reddit.originals;
    let (w1, _) = ctx.w_splits();
    let cfg = TwoStageConfig {
        k: 20,
        ..ctx.engine_config.clone()
    };
    let results = wrap_stage1(TwoStage::new(cfg).reduce(known, &w1));
    let h = RankHistogram::from_results(&results, known, &w1);
    let mut t = Table::new(["true author's rank", "unknowns", "cumulative"]);
    for r in 1..=10 {
        t.row([
            r.to_string(),
            h.at_rank(r).to_string(),
            pct(h.within(r) as f64 / h.eligible.max(1) as f64),
        ]);
    }
    t.row([
        "11-20".to_string(),
        (h.within(20) - h.within(10)).to_string(),
        pct(h.within(20) as f64 / h.eligible.max(1) as f64),
    ]);
    t.row([
        "not in top 20".to_string(),
        h.missed.to_string(),
        String::new(),
    ]);
    format!(
        "## Extension — true-author rank histogram (Reddit, k=20)\n\n\
         eligible unknowns: {} — mean rank {:.2}, MRR {:.3}\n\n{}",
        h.eligible,
        h.mean_rank().unwrap_or(f64::NAN),
        h.mrr(),
        t.to_markdown()
    )
}

/// Extension — explain the strongest confirmed §V-C match: the shared
/// evidence a human reviewer would check (mirrors the paper's manual
/// verification narrative).
pub fn explain_best_match(ctx: &Ctx) -> String {
    use darklight_core::explain::explain_pair;
    let (darkweb, _) = ctx.world.darkweb();
    let known = &ctx.world.reddit.originals;
    let results = ctx.engine().run(known, &darkweb);
    let global = ctx.global_threshold();
    let best = results
        .iter()
        .filter_map(|m| m.best().map(|b| (m, b)))
        .filter(|(_, b)| b.score >= global)
        .max_by(|a, b| darklight_order::cmp_f64_desc(b.1.score, a.1.score));
    match best {
        Some((m, b)) => {
            let dark = &darkweb.records[m.unknown];
            let open = &known.records[b.index];
            let ex = explain_pair(dark, open);
            format!(
                "## Extension — match explanation\n\n`{}` (dark) ↔ `{}` (reddit), score {:.4}\n\n```\n{}```\n",
                dark.alias,
                open.alias,
                b.score,
                ex.render()
            )
        }
        None => "## Extension — match explanation\n\nno pair above threshold.\n".to_string(),
    }
}

/// Renders Figs. 1–5 as standalone SVG images into `dir`, returning a
/// summary. Series are recomputed from the same pipelines as the table
/// experiments.
pub fn render_figures(ctx: &Ctx, dir: &std::path::Path) -> String {
    use darklight_eval::plot::{pr_series, LineChart, Series};
    std::fs::create_dir_all(dir).expect("create figure directory");
    let mut written = Vec::new();
    let mut save = |name: &str, chart: LineChart| {
        let path = dir.join(name);
        std::fs::write(&path, chart.to_svg()).expect("write svg");
        written.push(name.to_string());
    };

    // Fig. 1 — CDF of words per user on the dark forums.
    {
        let mut chart = LineChart::new(
            "Fig. 1 — CDF of words per user",
            "words per user",
            "fraction of users",
        );
        for (label, raw) in [
            ("TMG", &ctx.world.scenario.tmg),
            ("DM", &ctx.world.scenario.dm),
        ] {
            let polished = darklight_corpus::polish::Polisher::default().polish(raw).0;
            let cdf = words_per_user_cdf(&polished);
            chart = chart.with_series(Series::new(
                label,
                cdf.iter().map(|p| (p.value as f64, p.fraction)).collect(),
            ));
        }
        save("fig1.svg", chart);
    }

    // Fig. 2 — PR curves for W1/W2.
    {
        let (w1, w2) = ctx.w_splits();
        let reddit = &ctx.world.reddit.originals;
        let chart = LineChart::new("Fig. 2 — PR curves, W1 and W2", "recall", "precision")
            .unit_axes()
            .with_series(pr_series("W1", &ctx.curve_for(reddit, &w1)))
            .with_series(pr_series("W2", &ctx.curve_for(reddit, &w2)));
        save("fig2.svg", chart);
    }

    // Fig. 3 — baselines (Standard vs Koppel vs ours) on a 300-alias probe.
    {
        let known = &ctx.world.reddit.originals;
        let (w1, _) = ctx.w_splits();
        let probe = Dataset::new("fig3svg", w1.records[..w1.len().min(300)].to_vec());
        let std_curve = PrCurve::from_labeled(&{
            let ranked = StandardBaseline::default().run(known, &probe);
            let results = wrap_stage1(ranked);
            labeled_best_matches(&results, known, &probe)
        });
        let kop_curve = PrCurve::from_labeled(&{
            let ranked = KoppelBaseline {
                iterations: 25,
                ..KoppelBaseline::default()
            }
            .run(known, &probe);
            let results = wrap_stage1(ranked);
            labeled_best_matches(&results, known, &probe)
        });
        let our_curve = ctx.curve_for(known, &probe);
        let chart = LineChart::new("Fig. 3 — baseline comparison", "recall", "precision")
            .unit_axes()
            .with_series(pr_series("Standard", &std_curve))
            .with_series(pr_series("Koppel (25 iter)", &kop_curve))
            .with_series(pr_series("Ours", &our_curve));
        save("fig3.svg", chart);
    }

    // Fig. 4 — accuracy vs k, text vs all, Reddit + DarkWeb panels.
    {
        let (w1, _) = ctx.w_splits();
        let (darkweb, ae_darkweb) = ctx.world.darkweb();
        for (panel, file, known, unknown) in [
            (
                "Reddit",
                "fig4_reddit.svg",
                &ctx.world.reddit.originals,
                &w1,
            ),
            ("DarkWeb", "fig4_darkweb.svg", &darkweb, &ae_darkweb),
        ] {
            let text = wrap_stage1(
                TwoStage::new(ctx.engine_config.clone().without_activity()).reduce(known, unknown),
            );
            let all = wrap_stage1(ctx.engine().reduce(known, unknown));
            let series = |label: &str, results: &[RankedMatch]| {
                Series::new(
                    label,
                    (1..=10)
                        .map(|k| {
                            (
                                k as f64,
                                reduction_accuracy_at_k(results, known, unknown, k),
                            )
                        })
                        .collect(),
                )
            };
            let chart = LineChart::new(
                format!("Fig. 4 — activity impact ({panel})"),
                "k",
                "accuracy@k",
            )
            .with_series(series("text only", &text))
            .with_series(series("text + activity", &all));
            save(file, chart);
        }
    }

    // Fig. 5 — with vs without reduction (all-pairs emission), per forum.
    {
        let (w1, _) = ctx.w_splits();
        let cases: Vec<(&str, &str, &Dataset, Dataset)> = vec![
            ("Reddit", "fig5_reddit.svg", &ctx.world.reddit.originals, w1),
            (
                "TMG",
                "fig5_tmg.svg",
                &ctx.world.tmg.originals,
                ctx.world.tmg.alter_egos.clone(),
            ),
            (
                "DM",
                "fig5_dm.svg",
                &ctx.world.dm.originals,
                ctx.world.dm.alter_egos.clone(),
            ),
        ];
        let engine = ctx.engine();
        for (panel, file, known, unknown) in cases {
            let with = PrCurve::from_labeled(&darklight_eval::metrics::labeled_all_pairs(
                &engine.run(known, &unknown),
                known,
                &unknown,
            ));
            let without = PrCurve::from_labeled(&darklight_eval::metrics::labeled_all_pairs(
                &engine.run_without_reduction_depth(known, &unknown, known.len()),
                known,
                &unknown,
            ));
            let chart = LineChart::new(
                format!("Fig. 5 — reduction impact ({panel})"),
                "recall",
                "precision",
            )
            .unit_axes()
            .with_series(pr_series("with reduction", &with))
            .with_series(pr_series("without reduction", &without));
            save(file, chart);
        }
    }

    let mut out = String::from("## Figures rendered\n\n");
    for f in &written {
        let _ = writeln!(out, "* `{f}`");
    }
    out
}

/// Extension — how AUC scales with the candidate-pool size. The paper's
/// absolute baseline numbers (Standard 0.10 at 11,679 candidates) and ours
/// (0.78 at 1,200) differ because ranking difficulty grows with the pool;
/// this sweep regenerates worlds of increasing size and shows the trend
/// that connects the two operating points.
pub fn scale_trend(probe_unknowns: usize) -> String {
    let mut t = Table::new(["known aliases", "Standard AUC", "Ours AUC", "Ours acc@1"]);
    for reddit_users in [300usize, 600, 1_200, 2_400] {
        let config = darklight_synth::scenario::ScenarioConfig {
            reddit_users,
            tmg_users: 10,
            dm_users: 8,
            cross_tmg_dm: 2,
            cross_reddit_tmg: 2,
            cross_reddit_dm: 2,
            thin_frac: 0.2,
            ..darklight_synth::scenario::ScenarioConfig::small()
        };
        let world = crate::prepare_world(&config);
        let known = &world.reddit.originals;
        let n = world.reddit.alter_egos.len().min(probe_unknowns);
        let unknown = Dataset::new("probe", world.reddit.alter_egos.records[..n].to_vec());
        let engine = TwoStage::new(TwoStageConfig::default());
        let ours_results = engine.run(known, &unknown);
        let ours_auc =
            PrCurve::from_labeled(&labeled_best_matches(&ours_results, known, &unknown)).auc();
        let ours_acc = {
            let labeled = labeled_best_matches(&ours_results, known, &unknown);
            let correct = labeled.iter().filter(|l| l.correct).count();
            correct as f64 / labeled.len().max(1) as f64
        };
        let std_results = wrap_stage1(StandardBaseline::default().run(known, &unknown));
        let std_auc =
            PrCurve::from_labeled(&labeled_best_matches(&std_results, known, &unknown)).auc();
        t.row([
            known.len().to_string(),
            num(std_auc, 3),
            num(ours_auc, 3),
            pct(ours_acc),
        ]);
    }
    format!(
        "## Extension — AUC vs candidate-pool size\n\n\
         (fresh world per row, {probe_unknowns} probe unknowns)\n\n{}",
        t.to_markdown()
    )
}
