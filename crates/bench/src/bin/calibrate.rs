//! Calibration probe: checks that the synthetic world produces paper-shaped
//! numbers (Table III accuracy-vs-words, threshold behaviour) before the
//! full experiment harness runs. Not part of the reproduction itself —
//! a development tool kept for transparency.

use darklight_bench::prepare_world;
use darklight_core::twostage::{TwoStage, TwoStageConfig};
use darklight_eval::curve::PrCurve;
use darklight_eval::metrics::{labeled_best_matches, reduction_accuracy_at_k};
use darklight_synth::scenario::ScenarioConfig;
use std::time::Instant;

fn main() {
    let mut config = ScenarioConfig::default_scale();
    if let Ok(s) = std::env::var("CAL_STRENGTH") {
        config.style_strength = s.parse().expect("CAL_STRENGTH must be a float");
    }
    if let Ok(s) = std::env::var("CAL_REDDIT") {
        config.reddit_users = s.parse().expect("CAL_REDDIT must be an integer");
    }
    let t0 = Instant::now();
    let world = prepare_world(&config);
    eprintln!(
        "world: reddit {}/{} raw, refined originals {} / alter-egos {} ({:.1}s)",
        world.reddit.polished_users,
        world.reddit.raw_users,
        world.reddit.originals.len(),
        world.reddit.alter_egos.len(),
        t0.elapsed().as_secs_f64()
    );

    let known = &world.reddit.originals;
    let ae = &world.reddit.alter_egos;
    let n_unknown = ae.len().min(300);
    let unknown = darklight_core::dataset::Dataset::new("probe", ae.records[..n_unknown].to_vec());

    let act_w: f32 = std::env::var("CAL_ACT_W")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(darklight_features::pipeline::FeatureConfig::space_reduction().activity_weight);
    let char_w: f32 = std::env::var("CAL_CHAR_W")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let mut base = TwoStageConfig::default();
    base.reduction.activity_weight = act_w;
    base.reduction.char_weight = char_w;
    base.final_stage.activity_weight = act_w;
    base.final_stage.char_weight = char_w;

    for words in [400usize, 800, 1200, 1500] {
        let k_ds = known.with_word_budget(words);
        let u_ds = unknown.with_word_budget(words);
        for (label, cfg) in [
            ("text", base.clone().without_activity()),
            ("all", base.clone()),
        ] {
            let t = Instant::now();
            let engine = TwoStage::new(cfg);
            let stage1 = engine.reduce(&k_ds, &u_ds);
            let results: Vec<_> = stage1
                .into_iter()
                .enumerate()
                .map(|(u, s1)| darklight_core::twostage::RankedMatch {
                    unknown: u,
                    stage1: s1.clone(),
                    stage2: s1,
                })
                .collect();
            let a1 = reduction_accuracy_at_k(&results, &k_ds, &u_ds, 1);
            let a10 = reduction_accuracy_at_k(&results, &k_ds, &u_ds, 10);
            println!(
                "words={words:5} {label:4}  acc@1={:5.1}%  acc@10={:5.1}%  ({:.1}s)",
                a1 * 100.0,
                a10 * 100.0,
                t.elapsed().as_secs_f64()
            );
        }
    }

    // Threshold behaviour at the full budget.
    let t = Instant::now();
    let engine = TwoStage::new(base.clone());
    let results = engine.run(known, &unknown);
    let labeled = labeled_best_matches(&results, known, &unknown);
    let curve = PrCurve::from_labeled(&labeled);
    println!(
        "stage2 AUC = {:.3} ({:.1}s)",
        curve.auc(),
        t.elapsed().as_secs_f64()
    );
    if let Some(p) = curve.threshold_for_recall(0.80) {
        println!(
            "threshold@80% recall = {:.4}  precision = {:.1}%",
            p.threshold,
            p.precision * 100.0
        );
    } else {
        println!("recall never reaches 80%");
    }
    if let Some(p) = curve.best_f1() {
        println!(
            "best F1 point: t={:.4} P={:.1}% R={:.1}%",
            p.threshold,
            p.precision * 100.0,
            p.recall * 100.0
        );
    }
}
