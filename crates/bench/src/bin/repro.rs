//! `repro` — regenerates every table and figure of the paper on the
//! synthetic world.
//!
//! ```text
//! repro [experiment...] [--metrics <path>] [--threads N] [--mem-budget SIZE]
//!   experiments: table1 table2 table3 table4 table5 table6
//!                fig1 fig2 fig3 fig4 fig5
//!                darkweb batch results-dark results-open john-doe
//!                all   (default)
//! Environment:
//!   DARKLIGHT_SCALE=small|default|paper   scenario scale
//!   DARKLIGHT_OUT=<dir>                   write per-experiment .md files
//!   DARKLIGHT_THREADS=N                   worker-pool override (0/unset = auto)
//! ```
//!
//! `--mem-budget` (binary units, e.g. `512MiB`) runs the timed DarkWeb
//! links under the resource governor: the batch size is derived from the
//! budget instead of the paper's default B=100, and the derived size plus
//! any pressure-ladder shrinks land in `BENCH_repro.json`.
//!
//! Every run also times the batched DarkWeb link twice — once serially
//! (threads = 1) and once on the configured worker pool — and writes
//! `BENCH_repro.json` (into `DARKLIGHT_OUT` or the working directory):
//! wall-clock per phase, before/after messages-per-second, the resulting
//! parallel speedup, and peak candidate-set sizes. `--metrics <path>`
//! additionally dumps the full darklight-obs registry snapshot of the
//! parallel run. `--threads N` sets the pool explicitly (0 = auto).

use darklight_bench::experiments as exp;
use darklight_bench::{prepare_world, scale_from_env};
use darklight_core::batch::{run_batched, BatchConfig};
use darklight_core::twostage::{TwoStage, TwoStageConfig};
use darklight_govern::{GovernConfig, MemoryBudget};
use darklight_obs::{Json, PipelineMetrics};
use std::io::Write as _;
use std::time::Instant;

const ALL: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "darkweb",
    "batch",
    "results-dark",
    "results-open",
    "john-doe",
    "ablate-k",
    "ablate-activity",
    "ablate-features",
    "ablate-lemma",
    "ablate-batch",
    "defence-obfuscation",
    "ranks",
    "explain",
    "figures",
    "scale-trend",
];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_path = args.iter().position(|a| a == "--metrics").map(|i| {
        if i + 1 >= args.len() {
            eprintln!("--metrics requires a path");
            std::process::exit(2);
        }
        let path = args.remove(i + 1);
        args.remove(i);
        path
    });
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .map(|i| {
            if i + 1 >= args.len() {
                eprintln!("--threads requires a count (0 = auto)");
                std::process::exit(2);
            }
            let value = args.remove(i + 1);
            args.remove(i);
            value.parse().unwrap_or_else(|_| {
                eprintln!("--threads must be an integer, got {value:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(0);
    let mem_budget: Option<MemoryBudget> = args.iter().position(|a| a == "--mem-budget").map(|i| {
        if i + 1 >= args.len() {
            eprintln!("--mem-budget requires a size (e.g. 512MiB)");
            std::process::exit(2);
        }
        let value = args.remove(i + 1);
        args.remove(i);
        MemoryBudget::parse(&value).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    });
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for w in &wanted {
        if !ALL.contains(w) {
            eprintln!("unknown experiment {w:?}; known: {ALL:?}");
            std::process::exit(2);
        }
    }

    let mut phases: Vec<(String, f64)> = Vec::new();
    let config = scale_from_env();
    eprintln!(
        "generating world (reddit {} / tmg {} / dm {} rich users)...",
        config.reddit_users, config.tmg_users, config.dm_users
    );
    let t0 = Instant::now();
    let world = prepare_world(&config);
    phases.push(("world_prep".to_string(), t0.elapsed().as_secs_f64()));
    eprintln!(
        "world ready in {:.1}s: reddit {} originals / {} alter-egos; tmg {}/{}; dm {}/{}",
        t0.elapsed().as_secs_f64(),
        world.reddit.originals.len(),
        world.reddit.alter_egos.len(),
        world.tmg.originals.len(),
        world.tmg.alter_egos.len(),
        world.dm.originals.len(),
        world.dm.alter_egos.len(),
    );
    // Grab the instrumented-link inputs before `Ctx` takes the world.
    let (dw_known, dw_unknown) = world.darkweb();
    let messages = world.tmg.originals_corpus.total_posts()
        + world.tmg.alter_egos_corpus.total_posts()
        + world.dm.originals_corpus.total_posts()
        + world.dm.alter_egos_corpus.total_posts();
    let ctx = exp::Ctx::new(world);
    let out_dir = std::env::var("DARKLIGHT_OUT").ok();
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    for name in wanted {
        let t = Instant::now();
        let body = match name {
            "table1" => exp::table1(&ctx),
            "table2" => exp::table2(&ctx),
            "table3" => exp::table3(&ctx),
            "table4" => exp::table4(&ctx),
            "table5" => exp::table5(&ctx),
            "table6" => exp::table6(&ctx),
            "fig1" => exp::fig1(&ctx),
            "fig2" => exp::fig2(&ctx),
            "fig3" => exp::fig3(&ctx, 300),
            "fig4" => exp::fig4(&ctx),
            "fig5" => exp::fig5(&ctx),
            "darkweb" => exp::darkweb_accuracy(&ctx),
            "batch" => exp::batch_experiment(&ctx, 100),
            "results-dark" => exp::results_dark(&ctx),
            "results-open" => exp::results_open(&ctx),
            "john-doe" => exp::john_doe(&ctx),
            "ablate-k" => darklight_bench::ablations::k_sweep(&ctx),
            "ablate-activity" => darklight_bench::ablations::activity_weight_sweep(&ctx),
            "ablate-features" => darklight_bench::ablations::feature_family_ablation(&ctx),
            "ablate-lemma" => darklight_bench::ablations::lemmatization_ablation(&ctx),
            "ablate-batch" => darklight_bench::ablations::batch_size_sweep(&ctx),
            "defence-obfuscation" => darklight_bench::ablations::obfuscation_defence(&ctx),
            "ranks" => exp::rank_histogram(&ctx),
            "explain" => exp::explain_best_match(&ctx),
            "scale-trend" => exp::scale_trend(200),
            "figures" => {
                let dir = out_dir.clone().unwrap_or_else(|| "results".to_string());
                exp::render_figures(&ctx, std::path::Path::new(&dir))
            }
            _ => unreachable!("validated above"),
        };
        println!("{body}");
        let elapsed = t.elapsed().as_secs_f64();
        phases.push((name.to_string(), elapsed));
        eprintln!("[{name} done in {elapsed:.1}s]");
        if let Some(dir) = &out_dir {
            let path = std::path::Path::new(dir).join(format!("{name}.md"));
            let mut f = std::fs::File::create(&path).expect("create experiment file");
            f.write_all(body.as_bytes()).expect("write experiment file");
        }
    }

    // The batched DarkWeb link runs twice: a serial baseline (threads = 1,
    // no instrumentation) and then the instrumented run on the configured
    // worker pool. Their wall-clocks give the before/after throughput and
    // speedup in BENCH_repro.json. Metrics never change attribution
    // output, and neither does the thread count (pinned by
    // `tests/thread_parity.rs`), so both runs score identically.
    let resolved_threads = darklight_par::resolve_threads(threads);
    // Under a memory budget the batch size is derived from it (and the
    // governor watches the instrumented run); both timed runs use the
    // same batch config so the serial/parallel comparison stays fair.
    let batch = match &mem_budget {
        Some(budget) => BatchConfig::derive(budget, &dw_known, &dw_unknown).unwrap_or_else(|e| {
            eprintln!("--mem-budget infeasible for this world: {e}");
            std::process::exit(2);
        }),
        None => BatchConfig::default(),
    };
    let serial_engine = TwoStage::new(TwoStageConfig {
        threads: 1,
        ..TwoStageConfig::default()
    });
    let t_serial = Instant::now();
    let serial_ranked =
        run_batched(&serial_engine, &batch, &dw_known, &dw_unknown).expect("valid batch config");
    let serial_s = t_serial.elapsed().as_secs_f64();
    phases.push(("serial_link".to_string(), serial_s));
    eprintln!(
        "[serial darkweb link done in {serial_s:.1}s: {} unknowns, 1 thread]",
        serial_ranked.len()
    );
    let metrics = PipelineMetrics::enabled();
    let engine = TwoStage::new(TwoStageConfig {
        metrics: metrics.clone(),
        threads: resolved_threads,
        govern: GovernConfig {
            budget: mem_budget,
            ..GovernConfig::default()
        },
        ..TwoStageConfig::default()
    });
    let t_link = Instant::now();
    let ranked = run_batched(&engine, &batch, &dw_known, &dw_unknown).expect("valid batch config");
    let link_s = t_link.elapsed().as_secs_f64();
    phases.push(("instrumented_link".to_string(), link_s));
    // `run_batched` stops before thresholding (that is `TwoStage::link`),
    // so apply the acceptance rule here for the report.
    let threshold = engine.config().threshold;
    let accepted = ranked
        .iter()
        .filter(|m| m.best().is_some_and(|r| r.score >= threshold))
        .count();
    eprintln!(
        "[instrumented darkweb link done in {link_s:.1}s: {} unknowns, {} messages, \
         {resolved_threads} thread(s), {:.2}x vs serial]",
        ranked.len(),
        messages,
        if link_s > 0.0 { serial_s / link_s } else { 0.0 },
    );

    let bench_path = out_dir
        .as_deref()
        .map(|d| std::path::Path::new(d).join("BENCH_repro.json"))
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_repro.json"));
    let report = bench_report(
        &phases,
        messages,
        serial_s,
        link_s,
        resolved_threads,
        accepted,
        ranked.len() - accepted,
        &metrics,
        batch.batch_size,
        mem_budget,
    );
    if let Err(err) = std::fs::write(&bench_path, report) {
        eprintln!(
            "error: cannot write benchmark report {}: {err}",
            bench_path.display()
        );
        std::process::exit(1);
    }
    eprintln!("benchmark report written to {}", bench_path.display());

    if let Some(path) = metrics_path {
        if let Err(err) = std::fs::write(&path, metrics.to_json_pretty()) {
            eprintln!("error: cannot write metrics snapshot {path}: {err}");
            std::process::exit(1);
        }
        eprintln!("pipeline metrics written to {path}");
    }
}

/// Renders the benchmark summary: wall-clock per phase, serial vs
/// parallel link throughput (and their ratio), peak candidate-set sizes
/// from the batched pipeline, and — under `--mem-budget` — the derived
/// batch size plus governor telemetry.
#[allow(clippy::too_many_arguments)]
fn bench_report(
    phases: &[(String, f64)],
    messages: usize,
    serial_s: f64,
    link_s: f64,
    threads: usize,
    accepted: usize,
    rejected: usize,
    metrics: &PipelineMetrics,
    batch_size: usize,
    mem_budget: Option<MemoryBudget>,
) -> String {
    let mut phase_obj = Json::object();
    for (name, seconds) in phases {
        phase_obj.set(name, Json::Float(*seconds));
    }
    let pools = metrics.histogram("batch.final_pool_size");
    let mut link = Json::object();
    link.set("messages", Json::UInt(messages as u64));
    link.set("threads", Json::UInt(threads as u64));
    link.set(
        "messages_per_sec_serial",
        Json::Float(if serial_s > 0.0 {
            messages as f64 / serial_s
        } else {
            0.0
        }),
    );
    link.set(
        "messages_per_sec",
        Json::Float(if link_s > 0.0 {
            messages as f64 / link_s
        } else {
            0.0
        }),
    );
    link.set(
        "speedup",
        Json::Float(if link_s > 0.0 { serial_s / link_s } else { 0.0 }),
    );
    link.set(
        "stage1_ns",
        Json::UInt(metrics.timer("twostage.stage1").total_ns()),
    );
    link.set(
        "stage2_ns",
        Json::UInt(metrics.timer("twostage.stage2").total_ns()),
    );
    link.set(
        "peak_candidate_pool",
        Json::Int(metrics.gauge("batch.peak_pool").get()),
    );
    link.set(
        "final_pool_p50",
        Json::UInt(pools.quantile_lower_bound(0.50)),
    );
    link.set(
        "final_pool_p99",
        Json::UInt(pools.quantile_lower_bound(0.99)),
    );
    link.set("links_accepted", Json::UInt(accepted as u64));
    link.set("links_rejected", Json::UInt(rejected as u64));
    link.set("batch_size", Json::UInt(batch_size as u64));
    if let Some(budget) = mem_budget {
        link.set("mem_budget_bytes", Json::UInt(budget.bytes()));
        link.set(
            "bytes_estimated",
            Json::Int(metrics.gauge("govern.bytes_estimated").get()),
        );
        link.set(
            "batch_shrinks",
            Json::UInt(metrics.counter("govern.batch_shrinks").get()),
        );
    }
    let mut root = Json::object();
    root.set("phases_s", phase_obj);
    root.set("instrumented_link", link);
    root.render_pretty()
}
