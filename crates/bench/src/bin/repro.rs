//! `repro` — regenerates every table and figure of the paper on the
//! synthetic world.
//!
//! ```text
//! repro [experiment...]
//!   experiments: table1 table2 table3 table4 table5 table6
//!                fig1 fig2 fig3 fig4 fig5
//!                darkweb batch results-dark results-open john-doe
//!                all   (default)
//! Environment:
//!   DARKLIGHT_SCALE=small|default|paper   scenario scale
//!   DARKLIGHT_OUT=<dir>                   write per-experiment .md files
//! ```

use darklight_bench::experiments as exp;
use darklight_bench::{prepare_world, scale_from_env};
use std::io::Write as _;
use std::time::Instant;

const ALL: &[&str] = &[
    "table1", "table2", "table3", "table4", "table5", "table6", "fig1", "fig2", "fig3",
    "fig4", "fig5", "darkweb", "batch", "results-dark", "results-open", "john-doe",
    "ablate-k", "ablate-activity", "ablate-features", "ablate-lemma", "ablate-batch",
    "defence-obfuscation", "ranks", "explain", "figures", "scale-trend",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for w in &wanted {
        if !ALL.contains(w) {
            eprintln!("unknown experiment {w:?}; known: {ALL:?}");
            std::process::exit(2);
        }
    }

    let config = scale_from_env();
    eprintln!(
        "generating world (reddit {} / tmg {} / dm {} rich users)...",
        config.reddit_users, config.tmg_users, config.dm_users
    );
    let t0 = Instant::now();
    let world = prepare_world(&config);
    eprintln!(
        "world ready in {:.1}s: reddit {} originals / {} alter-egos; tmg {}/{}; dm {}/{}",
        t0.elapsed().as_secs_f64(),
        world.reddit.originals.len(),
        world.reddit.alter_egos.len(),
        world.tmg.originals.len(),
        world.tmg.alter_egos.len(),
        world.dm.originals.len(),
        world.dm.alter_egos.len(),
    );
    let ctx = exp::Ctx::new(world);
    let out_dir = std::env::var("DARKLIGHT_OUT").ok();
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    for name in wanted {
        let t = Instant::now();
        let body = match name {
            "table1" => exp::table1(&ctx),
            "table2" => exp::table2(&ctx),
            "table3" => exp::table3(&ctx),
            "table4" => exp::table4(&ctx),
            "table5" => exp::table5(&ctx),
            "table6" => exp::table6(&ctx),
            "fig1" => exp::fig1(&ctx),
            "fig2" => exp::fig2(&ctx),
            "fig3" => exp::fig3(&ctx, 300),
            "fig4" => exp::fig4(&ctx),
            "fig5" => exp::fig5(&ctx),
            "darkweb" => exp::darkweb_accuracy(&ctx),
            "batch" => exp::batch_experiment(&ctx, 100),
            "results-dark" => exp::results_dark(&ctx),
            "results-open" => exp::results_open(&ctx),
            "john-doe" => exp::john_doe(&ctx),
            "ablate-k" => darklight_bench::ablations::k_sweep(&ctx),
            "ablate-activity" => darklight_bench::ablations::activity_weight_sweep(&ctx),
            "ablate-features" => darklight_bench::ablations::feature_family_ablation(&ctx),
            "ablate-lemma" => darklight_bench::ablations::lemmatization_ablation(&ctx),
            "ablate-batch" => darklight_bench::ablations::batch_size_sweep(&ctx),
            "defence-obfuscation" => darklight_bench::ablations::obfuscation_defence(&ctx),
            "ranks" => exp::rank_histogram(&ctx),
            "explain" => exp::explain_best_match(&ctx),
            "scale-trend" => exp::scale_trend(200),
            "figures" => {
                let dir = out_dir.clone().unwrap_or_else(|| "results".to_string());
                exp::render_figures(&ctx, std::path::Path::new(&dir))
            }
            _ => unreachable!("validated above"),
        };
        println!("{body}");
        eprintln!("[{name} done in {:.1}s]", t.elapsed().as_secs_f64());
        if let Some(dir) = &out_dir {
            let path = std::path::Path::new(dir).join(format!("{name}.md"));
            let mut f = std::fs::File::create(&path).expect("create experiment file");
            f.write_all(body.as_bytes()).expect("write experiment file");
        }
    }
}
