//! Experiment harness shared by the `repro` binary and the Criterion
//! benches: scenario preparation (generate → polish → refine → alter-ego →
//! datasets) and the scale switch.
//!
//! Set `DARKLIGHT_SCALE=small|default|paper` to pick the scenario scale
//! (default: `default`). All experiments are deterministic per scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod experiments;
pub mod matrix;

/// Fallback threshold when calibration cannot reach 80% recall (paper's
/// own global threshold, for reference).
pub const PAPER_THRESHOLD_FALLBACK: f64 = darklight_core::PAPER_THRESHOLD;

use darklight_activity::profile::{ProfileBuilder, ProfilePolicy};
use darklight_core::dataset::{Dataset, DatasetBuilder};
use darklight_corpus::model::Corpus;
use darklight_corpus::polish::{PolishConfig, PolishReport, Polisher};
use darklight_corpus::refine::{build_alter_egos, refine, AlterEgoConfig, RefineConfig};
use darklight_synth::scenario::{Scenario, ScenarioBuilder, ScenarioConfig};

/// One forum prepared for experiments: the refined originals and their
/// alter-egos (Table IV's dataset pairs), both as corpora (for ground
/// truth) and attribution datasets.
#[derive(Debug, Clone)]
pub struct ForumData {
    /// Refined original users (post-split halves for eligible users).
    pub originals: Dataset,
    /// The alter-ego aliases.
    pub alter_egos: Dataset,
    /// Polished+refined corpus behind `originals`.
    pub originals_corpus: Corpus,
    /// Corpus behind `alter_egos`.
    pub alter_egos_corpus: Corpus,
    /// Polishing report for the raw corpus.
    pub polish_report: PolishReport,
    /// Users in the raw (generated) corpus.
    pub raw_users: usize,
    /// Users surviving polishing.
    pub polished_users: usize,
}

/// The full prepared world.
#[derive(Debug, Clone)]
pub struct World {
    /// The generated scenario (raw corpora + personas).
    pub scenario: Scenario,
    /// Prepared Reddit data.
    pub reddit: ForumData,
    /// Prepared Majestic Garden data.
    pub tmg: ForumData,
    /// Prepared Dream Market data.
    pub dm: ForumData,
}

impl World {
    /// The merged DarkWeb dataset pair of §IV-G (TMG ∪ DM).
    pub fn darkweb(&self) -> (Dataset, Dataset) {
        (
            self.tmg
                .originals
                .merged_with(&self.dm.originals, "darkweb"),
            self.tmg
                .alter_egos
                .merged_with(&self.dm.alter_egos, "ae_darkweb"),
        )
    }
}

/// Prepares one raw corpus: polish → refine → alter-ego split → datasets.
pub fn prepare_forum(raw: &Corpus) -> ForumData {
    let polisher = Polisher::new(PolishConfig::default());
    let (polished, polish_report) = polisher.polish(raw);
    let profiles = ProfileBuilder::new(ProfilePolicy::default());
    let refined = refine(&polished, RefineConfig::default(), &profiles);
    let (orig_corpus, ae_corpus) =
        build_alter_egos(&refined, &AlterEgoConfig::default(), &profiles);
    let builder = DatasetBuilder::new();
    ForumData {
        originals: builder.build(&orig_corpus),
        alter_egos: builder.build(&ae_corpus),
        originals_corpus: orig_corpus,
        alter_egos_corpus: ae_corpus,
        polish_report,
        raw_users: raw.len(),
        polished_users: polished.len(),
    }
}

/// Generates and prepares the full world for a config.
pub fn prepare_world(config: &ScenarioConfig) -> World {
    let scenario = ScenarioBuilder::new(config.clone()).build();
    let reddit = prepare_forum(&scenario.reddit);
    let tmg = prepare_forum(&scenario.tmg);
    let dm = prepare_forum(&scenario.dm);
    World {
        scenario,
        reddit,
        tmg,
        dm,
    }
}

/// Reads `DARKLIGHT_SCALE` and returns the matching scenario config.
pub fn scale_from_env() -> ScenarioConfig {
    scale_from_name(std::env::var("DARKLIGHT_SCALE").ok().as_deref())
}

/// Maps a scale name (`small` / `paper` / anything else → default) to its
/// scenario config.
pub fn scale_from_name(name: Option<&str>) -> ScenarioConfig {
    match name {
        Some("small") => ScenarioConfig::small(),
        Some("paper") => ScenarioConfig::paper_scale(),
        _ => ScenarioConfig::default_scale(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_world_small() {
        let world = prepare_world(&ScenarioConfig::small());
        // Polishing dropped the noise accounts.
        assert!(world.reddit.polished_users < world.reddit.raw_users);
        // Refinement keeps a core of rich users.
        assert!(world.reddit.originals.len() > 10);
        // Alter egos exist and are fewer than originals (Table IV shape).
        assert!(!world.reddit.alter_egos.is_empty());
        assert!(world.reddit.alter_egos.len() <= world.reddit.originals.len());
        // The darkweb merge concatenates.
        let (dw, ae_dw) = world.darkweb();
        assert_eq!(
            dw.len(),
            world.tmg.originals.len() + world.dm.originals.len()
        );
        assert!(!ae_dw.is_empty());
    }
}

#[cfg(test)]
mod scale_tests {
    use super::*;

    #[test]
    fn scale_names_map_to_configs() {
        assert_eq!(scale_from_name(Some("small")), ScenarioConfig::small());
        assert_eq!(
            scale_from_name(Some("paper")),
            ScenarioConfig::paper_scale()
        );
        assert_eq!(
            scale_from_name(Some("bogus")),
            ScenarioConfig::default_scale()
        );
        assert_eq!(scale_from_name(None), ScenarioConfig::default_scale());
    }
}
