//! The scenario-matrix benchmark driver behind `darklight bench-matrix`
//! (DESIGN.md §12).
//!
//! Each matrix cell (a `(scenario, scale, seed)` triple from
//! `darklight_synth::matrix`) runs the full governed pipeline — generate
//! → polish → refine → datasets → batched two-stage link, serial then on
//! the worker pool — and renders one `BENCH_<scenario>_<scale>.json`
//! report with two sections of very different nature:
//!
//! * everything except `"throughput"` is **deterministic**: a function of
//!   the cell spec and the code alone. `--check` compares these bytes
//!   bit-for-bit against a committed baseline.
//! * `"throughput"` is wall-clock dependent; `--check` allows a tolerance
//!   (default 25%) before declaring a regression.
//!
//! An F1 drop above the tolerance (default 2 points) is reported as its
//! own typed verdict, so an accuracy regression reads as such rather than
//! as an opaque byte mismatch.

use darklight_activity::profile::{ProfileBuilder, ProfilePolicy};
use darklight_core::batch::{
    budget_overhead_bytes, budget_per_candidate_bytes, run_batched, BatchConfig,
};
use darklight_core::dataset::{Dataset, DatasetBuilder};
use darklight_core::twostage::{TwoStage, TwoStageConfig};
use darklight_corpus::model::Corpus;
use darklight_corpus::polish::{PolishConfig, Polisher};
use darklight_corpus::refine::refine;
use darklight_eval::curve::PrCurve;
use darklight_eval::metrics::{labeled_best_matches, precision_recall_at};
use darklight_govern::{GovernConfig, MemoryBudget};
use darklight_obs::{Json, PipelineMetrics};
use darklight_synth::matrix::CellSpec;
use darklight_synth::scenario::ScenarioBuilder;
use std::time::Instant;

/// Version stamp of the `BENCH_*.json` schema; bump on field changes.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Default allowed throughput regression before `--check` fails (25%).
pub const DEFAULT_THROUGHPUT_TOLERANCE: f64 = 0.25;

/// Default allowed F1 drop before `--check` fails (2 points).
pub const DEFAULT_F1_TOLERANCE: f64 = 0.02;

/// Runtime knobs for a cell run (never part of the deterministic
/// sections, except that an explicit memory budget changes the derived
/// batch size).
#[derive(Debug, Clone, Copy, Default)]
pub struct CellOptions {
    /// Worker threads (0 = auto).
    pub threads: usize,
    /// Byte ceiling for the governed run; `None` derives a budget that
    /// admits half the known pool per batch, so every cell runs at least
    /// one genuinely governed round (the pressure ladder measures a real
    /// footprint instead of short-circuiting).
    pub mem_budget: Option<MemoryBudget>,
}

/// A cell's prepared world: datasets plus the counts the report needs.
#[derive(Debug, Clone)]
pub struct PreparedCell {
    /// Refined TMG aliases (the known pool).
    pub known: Dataset,
    /// Refined DM aliases, capped at the scale's unknown limit.
    pub unknown: Dataset,
    /// Corpus behind `known`.
    pub known_corpus: Corpus,
    /// Corpus behind `unknown` (post-cap).
    pub unknown_corpus: Corpus,
    /// Aliases in the raw generated world (both forums, pre-polish).
    pub raw_aliases: usize,
}

/// Generates and prepares a cell's world: dark-only scenario → polish →
/// scenario-specific refine → datasets, with the unknown (DM) side capped
/// to the scale's limit. Deterministic per spec.
pub fn prepare_cell(spec: &CellSpec) -> PreparedCell {
    let scenario = ScenarioBuilder::new(spec.config()).build();
    let raw_aliases = scenario.tmg.len() + scenario.dm.len();
    let polisher = Polisher::new(PolishConfig::default());
    let profiles = ProfileBuilder::new(ProfilePolicy::default());
    let refine_cfg = spec.refine_config();
    let (polished_tmg, _) = polisher.polish(&scenario.tmg);
    let (polished_dm, _) = polisher.polish(&scenario.dm);
    let known_corpus = refine(&polished_tmg, refine_cfg, &profiles);
    let mut unknown_corpus = refine(&polished_dm, refine_cfg, &profiles);
    // Cap the unknown pool like the paper caps alter-egos at 1,000. The
    // cross personas are generated first, so truncation keeps every
    // ground-truth positive and drops only resident distractors.
    unknown_corpus.users.truncate(spec.scale.max_unknowns());
    let builder = DatasetBuilder::new();
    PreparedCell {
        known: builder.build(&known_corpus),
        unknown: builder.build(&unknown_corpus),
        known_corpus,
        unknown_corpus,
        raw_aliases,
    }
}

/// Runs one cell end to end and renders its report. The error case is an
/// infeasible explicit memory budget.
pub fn run_cell(spec: &CellSpec, opts: &CellOptions) -> Result<Json, String> {
    let metrics = PipelineMetrics::enabled();
    let t_prep = Instant::now();
    let prep = prepare_cell(spec);
    let prep_s = t_prep.elapsed().as_secs_f64();
    metrics
        .timer("bench.world_prep")
        .record_ns(t_prep.elapsed().as_nanos() as u64);
    metrics.counter("bench.cells_run").add(1);
    metrics
        .gauge("bench.known_aliases")
        .set(prep.known.len() as i64);
    metrics
        .gauge("bench.unknown_aliases")
        .set(prep.unknown.len() as i64);
    let messages = prep.known_corpus.total_posts() + prep.unknown_corpus.total_posts();
    metrics.gauge("bench.messages").set(messages as i64);

    // The governed batch: an explicit budget derives the largest
    // admissible batch; without one, derive a budget that admits half
    // the known pool per batch, so the run always exercises at least one
    // batched round and the pressure ladder measures a real footprint.
    let budget = match opts.mem_budget {
        Some(b) => b,
        None => {
            let half = (prep.known.len() / 2).max(1) as u64;
            MemoryBudget::from_bytes(
                budget_overhead_bytes(&prep.unknown)
                    + half * budget_per_candidate_bytes(&prep.known),
            )
            .map_err(|e| format!("cell {}: {e}", spec.id()))?
        }
    };
    let batch = BatchConfig::derive(&budget, &prep.known, &prep.unknown)
        .map_err(|e| format!("cell {}: memory budget infeasible: {e}", spec.id()))?;

    let serial_engine = TwoStage::new(TwoStageConfig {
        threads: 1,
        ..TwoStageConfig::default()
    });
    let t_serial = Instant::now();
    let serial_ranked = run_batched(&serial_engine, &batch, &prep.known, &prep.unknown)
        .map_err(|e| format!("cell {}: {e}", spec.id()))?;
    let serial_s = t_serial.elapsed().as_secs_f64();
    metrics
        .timer("bench.link_serial")
        .record_ns(t_serial.elapsed().as_nanos() as u64);

    let threads = darklight_par::resolve_threads(opts.threads);
    let engine = TwoStage::new(TwoStageConfig {
        metrics: metrics.clone(),
        threads,
        govern: GovernConfig {
            budget: Some(budget),
            ..GovernConfig::default()
        },
        ..TwoStageConfig::default()
    });
    let t_par = Instant::now();
    let ranked = run_batched(&engine, &batch, &prep.known, &prep.unknown)
        .map_err(|e| format!("cell {}: {e}", spec.id()))?;
    let parallel_s = t_par.elapsed().as_secs_f64();
    metrics
        .timer("bench.link_parallel")
        .record_ns(t_par.elapsed().as_nanos() as u64);
    debug_assert_eq!(serial_ranked, ranked, "thread-count parity violated");

    // Accuracy at the per-cell calibrated threshold (highest threshold
    // reaching 80% recall, else best F1 — the §IV-E rule).
    let labeled = labeled_best_matches(&ranked, &prep.known, &prep.unknown);
    let curve = PrCurve::from_labeled(&labeled);
    let threshold = curve
        .threshold_for_recall(0.80)
        .or_else(|| curve.best_f1())
        .map(|p| p.threshold)
        .unwrap_or(crate::PAPER_THRESHOLD_FALLBACK);
    let (precision, recall) = precision_recall_at(&labeled, threshold);
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    metrics
        .gauge("bench.positives")
        .set(curve.positives() as i64);

    let mut cell = Json::object();
    cell.set("scenario", Json::Str(spec.kind.name().to_string()));
    cell.set("scale", Json::Str(spec.scale.name().to_string()));
    cell.set("seed", Json::UInt(spec.seed));

    let mut world = Json::object();
    world.set("raw_aliases", Json::UInt(prep.raw_aliases as u64));
    world.set("known_aliases", Json::UInt(prep.known.len() as u64));
    world.set("unknown_aliases", Json::UInt(prep.unknown.len() as u64));
    world.set("messages", Json::UInt(messages as u64));
    world.set("positives", Json::UInt(curve.positives() as u64));

    let mut accuracy = Json::object();
    accuracy.set("threshold", Json::Float(threshold));
    accuracy.set("precision", Json::Float(precision));
    accuracy.set("recall", Json::Float(recall));
    accuracy.set("f1", Json::Float(f1));
    accuracy.set("pr_auc", Json::Float(curve.auc()));

    let mut govern = Json::object();
    govern.set("batch_size", Json::UInt(batch.batch_size as u64));
    govern.set("mem_budget_bytes", Json::UInt(budget.bytes()));
    govern.set(
        "bytes_estimated",
        Json::Int(metrics.gauge("govern.bytes_estimated").get()),
    );
    govern.set(
        "batch_shrinks",
        Json::UInt(metrics.counter("govern.batch_shrinks").get()),
    );

    let mut throughput = Json::object();
    throughput.set("threads", Json::UInt(threads as u64));
    throughput.set("world_prep_s", Json::Float(prep_s));
    throughput.set("serial_s", Json::Float(serial_s));
    throughput.set("parallel_s", Json::Float(parallel_s));
    throughput.set(
        "messages_per_sec_serial",
        Json::Float(if serial_s > 0.0 {
            messages as f64 / serial_s
        } else {
            0.0
        }),
    );
    throughput.set(
        "messages_per_sec",
        Json::Float(if parallel_s > 0.0 {
            messages as f64 / parallel_s
        } else {
            0.0
        }),
    );
    throughput.set(
        "speedup",
        Json::Float(if parallel_s > 0.0 {
            serial_s / parallel_s
        } else {
            0.0
        }),
    );

    let mut root = Json::object();
    root.set("schema_version", Json::UInt(BENCH_SCHEMA_VERSION));
    root.set("cell", cell);
    root.set("world", world);
    root.set("accuracy", accuracy);
    root.set("govern", govern);
    root.set("throughput", throughput);
    Ok(root)
}

/// The deterministic subset of a cell report: everything except the
/// wall-clock `"throughput"` section. `--check` byte-compares this.
pub fn deterministic_view(report: &Json) -> Json {
    match report {
        Json::Object(map) => {
            let mut out = map.clone();
            out.remove("throughput");
            Json::Object(out)
        }
        other => other.clone(),
    }
}

/// Tolerances for the comparison mode.
#[derive(Debug, Clone, Copy)]
pub struct CheckTolerance {
    /// Allowed fractional throughput drop (0.25 = 25%).
    pub throughput: f64,
    /// Allowed F1 drop in absolute points (0.02 = 2 points).
    pub f1: f64,
}

impl Default for CheckTolerance {
    fn default() -> CheckTolerance {
        CheckTolerance {
            throughput: DEFAULT_THROUGHPUT_TOLERANCE,
            f1: DEFAULT_F1_TOLERANCE,
        }
    }
}

/// The typed outcome of comparing one cell against its baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum CellVerdict {
    /// Deterministic bytes match; throughput within tolerance.
    Pass,
    /// No baseline file for this cell.
    MissingBaseline,
    /// The baseline is unparseable or from a different schema version.
    SchemaMismatch(String),
    /// F1 dropped beyond tolerance (reported instead of the raw byte
    /// mismatch it necessarily also causes).
    F1Drop {
        /// Baseline F1.
        baseline: f64,
        /// Current F1.
        current: f64,
    },
    /// Deterministic sections differ (first differing field path).
    DeterminismMismatch {
        /// Dotted path of the first differing field.
        field: String,
    },
    /// Throughput fell more than the tolerance below baseline.
    ThroughputRegression {
        /// Which axis regressed (`serial` / `parallel`).
        axis: &'static str,
        /// Baseline messages/sec.
        baseline: f64,
        /// Current messages/sec.
        current: f64,
    },
}

impl CellVerdict {
    /// Whether this verdict lets the gate pass.
    pub fn passed(&self) -> bool {
        matches!(self, CellVerdict::Pass)
    }
}

/// One line of the per-cell check report.
#[derive(Debug, Clone, PartialEq)]
pub struct CellCheck {
    /// The cell id (`clean_s`, ...).
    pub cell: String,
    /// The typed outcome.
    pub verdict: CellVerdict,
}

impl CellCheck {
    /// Renders the human-readable report line.
    pub fn render(&self) -> String {
        match &self.verdict {
            CellVerdict::Pass => format!("cell {}: pass", self.cell),
            CellVerdict::MissingBaseline => {
                format!("cell {}: FAIL missing baseline", self.cell)
            }
            CellVerdict::SchemaMismatch(detail) => {
                format!("cell {}: FAIL schema mismatch: {detail}", self.cell)
            }
            CellVerdict::F1Drop { baseline, current } => format!(
                "cell {}: FAIL f1 drop: baseline {:.4}, current {:.4}",
                self.cell, baseline, current
            ),
            CellVerdict::DeterminismMismatch { field } => {
                format!("cell {}: FAIL determinism mismatch at {field}", self.cell)
            }
            CellVerdict::ThroughputRegression {
                axis,
                baseline,
                current,
            } => format!(
                "cell {}: FAIL {axis} throughput regression: baseline {:.0} msg/s, \
                 current {:.0} msg/s",
                self.cell, baseline, current
            ),
        }
    }
}

fn as_f64(value: Option<&Json>) -> Option<f64> {
    match value? {
        Json::Float(f) => Some(*f),
        Json::UInt(u) => Some(*u as f64),
        Json::Int(i) => Some(*i as f64),
        _ => None,
    }
}

/// Dotted path of the first field where two JSON values differ, walking
/// objects key-by-key (keys are BTreeMap-sorted, so the walk — like the
/// rendering — is deterministic).
fn diff_path(a: &Json, b: &Json, prefix: &str) -> Option<String> {
    match (a, b) {
        (Json::Object(ma), Json::Object(mb)) => {
            for key in ma.keys().chain(mb.keys()) {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                match (ma.get(key), mb.get(key)) {
                    (Some(va), Some(vb)) => {
                        if let Some(p) = diff_path(va, vb, &path) {
                            return Some(p);
                        }
                    }
                    (None, _) | (_, None) => return Some(path),
                }
            }
            None
        }
        _ if a == b => None,
        _ => Some(if prefix.is_empty() {
            "<root>".to_string()
        } else {
            prefix.to_string()
        }),
    }
}

/// Compares a freshly-run cell report against its committed baseline
/// text. Verdict precedence: schema problems, then F1 drops, then other
/// deterministic mismatches, then throughput.
pub fn check_cell(
    cell_id: &str,
    baseline_text: &str,
    current: &Json,
    tol: &CheckTolerance,
) -> CellCheck {
    let verdict = check_verdict(baseline_text, current, tol);
    CellCheck {
        cell: cell_id.to_string(),
        verdict,
    }
}

fn check_verdict(baseline_text: &str, current: &Json, tol: &CheckTolerance) -> CellVerdict {
    let baseline = match Json::parse(baseline_text) {
        Ok(j) => j,
        Err(e) => return CellVerdict::SchemaMismatch(format!("unparseable baseline: {e}")),
    };
    if baseline.get("schema_version") != current.get("schema_version") {
        return CellVerdict::SchemaMismatch(format!(
            "schema_version {:?} != {:?}",
            baseline.get("schema_version"),
            current.get("schema_version")
        ));
    }
    let det_base = deterministic_view(&baseline);
    let det_cur = deterministic_view(current);
    if det_base.render() != det_cur.render() {
        let f1_base = as_f64(baseline.get("accuracy").and_then(|a| a.get("f1")));
        let f1_cur = as_f64(current.get("accuracy").and_then(|a| a.get("f1")));
        if let (Some(b), Some(c)) = (f1_base, f1_cur) {
            if c < b - tol.f1 {
                return CellVerdict::F1Drop {
                    baseline: b,
                    current: c,
                };
            }
        }
        let field = diff_path(&det_base, &det_cur, "").unwrap_or_else(|| "<render>".to_string());
        return CellVerdict::DeterminismMismatch { field };
    }
    for (axis, key) in [
        ("serial", "messages_per_sec_serial"),
        ("parallel", "messages_per_sec"),
    ] {
        let base = as_f64(baseline.get("throughput").and_then(|t| t.get(key)));
        let cur = as_f64(current.get("throughput").and_then(|t| t.get(key)));
        if let (Some(b), Some(c)) = (base, cur) {
            if c < b * (1.0 - tol.throughput) {
                return CellVerdict::ThroughputRegression {
                    axis,
                    baseline: b,
                    current: c,
                };
            }
        }
    }
    CellVerdict::Pass
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(f1: f64, msgs_serial: f64, msgs_par: f64) -> Json {
        let mut accuracy = Json::object();
        accuracy.set("f1", Json::Float(f1));
        let mut throughput = Json::object();
        throughput.set("messages_per_sec_serial", Json::Float(msgs_serial));
        throughput.set("messages_per_sec", Json::Float(msgs_par));
        let mut root = Json::object();
        root.set("schema_version", Json::UInt(BENCH_SCHEMA_VERSION));
        root.set("accuracy", accuracy);
        root.set("throughput", throughput);
        root
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(0.9, 100.0, 300.0);
        let check = check_cell(
            "clean_t",
            &r.render_pretty(),
            &r,
            &CheckTolerance::default(),
        );
        assert!(check.verdict.passed(), "{:?}", check.verdict);
    }

    #[test]
    fn throughput_within_tolerance_passes_beyond_fails() {
        let base = report(0.9, 100.0, 300.0);
        let tol = CheckTolerance::default();
        let slower_ok = report(0.9, 80.0, 240.0);
        assert!(check_cell("c", &base.render(), &slower_ok, &tol)
            .verdict
            .passed());
        let slower_bad = report(0.9, 100.0, 200.0);
        assert_eq!(
            check_cell("c", &base.render(), &slower_bad, &tol).verdict,
            CellVerdict::ThroughputRegression {
                axis: "parallel",
                baseline: 300.0,
                current: 200.0
            }
        );
    }

    #[test]
    fn f1_drop_beats_generic_mismatch() {
        let base = report(0.9, 100.0, 300.0);
        let worse = report(0.8, 100.0, 300.0);
        match check_cell("c", &base.render(), &worse, &CheckTolerance::default()).verdict {
            CellVerdict::F1Drop { baseline, current } => {
                assert_eq!(baseline, 0.9);
                assert_eq!(current, 0.8);
            }
            other => panic!("expected F1Drop, got {other:?}"),
        }
    }

    #[test]
    fn f1_gain_is_a_determinism_mismatch_not_a_drop() {
        let base = report(0.8, 100.0, 300.0);
        let better = report(0.9, 100.0, 300.0);
        assert_eq!(
            check_cell("c", &base.render(), &better, &CheckTolerance::default()).verdict,
            CellVerdict::DeterminismMismatch {
                field: "accuracy.f1".to_string()
            }
        );
    }

    #[test]
    fn bad_baseline_is_schema_mismatch() {
        let cur = report(0.9, 100.0, 300.0);
        match check_cell("c", "not json", &cur, &CheckTolerance::default()).verdict {
            CellVerdict::SchemaMismatch(_) => {}
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
    }

    #[test]
    fn deterministic_view_strips_only_throughput() {
        let r = report(0.9, 100.0, 300.0);
        let det = deterministic_view(&r);
        assert!(det.get("throughput").is_none());
        assert!(det.get("accuracy").is_some());
        assert!(det.get("schema_version").is_some());
    }
}
