//! Ablation experiments for the design choices DESIGN.md calls out:
//! lemmatization, polishing, the activity-profile weight, the candidate
//! count k, the batch size, per-feature-family contributions, and the
//! style-obfuscation defence (§VI).

use crate::experiments::{wrap_stage1, Ctx};
use darklight_core::batch::{run_batched, BatchConfig};
use darklight_core::dataset::{Dataset, DatasetBuilder};
use darklight_core::twostage::{TwoStage, TwoStageConfig};
use darklight_eval::curve::PrCurve;
use darklight_eval::metrics::{labeled_best_matches, reduction_accuracy_at_k};
use darklight_eval::report::{num, pct, Table};
use darklight_features::pipeline::FeatureConfig;
use darklight_text::obfuscate::{ObfuscateConfig, Obfuscator};
use std::fmt::Write as _;

/// Sweep the candidate-set size k: accuracy@k of the reduction stage and
/// AUC of the full pipeline.
pub fn k_sweep(ctx: &Ctx) -> String {
    let known = &ctx.world.reddit.originals;
    let (w1, _) = ctx.w_splits();
    let mut t = Table::new(["k", "reduction acc@k", "pipeline AUC"]);
    for k in [1usize, 2, 5, 10, 20, 50] {
        let cfg = TwoStageConfig {
            k,
            ..ctx.engine_config.clone()
        };
        let engine = TwoStage::new(cfg);
        let stage1 = wrap_stage1(engine.reduce(known, &w1));
        let acc = reduction_accuracy_at_k(&stage1, known, &w1, k);
        let results = engine.run(known, &w1);
        let auc = PrCurve::from_labeled(&labeled_best_matches(&results, known, &w1)).auc();
        t.row([k.to_string(), pct(acc), num(auc, 3)]);
    }
    format!("## Ablation — candidate count k\n\n{}", t.to_markdown())
}

/// Sweep the activity-profile block weight (0 = text only).
pub fn activity_weight_sweep(ctx: &Ctx) -> String {
    let known = &ctx.world.reddit.originals;
    let (w1, _) = ctx.w_splits();
    let mut t = Table::new(["activity weight", "acc@1", "acc@10"]);
    for w in [0.0f32, 0.1, 0.2, 0.35, 0.5, 1.0] {
        let mut cfg = ctx.engine_config.clone();
        cfg.reduction.activity_weight = w;
        cfg.final_stage.activity_weight = w;
        let stage1 = wrap_stage1(TwoStage::new(cfg).reduce(known, &w1));
        t.row([
            format!("{w:.2}"),
            pct(reduction_accuracy_at_k(&stage1, known, &w1, 1)),
            pct(reduction_accuracy_at_k(&stage1, known, &w1, 10)),
        ]);
    }
    format!(
        "## Ablation — activity-profile weight\n\n{}",
        t.to_markdown()
    )
}

/// Per-feature-family contribution: run the reduction stage with exactly
/// one family enabled at a time, then all together.
pub fn feature_family_ablation(ctx: &Ctx) -> String {
    let known = &ctx.world.reddit.originals;
    let (w1, _) = ctx.w_splits();
    let base = FeatureConfig::space_reduction();
    let variants: Vec<(&str, FeatureConfig)> = vec![
        (
            "word n-grams only",
            FeatureConfig {
                char_weight: 0.0,
                char_class_weight: 0.0,
                activity_weight: 0.0,
                ..base.clone()
            },
        ),
        (
            "char n-grams only",
            FeatureConfig {
                word_weight: 0.0,
                char_class_weight: 0.0,
                activity_weight: 0.0,
                ..base.clone()
            },
        ),
        (
            "char classes only",
            FeatureConfig {
                word_weight: 0.0,
                char_weight: 0.0,
                activity_weight: 0.0,
                char_class_weight: 1.0,
                ..base.clone()
            },
        ),
        (
            "activity only",
            FeatureConfig {
                word_weight: 0.0,
                char_weight: 0.0,
                char_class_weight: 0.0,
                activity_weight: 1.0,
                ..base.clone()
            },
        ),
        ("all families", base.clone()),
    ];
    let mut t = Table::new(["features", "acc@1", "acc@10"]);
    for (name, fc) in variants {
        let cfg = TwoStageConfig {
            reduction: fc.clone(),
            final_stage: fc,
            ..ctx.engine_config.clone()
        };
        let stage1 = wrap_stage1(TwoStage::new(cfg).reduce(known, &w1));
        t.row([
            name.to_string(),
            pct(reduction_accuracy_at_k(&stage1, known, &w1, 1)),
            pct(reduction_accuracy_at_k(&stage1, known, &w1, 10)),
        ]);
    }
    format!("## Ablation — feature families\n\n{}", t.to_markdown())
}

/// Lemmatization on/off.
pub fn lemmatization_ablation(ctx: &Ctx) -> String {
    let known = &ctx.world.reddit.originals;
    let (w1, _) = ctx.w_splits();
    // "Off" needs re-prepared datasets without the lemmatizer; rebuild from
    // the refined corpora.
    let raw_builder = DatasetBuilderNoLemma::new();
    let known_raw = raw_builder.build(&ctx.world.reddit.originals_corpus);
    let ae_raw = raw_builder.build(&ctx.world.reddit.alter_egos_corpus);
    let n = w1.len();
    let ae_raw = Dataset::new("w1_raw", ae_raw.records[..n.min(ae_raw.len())].to_vec());
    let engine = TwoStage::new(ctx.engine_config.clone());
    let mut t = Table::new(["lemmatization", "acc@1", "acc@10"]);
    let on = wrap_stage1(engine.reduce(known, &w1));
    t.row([
        "on (paper)".to_string(),
        pct(reduction_accuracy_at_k(&on, known, &w1, 1)),
        pct(reduction_accuracy_at_k(&on, known, &w1, 10)),
    ]);
    let off = wrap_stage1(engine.reduce(&known_raw, &ae_raw));
    t.row([
        "off".to_string(),
        pct(reduction_accuracy_at_k(&off, &known_raw, &ae_raw, 1)),
        pct(reduction_accuracy_at_k(&off, &known_raw, &ae_raw, 10)),
    ]);
    format!("## Ablation — lemmatization\n\n{}", t.to_markdown())
}

/// Batch-size sweep (§IV-J): agreement with the unbatched pipeline.
pub fn batch_size_sweep(ctx: &Ctx) -> String {
    let known = &ctx.world.reddit.originals;
    let (w1, _) = ctx.w_splits();
    // Use a subsample for tractability.
    let sample = Dataset::new("batch_sweep", w1.records[..w1.len().min(120)].to_vec());
    let engine = TwoStage::new(ctx.engine_config.clone());
    let reference = engine.run(known, &sample);
    let mut t = Table::new(["batch size B", "top-match agreement", "acc@1"]);
    for b in [50usize, 100, 200, 400] {
        if b >= known.len() {
            continue;
        }
        let batched = run_batched(&engine, &BatchConfig { batch_size: b }, known, &sample)
            .expect("valid batch config");
        let agree = reference
            .iter()
            .zip(&batched)
            .filter(|(a, c)| a.best().map(|r| r.index) == c.best().map(|r| r.index))
            .count();
        let acc = {
            let labeled = labeled_best_matches(&batched, known, &sample);
            labeled.iter().filter(|l| l.correct).count() as f64 / labeled.len().max(1) as f64
        };
        t.row([
            b.to_string(),
            pct(agree as f64 / reference.len().max(1) as f64),
            pct(acc),
        ]);
    }
    format!("## Ablation — batch size (§IV-J)\n\n{}", t.to_markdown())
}

/// The §VI defence: obfuscate the unknown aliases' text with the
/// adversarial-stylometry scrubber and measure how attribution degrades.
pub fn obfuscation_defence(ctx: &Ctx) -> String {
    let known = &ctx.world.reddit.originals;
    let (w1, _) = ctx.w_splits();
    let engine = TwoStage::new(ctx.engine_config.clone());

    let mut out = String::from("## Defence — adversarial stylometry (§VI)\n\n");
    let mut t = Table::new(["unknown text", "acc@1", "acc@10"]);
    let plain = wrap_stage1(engine.reduce(known, &w1));
    t.row([
        "as written".to_string(),
        pct(reduction_accuracy_at_k(&plain, known, &w1, 1)),
        pct(reduction_accuracy_at_k(&plain, known, &w1, 10)),
    ]);

    // Re-prepare the alter-egos from obfuscated text.
    let obfuscator = Obfuscator::new(ObfuscateConfig::aggressive());
    let mut scrubbed_corpus = ctx.world.reddit.alter_egos_corpus.clone();
    for user in &mut scrubbed_corpus.users {
        for post in &mut user.posts {
            post.text = obfuscator.apply(&post.text);
        }
    }
    let scrubbed_all = DatasetBuilder::new().build(&scrubbed_corpus);
    let scrubbed = Dataset::new(
        "w1_scrubbed",
        scrubbed_all.records[..w1.len().min(scrubbed_all.len())].to_vec(),
    );
    let obf = wrap_stage1(engine.reduce(known, &scrubbed));
    t.row([
        "obfuscated".to_string(),
        pct(reduction_accuracy_at_k(&obf, known, &scrubbed, 1)),
        pct(reduction_accuracy_at_k(&obf, known, &scrubbed, 10)),
    ]);
    let _ = write!(
        out,
        "{}\nobfuscation scrubs spelling variants, contractions, slang, casing, and\n\
         punctuation habits — the channels the char-gram and char-class features key\n\
         on — while the activity profile is untouched (evading it requires changing\n\
         *when* you post, §VI).\n",
        t.to_markdown()
    );
    out
}

/// Dataset builder without lemmatization (for the ablation).
struct DatasetBuilderNoLemma;

impl DatasetBuilderNoLemma {
    fn new() -> DatasetBuilderNoLemma {
        DatasetBuilderNoLemma
    }

    fn build(&self, corpus: &darklight_corpus::model::Corpus) -> Dataset {
        use darklight_activity::profile::{ProfileBuilder, ProfilePolicy};
        use darklight_corpus::refine::select_text;
        use darklight_features::pipeline::{CountedDoc, PreparedDoc};
        let profiles = ProfileBuilder::new(ProfilePolicy::default());
        let records = corpus
            .users
            .iter()
            .map(|user| {
                let text = select_text(user, darklight_core::PAPER_WORD_BUDGET);
                let doc = PreparedDoc::prepare(&text, None);
                let counted = CountedDoc::from_prepared(&doc, 3, 5);
                let profile = profiles.build(&user.timestamps()).ok();
                darklight_core::dataset::Record {
                    alias: user.alias.clone(),
                    persona: user.persona,
                    facts: user.facts.clone(),
                    text,
                    doc,
                    counted,
                    profile,
                }
            })
            .collect();
        Dataset::new(corpus.name.clone(), records)
    }
}
