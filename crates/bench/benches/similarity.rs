//! Benchmarks of the similarity layer: sparse dot products vs the inverted
//! index, at candidate-set sizes spanning the paper's forums.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use darklight_core::attrib::CandidateIndex;
use darklight_features::sparse::SparseVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const DIM: u32 = 90_000;

fn random_vector(rng: &mut StdRng, nnz: usize) -> SparseVector {
    SparseVector::from_pairs((0..nnz).map(|_| (rng.random_range(0..DIM), rng.random::<f32>())))
        .l2_normalized()
}

fn bench_sparse_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let a = random_vector(&mut rng, 5_000);
    let b = random_vector(&mut rng, 5_000);
    c.bench_function("sparse_dot_5k_nnz", |bch| bch.iter(|| black_box(a.dot(&b))));
    c.bench_function("sparse_cosine_5k_nnz", |bch| {
        bch.iter(|| black_box(a.cosine(&b)))
    });
}

fn bench_index_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_top10");
    for &n_users in &[178usize, 422, 2_000] {
        let mut rng = StdRng::seed_from_u64(7);
        let vectors: Vec<SparseVector> = (0..n_users)
            .map(|_| random_vector(&mut rng, 2_000))
            .collect();
        let index = CandidateIndex::build(&vectors, DIM as usize);
        let query = random_vector(&mut rng, 2_000);
        group.bench_with_input(BenchmarkId::from_parameter(n_users), &n_users, |b, _| {
            b.iter(|| black_box(index.top_k(&query, 10)))
        });
    }
    group.finish();
}

fn bench_index_vs_dense(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let vectors: Vec<SparseVector> = (0..500).map(|_| random_vector(&mut rng, 2_000)).collect();
    let query = random_vector(&mut rng, 2_000);
    let index = CandidateIndex::build(&vectors, DIM as usize);
    c.bench_function("scoring_inverted_index_500", |b| {
        b.iter(|| black_box(index.scores(&query)))
    });
    c.bench_function("scoring_pairwise_dense_500", |b| {
        b.iter(|| {
            let scores: Vec<f64> = vectors.iter().map(|v| query.dot(v)).collect();
            black_box(scores)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sparse_ops, bench_index_scoring, bench_index_vs_dense
}
criterion_main!(benches);
