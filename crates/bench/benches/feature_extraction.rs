//! Benchmarks of the feature-extraction layer: tokenize+lemmatize,
//! n-gram counting, space fitting, and vectorization.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use darklight_features::pipeline::{CountedDoc, FeatureConfig, FeatureExtractor, PreparedDoc};
use darklight_synth::style::StyleGenome;
use darklight_synth::textgen::generate_long_message;
use darklight_text::lemma::Lemmatizer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn sample_texts(n: usize, words: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(11);
    (0..n)
        .map(|_| {
            let genome = StyleGenome::sample(&mut rng, 1.0);
            generate_long_message(&mut rng, &genome, 2, words)
        })
        .collect()
}

fn bench_prepare(c: &mut Criterion) {
    let texts = sample_texts(8, 1_500);
    let lemmatizer = Lemmatizer::new();
    c.bench_function("prepare_doc_1500w", |b| {
        b.iter(|| {
            for t in &texts {
                black_box(PreparedDoc::prepare(t, Some(&lemmatizer)));
            }
        })
    });
}

fn bench_counting(c: &mut Criterion) {
    let texts = sample_texts(8, 1_500);
    let lemmatizer = Lemmatizer::new();
    let docs: Vec<PreparedDoc> = texts
        .iter()
        .map(|t| PreparedDoc::prepare(t, Some(&lemmatizer)))
        .collect();
    c.bench_function("count_ngrams_1500w", |b| {
        b.iter(|| {
            for d in &docs {
                black_box(CountedDoc::from_prepared(d, 3, 5));
            }
        })
    });
}

fn bench_fit_and_vectorize(c: &mut Criterion) {
    let texts = sample_texts(64, 1_500);
    let lemmatizer = Lemmatizer::new();
    let docs: Vec<CountedDoc> = texts
        .iter()
        .map(|t| CountedDoc::from_prepared(&PreparedDoc::prepare(t, Some(&lemmatizer)), 3, 5))
        .collect();
    c.bench_function("fit_space_64_users", |b| {
        b.iter(|| {
            black_box(FeatureExtractor::new(FeatureConfig::final_stage()).fit_counted(docs.iter()))
        })
    });
    let space = FeatureExtractor::new(FeatureConfig::final_stage()).fit_counted(docs.iter());
    c.bench_function("vectorize_counted", |b| {
        b.iter_batched(
            || docs[0].clone(),
            |d| black_box(space.vectorize_counted(&d, None)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_prepare, bench_counting, bench_fit_and_vectorize
}
criterion_main!(benches);
