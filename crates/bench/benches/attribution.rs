//! Benchmarks of the attribution pipeline: stage-1 reduction, stage-2
//! rescoring, the full two-stage run, and the batched variant (§IV-J).

use criterion::{criterion_group, criterion_main, Criterion};
use darklight_bench::{prepare_world, World};
use darklight_core::batch::{run_batched, BatchConfig};
use darklight_core::twostage::{TwoStage, TwoStageConfig};
use darklight_synth::scenario::ScenarioConfig;
use std::hint::black_box;
use std::sync::OnceLock;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| prepare_world(&ScenarioConfig::small()))
}

fn engine() -> TwoStage {
    TwoStage::new(TwoStageConfig {
        threads: 2,
        ..TwoStageConfig::default()
    })
}

fn bench_reduce(c: &mut Criterion) {
    let w = world();
    let e = engine();
    c.bench_function("stage1_reduce_small", |b| {
        b.iter(|| black_box(e.reduce(&w.reddit.originals, &w.reddit.alter_egos)))
    });
}

fn bench_full_run(c: &mut Criterion) {
    let w = world();
    let e = engine();
    c.bench_function("two_stage_full_small", |b| {
        b.iter(|| black_box(e.run(&w.reddit.originals, &w.reddit.alter_egos)))
    });
}

fn bench_without_reduction(c: &mut Criterion) {
    let w = world();
    let e = engine();
    c.bench_function("single_stage_small", |b| {
        b.iter(|| black_box(e.run_without_reduction(&w.reddit.originals, &w.reddit.alter_egos)))
    });
}

fn bench_batched(c: &mut Criterion) {
    let w = world();
    let e = engine();
    c.bench_function("batched_b20_small", |b| {
        b.iter(|| {
            black_box(
                run_batched(
                    &e,
                    &BatchConfig { batch_size: 20 },
                    &w.reddit.originals,
                    &w.reddit.alter_egos,
                )
                .expect("valid batch config"),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_reduce, bench_full_run, bench_without_reduction, bench_batched
}
criterion_main!(benches);
