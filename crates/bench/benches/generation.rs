//! Benchmarks of the corpus generator: message sampling, timestamp
//! sampling, and whole-scenario builds.

use criterion::{criterion_group, criterion_main, Criterion};
use darklight_synth::scenario::{ScenarioBuilder, ScenarioConfig};
use darklight_synth::style::StyleGenome;
use darklight_synth::temporal::TemporalGenome;
use darklight_synth::textgen::generate_message;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_message_generation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let genome = StyleGenome::sample(&mut rng, 1.0);
    c.bench_function("generate_100_messages", |b| {
        b.iter(|| {
            for _ in 0..100 {
                black_box(generate_message(&mut rng, &genome, 2));
            }
        })
    });
}

fn bench_timestamp_sampling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let genome = TemporalGenome::sample(&mut rng);
    c.bench_function("sample_1000_timestamps", |b| {
        b.iter(|| black_box(genome.sample_timestamps(&mut rng, 1_000)))
    });
}

fn bench_scenario_build(c: &mut Criterion) {
    let config = ScenarioConfig {
        reddit_users: 20,
        tmg_users: 8,
        dm_users: 6,
        cross_tmg_dm: 2,
        cross_reddit_tmg: 2,
        cross_reddit_dm: 2,
        thin_frac: 0.5,
        ..ScenarioConfig::small()
    };
    c.bench_function("scenario_build_tiny", |b| {
        b.iter(|| black_box(ScenarioBuilder::new(config.clone()).build()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_message_generation, bench_timestamp_sampling, bench_scenario_build
}
criterion_main!(benches);
