//! The §IV-F wall-clock race: Standard baseline vs Koppel baseline vs our
//! method on the same known/unknown sets. The paper reports 155 s /
//! 2,501 s / 1,541 s on its hardware; the *ordering* (Standard fastest,
//! Koppel slowest) is the reproducible claim.

use criterion::{criterion_group, criterion_main, Criterion};
use darklight_bench::{prepare_world, World};
use darklight_core::baseline::{KoppelBaseline, StandardBaseline};
use darklight_core::twostage::{TwoStage, TwoStageConfig};
use darklight_synth::scenario::ScenarioConfig;
use std::hint::black_box;
use std::sync::OnceLock;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| prepare_world(&ScenarioConfig::small()))
}

fn bench_standard(c: &mut Criterion) {
    let w = world();
    c.bench_function("baseline_standard_small", |b| {
        b.iter(|| {
            black_box(StandardBaseline::default().run(&w.reddit.originals, &w.reddit.alter_egos))
        })
    });
}

fn bench_koppel(c: &mut Criterion) {
    let w = world();
    // 10 iterations (not 100) keeps the bench tractable; scale linearly.
    let koppel = KoppelBaseline {
        iterations: 10,
        ..KoppelBaseline::default()
    };
    c.bench_function("baseline_koppel_10iter_small", |b| {
        b.iter(|| black_box(koppel.run(&w.reddit.originals, &w.reddit.alter_egos)))
    });
}

fn bench_ours(c: &mut Criterion) {
    let w = world();
    let engine = TwoStage::new(TwoStageConfig {
        threads: 2,
        ..TwoStageConfig::default()
    });
    c.bench_function("ours_two_stage_small", |b| {
        b.iter(|| black_box(engine.run(&w.reddit.originals, &w.reddit.alter_egos)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_standard, bench_koppel, bench_ours
}
criterion_main!(benches);
