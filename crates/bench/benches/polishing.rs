//! Benchmarks of the corpus-cleaning layer: the twelve polishing steps,
//! language detection, and the refinement/alter-ego machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use darklight_activity::profile::{ProfileBuilder, ProfilePolicy};
use darklight_corpus::polish::{PolishConfig, Polisher};
use darklight_corpus::refine::{build_alter_egos, refine, AlterEgoConfig, RefineConfig};
use darklight_synth::scenario::{ScenarioBuilder, ScenarioConfig};
use darklight_text::langdetect::LanguageDetector;
use std::hint::black_box;
use std::sync::OnceLock;

fn raw_tmg() -> &'static darklight_corpus::model::Corpus {
    static CORPUS: OnceLock<darklight_corpus::model::Corpus> = OnceLock::new();
    CORPUS.get_or_init(|| ScenarioBuilder::new(ScenarioConfig::small()).build().tmg)
}

fn bench_polish(c: &mut Criterion) {
    let corpus = raw_tmg();
    let polisher = Polisher::new(PolishConfig::default());
    c.bench_function("polish_tmg_small", |b| {
        b.iter(|| black_box(polisher.polish(corpus)))
    });
}

fn bench_langdetect(c: &mut Criterion) {
    let det = LanguageDetector::new();
    let texts = [
        "this is a perfectly ordinary english sentence about shipping and vendors",
        "la semana pasada compré algo parecido y llegó muy rápido a mi casa",
        "ich habe gestern etwas ähnliches bestellt und es kam sehr schnell an",
    ];
    c.bench_function("langdetect_3_messages", |b| {
        b.iter(|| {
            for t in texts {
                black_box(det.detect(t));
            }
        })
    });
}

fn bench_refine_and_split(c: &mut Criterion) {
    let corpus = raw_tmg();
    let polished = Polisher::new(PolishConfig::default()).polish(corpus).0;
    let profiles = ProfileBuilder::new(ProfilePolicy::default());
    c.bench_function("refine_tmg_small", |b| {
        b.iter(|| black_box(refine(&polished, RefineConfig::default(), &profiles)))
    });
    let refined = refine(&polished, RefineConfig::default(), &profiles);
    c.bench_function("alter_ego_split_tmg_small", |b| {
        b.iter(|| {
            black_box(build_alter_egos(
                &refined,
                &AlterEgoConfig::default(),
                &profiles,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_polish, bench_langdetect, bench_refine_and_split
}
criterion_main!(benches);
