//! Corpus statistics: the words-per-user CDF of Fig. 1 and the topic
//! composition of Table I.

use crate::model::Corpus;
use std::collections::BTreeMap;

/// A point of an empirical CDF: `fraction` of users have at most `value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfPoint {
    /// The x value (e.g. words per user).
    pub value: u64,
    /// Cumulative fraction of users at or below `value`, in `[0, 1]`.
    pub fraction: f64,
}

/// The empirical CDF of words-per-user (Fig. 1 of the paper). Returns one
/// point per distinct user word count, in increasing order; empty corpus
/// gives an empty CDF.
pub fn words_per_user_cdf(corpus: &Corpus) -> Vec<CdfPoint> {
    let mut counts: Vec<u64> = corpus
        .users
        .iter()
        .map(|u| u.total_words() as u64)
        .collect();
    counts.sort_unstable();
    cdf_of_sorted(&counts)
}

/// The empirical CDF of an arbitrary pre-sorted sample.
pub fn cdf_of_sorted(sorted: &[u64]) -> Vec<CdfPoint> {
    let n = sorted.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out: Vec<CdfPoint> = Vec::new();
    for (i, &v) in sorted.iter().enumerate() {
        let frac = (i + 1) as f64 / n as f64;
        match out.last_mut() {
            Some(last) if last.value == v => last.fraction = frac,
            _ => out.push(CdfPoint {
                value: v,
                fraction: frac,
            }),
        }
    }
    out
}

/// Evaluates a CDF at `x` (fraction of users with value ≤ x).
pub fn cdf_at(cdf: &[CdfPoint], x: u64) -> f64 {
    match cdf.binary_search_by_key(&x, |p| p.value) {
        Ok(i) => cdf[i].fraction,
        Err(0) => 0.0,
        Err(i) => cdf[i - 1].fraction,
    }
}

/// Per-topic composition of a corpus (Table I of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct TopicStat {
    /// Topic label.
    pub topic: String,
    /// Distinct sub-communities (subreddits) carrying the topic.
    pub communities: usize,
    /// Number of messages in the topic.
    pub messages: usize,
    /// Share of all messages, in `[0, 1]`.
    pub message_share: f64,
    /// Distinct users who posted in the topic.
    pub users: usize,
    /// Share of users who posted in the topic (a user counts once per
    /// topic they touch — the paper's "subscriptions").
    pub user_share: f64,
    /// The single sub-community with the most messages.
    pub top_community: String,
    /// Messages in that top sub-community.
    pub top_community_messages: usize,
}

/// Groups posts by topic via `topic_of` (mapping a sub-community name to a
/// topic label; return `None` to skip a post) and computes Table I-style
/// statistics, sorted by topic label.
pub fn topic_composition(
    corpus: &Corpus,
    mut topic_of: impl FnMut(&str) -> Option<String>,
) -> Vec<TopicStat> {
    struct Acc {
        communities: BTreeMap<String, usize>,
        messages: usize,
        users: std::collections::HashSet<usize>,
    }
    let mut acc: BTreeMap<String, Acc> = BTreeMap::new();
    let mut total_messages = 0usize;
    for (uid, user) in corpus.users.iter().enumerate() {
        for post in &user.posts {
            let Some(topic) = topic_of(&post.topic) else {
                continue;
            };
            total_messages += 1;
            let a = acc.entry(topic).or_insert_with(|| Acc {
                communities: BTreeMap::new(),
                messages: 0,
                users: std::collections::HashSet::new(),
            });
            *a.communities.entry(post.topic.clone()).or_insert(0) += 1;
            a.messages += 1;
            a.users.insert(uid);
        }
    }
    let total_users = corpus.len().max(1);
    acc.into_iter()
        .map(|(topic, a)| {
            let (top_community, top_community_messages) = a
                .communities
                .iter()
                .max_by_key(|&(name, &count)| (count, std::cmp::Reverse(name.clone())))
                .map(|(n, &c)| (n.clone(), c))
                .unwrap_or_default();
            TopicStat {
                topic,
                communities: a.communities.len(),
                messages: a.messages,
                message_share: a.messages as f64 / total_messages.max(1) as f64,
                users: a.users.len(),
                user_share: a.users.len() as f64 / total_users as f64,
                top_community,
                top_community_messages,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Post, User};

    fn corpus() -> Corpus {
        let mut c = Corpus::new("t");
        let mut u1 = User::new("a", None);
        u1.posts.push(Post::with_topic("one two three", 1, "r1"));
        u1.posts.push(Post::with_topic("four five", 2, "r2"));
        let mut u2 = User::new("b", None);
        u2.posts.push(Post::with_topic("six", 3, "r1"));
        c.users.push(u1);
        c.users.push(u2);
        c
    }

    #[test]
    fn cdf_shape() {
        let c = corpus();
        let cdf = words_per_user_cdf(&c);
        // User word counts: a=5, b=1.
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf[0].value, 1);
        assert!((cdf[0].fraction - 0.5).abs() < 1e-12);
        assert_eq!(cdf[1].value, 5);
        assert!((cdf[1].fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_evaluation() {
        let cdf = cdf_of_sorted(&[10, 10, 20, 40]);
        assert_eq!(cdf_at(&cdf, 5), 0.0);
        assert!((cdf_at(&cdf, 10) - 0.5).abs() < 1e-12);
        assert!((cdf_at(&cdf, 25) - 0.75).abs() < 1e-12);
        assert!((cdf_at(&cdf, 100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_duplicates_merged() {
        let cdf = cdf_of_sorted(&[3, 3, 3]);
        assert_eq!(cdf.len(), 1);
        assert!((cdf[0].fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf() {
        assert!(cdf_of_sorted(&[]).is_empty());
        assert!(words_per_user_cdf(&Corpus::new("e")).is_empty());
    }

    #[test]
    fn topic_composition_aggregates() {
        let c = corpus();
        let stats = topic_composition(&c, |community| {
            Some(if community == "r2" { "other" } else { "drugs" }.to_string())
        });
        assert_eq!(stats.len(), 2);
        let drugs = stats.iter().find(|s| s.topic == "drugs").unwrap();
        assert_eq!(drugs.communities, 1);
        assert_eq!(drugs.messages, 2);
        assert_eq!(drugs.users, 2);
        assert_eq!(drugs.top_community, "r1");
        assert_eq!(drugs.top_community_messages, 2);
        assert!((drugs.message_share - 2.0 / 3.0).abs() < 1e-12);
        assert!((drugs.user_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn topic_mapping_can_skip() {
        let c = corpus();
        let stats = topic_composition(&c, |community| {
            (community == "r1").then(|| "only".to_string())
        });
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].messages, 2);
        assert!((stats[0].message_share - 1.0).abs() < 1e-12);
    }
}

/// A rank-frequency point of the corpus vocabulary (Zipf plot data).
#[derive(Debug, Clone, PartialEq)]
pub struct RankFrequency {
    /// 1-based frequency rank.
    pub rank: usize,
    /// The word.
    pub word: String,
    /// Total occurrences across the corpus.
    pub count: u64,
}

/// Rank-frequency table of the corpus's word unigrams, most frequent
/// first, truncated to `top`. Natural-language corpora follow Zipf's law
/// (count ∝ 1/rank); the synthetic generator is validated against this
/// shape.
pub fn rank_frequency(corpus: &Corpus, top: usize) -> Vec<RankFrequency> {
    let mut counts: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    for user in &corpus.users {
        for post in &user.posts {
            for w in darklight_text::token::words(&post.text) {
                *counts.entry(w).or_insert(0) += 1;
            }
        }
    }
    let mut items: Vec<(String, u64)> = counts.into_iter().collect();
    items.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    items.truncate(top);
    items
        .into_iter()
        .enumerate()
        .map(|(i, (word, count))| RankFrequency {
            rank: i + 1,
            word,
            count,
        })
        .collect()
}

/// Type-token ratio of one user's full text: distinct words / total
/// words. Falls with text length (Heaps' law); useful to spot bots (ratio
/// near zero) and copy-paste spam.
pub fn type_token_ratio(user: &crate::model::User) -> f64 {
    let words = darklight_text::token::words(&user.full_text());
    if words.is_empty() {
        return 0.0;
    }
    let distinct: std::collections::HashSet<&String> = words.iter().collect();
    distinct.len() as f64 / words.len() as f64
}

/// Per-message word-count distribution summary for a corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LengthSummary {
    /// Number of messages measured.
    pub messages: usize,
    /// Mean words per message.
    pub mean: f64,
    /// Median words per message.
    pub median: u64,
    /// 90th percentile.
    pub p90: u64,
    /// Maximum.
    pub max: u64,
}

/// Summarizes message lengths (the basis of the paper's observation that
/// TMG messages are "longer than average and more digressive").
pub fn message_length_summary(corpus: &Corpus) -> Option<LengthSummary> {
    let mut lengths: Vec<u64> = corpus
        .users
        .iter()
        .flat_map(|u| &u.posts)
        .map(|p| darklight_text::token::word_count(&p.text) as u64)
        .collect();
    if lengths.is_empty() {
        return None;
    }
    lengths.sort_unstable();
    let n = lengths.len();
    let sum: u64 = lengths.iter().sum();
    Some(LengthSummary {
        messages: n,
        mean: sum as f64 / n as f64,
        median: lengths[n / 2],
        p90: lengths[(n * 9 / 10).min(n - 1)],
        max: lengths[n - 1],
    })
}

#[cfg(test)]
mod extended_stats_tests {
    use super::*;
    use crate::model::{Post, User};

    fn corpus_with_posts(posts: &[&str]) -> Corpus {
        let mut c = Corpus::new("t");
        let mut u = User::new("u", None);
        for (i, p) in posts.iter().enumerate() {
            u.posts.push(Post::new(*p, i as i64));
        }
        c.users.push(u);
        c
    }

    #[test]
    fn rank_frequency_sorted_and_truncated() {
        let c = corpus_with_posts(&["the the the cat cat dog"]);
        let rf = rank_frequency(&c, 2);
        assert_eq!(rf.len(), 2);
        assert_eq!(rf[0].word, "the");
        assert_eq!(rf[0].count, 3);
        assert_eq!(rf[0].rank, 1);
        assert_eq!(rf[1].word, "cat");
    }

    #[test]
    fn rank_frequency_empty_corpus() {
        assert!(rank_frequency(&Corpus::new("e"), 5).is_empty());
    }

    #[test]
    fn type_token_ratio_values() {
        let mut u = User::new("u", None);
        u.posts.push(Post::new("one two three", 0));
        assert!((type_token_ratio(&u) - 1.0).abs() < 1e-12);
        u.posts.push(Post::new("one one one", 1));
        assert!((type_token_ratio(&u) - 0.5).abs() < 1e-12);
        assert_eq!(type_token_ratio(&User::new("empty", None)), 0.0);
    }

    #[test]
    fn length_summary_statistics() {
        let c = corpus_with_posts(&[
            "one",
            "one two",
            "one two three",
            "one two three four",
            "one two three four five six seven eight nine ten",
        ]);
        let s = message_length_summary(&c).unwrap();
        assert_eq!(s.messages, 5);
        assert_eq!(s.median, 3);
        assert_eq!(s.max, 10);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!(s.p90 >= s.median);
    }

    #[test]
    fn length_summary_empty() {
        assert!(message_length_summary(&Corpus::new("e")).is_none());
    }
}
