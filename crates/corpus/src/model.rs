//! The forum data model.
//!
//! A [`Corpus`] is one forum's worth of users; a [`User`] is an alias with
//! its posts and — for synthetic corpora — ground-truth metadata: the
//! `persona` id tying different aliases of the same (synthetic) person
//! together, and the identity [`Fact`]s the person leaked in their posts.
//! The attribution pipeline never reads the ground-truth fields; they exist
//! so the evaluation layer can score matches exactly the way the authors
//! scored theirs (by inspecting leaked facts, §V-A).

use std::fmt;

/// One forum post.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Post {
    /// The cleaned (or raw) message text.
    pub text: String,
    /// Posting time, unix seconds UTC.
    pub timestamp: i64,
    /// The sub-community the post belongs to (a subreddit on Reddit, a
    /// board/section on the dark-web forums). Empty when unknown.
    pub topic: String,
}

impl Post {
    /// Creates a post with an empty topic.
    pub fn new(text: impl Into<String>, timestamp: i64) -> Post {
        Post {
            text: text.into(),
            timestamp,
            topic: String::new(),
        }
    }

    /// Creates a post within a topic.
    pub fn with_topic(text: impl Into<String>, timestamp: i64, topic: impl Into<String>) -> Post {
        Post {
            text: text.into(),
            timestamp,
            topic: topic.into(),
        }
    }
}

/// The kind of an identity fact a user leaked (§V-A/V-C of the paper:
/// ages, cities, religions, political views, drug habits, vendor
/// complaints, hobbies, devices, self-referenced aliases, reposted links).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum FactKind {
    Age,
    City,
    Country,
    Religion,
    Politics,
    Drug,
    VendorComplaint,
    Hobby,
    Device,
    AliasRef,
    Link,
    Job,
    Language,
}

impl FactKind {
    /// Facts that can hold only one value per person: two different values
    /// of an exclusive kind are *contradictory* (the paper's **False**
    /// evidence: "one match declares to be 20 years old on the Dark Web and
    /// to be 34 on Reddit").
    pub fn is_exclusive(self) -> bool {
        matches!(
            self,
            FactKind::Age
                | FactKind::City
                | FactKind::Country
                | FactKind::Religion
                | FactKind::Politics
        )
    }

    /// Facts distinctive enough that sharing one is strong evidence two
    /// aliases are the same person (the paper's **True** evidence: alias
    /// self-references, unique links, specific vendor complaints).
    pub fn is_strong(self) -> bool {
        matches!(
            self,
            FactKind::AliasRef | FactKind::Link | FactKind::VendorComplaint
        )
    }

    /// Short stable name used in TSV serialization.
    pub fn as_str(self) -> &'static str {
        match self {
            FactKind::Age => "age",
            FactKind::City => "city",
            FactKind::Country => "country",
            FactKind::Religion => "religion",
            FactKind::Politics => "politics",
            FactKind::Drug => "drug",
            FactKind::VendorComplaint => "vendor_complaint",
            FactKind::Hobby => "hobby",
            FactKind::Device => "device",
            FactKind::AliasRef => "alias_ref",
            FactKind::Link => "link",
            FactKind::Job => "job",
            FactKind::Language => "language",
        }
    }

    /// Parses a serialized kind name.
    pub fn parse(s: &str) -> Option<FactKind> {
        Some(match s {
            "age" => FactKind::Age,
            "city" => FactKind::City,
            "country" => FactKind::Country,
            "religion" => FactKind::Religion,
            "politics" => FactKind::Politics,
            "drug" => FactKind::Drug,
            "vendor_complaint" => FactKind::VendorComplaint,
            "hobby" => FactKind::Hobby,
            "device" => FactKind::Device,
            "alias_ref" => FactKind::AliasRef,
            "link" => FactKind::Link,
            "job" => FactKind::Job,
            "language" => FactKind::Language,
            _ => return None,
        })
    }
}

impl fmt::Display for FactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An identity fact a user disclosed somewhere in their posts.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fact {
    /// What kind of fact.
    pub kind: FactKind,
    /// Its value, normalized lowercase (e.g. `"edmonton"`, `"27"`).
    pub value: String,
}

impl Fact {
    /// Creates a fact, lowercasing the value.
    pub fn new(kind: FactKind, value: impl Into<String>) -> Fact {
        Fact {
            kind,
            value: value.into().to_lowercase(),
        }
    }
}

/// One alias on one forum.
#[derive(Debug, Clone, PartialEq)]
pub struct User {
    /// The alias (nickname) as it appears on the forum.
    pub alias: String,
    /// Ground truth: the synthetic persona behind the alias, if any.
    /// Aliases sharing a persona id belong to the same person. `None` for
    /// noise accounts (bots, spam) with no cross-forum identity.
    pub persona: Option<u64>,
    /// The user's posts.
    pub posts: Vec<Post>,
    /// Ground truth: identity facts leaked in this alias's posts.
    pub facts: Vec<Fact>,
}

impl User {
    /// Creates a user with no posts or facts.
    pub fn new(alias: impl Into<String>, persona: Option<u64>) -> User {
        User {
            alias: alias.into(),
            persona,
            posts: Vec::new(),
            facts: Vec::new(),
        }
    }

    /// All post timestamps, in post order.
    pub fn timestamps(&self) -> Vec<i64> {
        self.posts.iter().map(|p| p.timestamp).collect()
    }

    /// Total word-token count across posts.
    pub fn total_words(&self) -> usize {
        self.posts
            .iter()
            .map(|p| darklight_text::token::word_count(&p.text))
            .sum()
    }

    /// Concatenates all post texts, newline-separated, in post order.
    pub fn full_text(&self) -> String {
        let mut out = String::new();
        for (i, p) in self.posts.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&p.text);
        }
        out
    }
}

/// One forum's corpus.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Corpus {
    /// Forum name (`"reddit"`, `"tmg"`, `"dm"`, …).
    pub name: String,
    /// The users.
    pub users: Vec<User>,
}

impl Corpus {
    /// Creates an empty corpus.
    pub fn new(name: impl Into<String>) -> Corpus {
        Corpus {
            name: name.into(),
            users: Vec::new(),
        }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// `true` when there are no users.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Total number of posts across users.
    pub fn total_posts(&self) -> usize {
        self.users.iter().map(|u| u.posts.len()).sum()
    }

    /// Finds a user by alias.
    pub fn user(&self, alias: &str) -> Option<&User> {
        self.users.iter().find(|u| u.alias == alias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_user() -> User {
        let mut u = User::new("acid_queen", Some(7));
        u.posts
            .push(Post::with_topic("first post about stuff", 100, "drugs"));
        u.posts.push(Post::new("second post has five words", 200));
        u.facts.push(Fact::new(FactKind::City, "Miami"));
        u
    }

    #[test]
    fn user_aggregates() {
        let u = sample_user();
        assert_eq!(u.timestamps(), [100, 200]);
        assert_eq!(u.total_words(), 9);
        assert_eq!(
            u.full_text(),
            "first post about stuff\nsecond post has five words"
        );
    }

    #[test]
    fn facts_lowercase_values() {
        let f = Fact::new(FactKind::City, "Edmonton");
        assert_eq!(f.value, "edmonton");
    }

    #[test]
    fn fact_kind_round_trip() {
        for kind in [
            FactKind::Age,
            FactKind::City,
            FactKind::Country,
            FactKind::Religion,
            FactKind::Politics,
            FactKind::Drug,
            FactKind::VendorComplaint,
            FactKind::Hobby,
            FactKind::Device,
            FactKind::AliasRef,
            FactKind::Link,
            FactKind::Job,
            FactKind::Language,
        ] {
            assert_eq!(FactKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(FactKind::parse("nonsense"), None);
    }

    #[test]
    fn exclusive_and_strong_kinds() {
        assert!(FactKind::Age.is_exclusive());
        assert!(!FactKind::Drug.is_exclusive());
        assert!(FactKind::AliasRef.is_strong());
        assert!(!FactKind::Hobby.is_strong());
    }

    #[test]
    fn corpus_lookup() {
        let mut c = Corpus::new("tmg");
        c.users.push(sample_user());
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
        assert_eq!(c.total_posts(), 2);
        assert!(c.user("acid_queen").is_some());
        assert!(c.user("nobody").is_none());
    }
}
