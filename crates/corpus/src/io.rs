//! TSV serialization of corpora.
//!
//! Experiment artifacts (generated corpora, refined datasets) are stored in
//! a simple line-oriented, tab-separated format so they can be inspected
//! with standard tools and diffed across runs. Tabs, newlines, and
//! backslashes inside fields are escaped. The format is versioned by a
//! header line.
//!
//! ```text
//! #darklight-corpus v1 <name>
//! U<TAB><alias><TAB><persona|->
//! F<TAB><kind><TAB><value>          (facts of the last U)
//! P<TAB><timestamp><TAB><topic><TAB><text>   (posts of the last U)
//! ```

use crate::model::{Corpus, Fact, FactKind, Post, User};
use darklight_obs::PipelineMetrics;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors produced while reading the TSV format.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header line is missing or has the wrong version.
    BadHeader(String),
    /// A malformed record line, with its 1-based line number.
    BadRecord {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        reason: String,
    },
    /// Lenient ingestion quarantined more than the configured share of
    /// lines — the input is too dirty to trust, and returning a mostly
    /// empty corpus would make silent total data loss look like success.
    TooManyBadLines {
        /// Lines quarantined.
        quarantined: usize,
        /// Non-empty lines read (header included).
        total: usize,
        /// The configured tolerance (fraction of lines, 0.0–1.0).
        max_bad_ratio: f64,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error reading corpus: {e}"),
            ReadError::BadHeader(h) => write!(f, "bad corpus header: {h:?}"),
            ReadError::BadRecord { line, reason } => {
                write!(f, "bad corpus record at line {line}: {reason}")
            }
            ReadError::TooManyBadLines {
                quarantined,
                total,
                max_bad_ratio,
            } => write!(
                f,
                "quarantined {quarantined} of {total} lines, over the {:.1}% budget — \
                 input too dirty to ingest",
                max_bad_ratio * 100.0
            ),
        }
    }
}

impl Error for ReadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

/// Strips a leading UTF-8 byte-order mark from the header line. Editors
/// (notably on Windows) prepend one invisibly; without this the header
/// prefix match fails and an otherwise clean corpus is rejected. Only the
/// first line of a file can carry a BOM, so callers apply this to the
/// header only — record lines are left untouched.
fn strip_bom(s: &str) -> &str {
    s.strip_prefix('\u{feff}').unwrap_or(s)
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Writes a corpus in the TSV format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_corpus<W: Write>(corpus: &Corpus, mut w: W) -> std::io::Result<()> {
    writeln!(w, "#darklight-corpus v1 {}", escape(&corpus.name))?;
    for user in &corpus.users {
        let persona = match user.persona {
            Some(p) => p.to_string(),
            None => "-".to_string(),
        };
        writeln!(w, "U\t{}\t{}", escape(&user.alias), persona)?;
        for fact in &user.facts {
            writeln!(w, "F\t{}\t{}", fact.kind.as_str(), escape(&fact.value))?;
        }
        for post in &user.posts {
            writeln!(
                w,
                "P\t{}\t{}\t{}",
                post.timestamp,
                escape(&post.topic),
                escape(&post.text)
            )?;
        }
    }
    Ok(())
}

/// Category of a line rejected during ingestion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssueKind {
    /// The header line is missing or has the wrong version.
    BadHeader,
    /// A record line with an unknown type tag or missing fields.
    BadRecord,
    /// An `F`/`P` record with no user to attach to (none seen yet, or the
    /// preceding `U` line was itself quarantined).
    OrphanRecord,
    /// A record whose shape is right but a field does not parse (persona
    /// or timestamp not an integer, unknown fact kind).
    UnparseableField,
}

impl IssueKind {
    /// Stable lowercase name, used in reports and metric suffixes.
    pub fn as_str(self) -> &'static str {
        match self {
            IssueKind::BadHeader => "bad_header",
            IssueKind::BadRecord => "bad_record",
            IssueKind::OrphanRecord => "orphan_record",
            IssueKind::UnparseableField => "unparseable_field",
        }
    }
}

/// One quarantined line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestIssue {
    /// 1-based line number in the input.
    pub line: usize,
    /// Issue category.
    pub kind: IssueKind,
    /// Explanation of the problem.
    pub reason: String,
}

impl fmt::Display for IngestIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}: [{}] {}",
            self.line,
            self.kind.as_str(),
            self.reason
        )
    }
}

/// What lenient ingestion kept and what it quarantined.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Every quarantined line, in input order.
    pub issues: Vec<IngestIssue>,
    /// Non-empty lines read, header included.
    pub lines_total: usize,
    /// Record lines that made it into the corpus.
    pub records_kept: usize,
}

impl IngestReport {
    /// Number of quarantined lines.
    pub fn quarantined(&self) -> usize {
        self.issues.len()
    }

    /// Number of quarantined lines of one category.
    pub fn count(&self, kind: IssueKind) -> usize {
        self.issues.iter().filter(|i| i.kind == kind).count()
    }

    /// `true` when nothing was quarantined.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// Quarantined share of all non-empty lines (0.0 for empty input).
    pub fn bad_ratio(&self) -> f64 {
        if self.lines_total == 0 {
            0.0
        } else {
            self.quarantined() as f64 / self.lines_total as f64
        }
    }
}

/// Tolerance settings for [`read_corpus_lenient`].
#[derive(Debug, Clone, PartialEq)]
pub struct LenientConfig {
    /// Fail with [`ReadError::TooManyBadLines`] when more than this
    /// fraction of non-empty lines is quarantined (default 0.5). `1.0`
    /// never fails on dirty data; `0.0` quarantines nothing silently —
    /// any bad line over the budget aborts, like strict mode with a
    /// better report.
    pub max_bad_ratio: f64,
    /// Quarantine counters are recorded here (`ingest.*`); disabled by
    /// default.
    pub metrics: PipelineMetrics,
}

impl Default for LenientConfig {
    fn default() -> LenientConfig {
        LenientConfig {
            max_bad_ratio: 0.5,
            metrics: PipelineMetrics::disabled(),
        }
    }
}

/// One successfully parsed record line.
enum RecordLine {
    User(User),
    Fact(Fact),
    Post(Post),
}

/// Parses one non-empty record line. `has_user` says whether an `F`/`P`
/// line has a live user to attach to. Shared by the strict and lenient
/// readers so the two modes cannot drift on what counts as malformed.
fn parse_record_line(line: &str, has_user: bool) -> Result<RecordLine, (IssueKind, String)> {
    let bad = |reason: &str| (IssueKind::BadRecord, reason.to_string());
    let unparseable = |reason: &str| (IssueKind::UnparseableField, reason.to_string());
    let mut fields = line.split('\t');
    match fields.next() {
        Some("U") => {
            let alias = fields.next().ok_or_else(|| bad("missing alias"))?;
            let persona = fields.next().ok_or_else(|| bad("missing persona"))?;
            let persona = if persona == "-" {
                None
            } else {
                Some(
                    persona
                        .parse::<u64>()
                        .map_err(|_| unparseable("persona is not an integer"))?,
                )
            };
            Ok(RecordLine::User(User::new(unescape(alias), persona)))
        }
        Some("F") => {
            if !has_user {
                return Err((IssueKind::OrphanRecord, "fact before any user".to_string()));
            }
            let kind = fields.next().ok_or_else(|| bad("missing fact kind"))?;
            let kind = FactKind::parse(kind).ok_or_else(|| unparseable("unknown fact kind"))?;
            let value = fields.next().ok_or_else(|| bad("missing fact value"))?;
            Ok(RecordLine::Fact(Fact::new(kind, unescape(value))))
        }
        Some("P") => {
            if !has_user {
                return Err((IssueKind::OrphanRecord, "post before any user".to_string()));
            }
            let ts = fields
                .next()
                .ok_or_else(|| bad("missing timestamp"))?
                .parse::<i64>()
                .map_err(|_| unparseable("timestamp is not an integer"))?;
            let topic = fields.next().ok_or_else(|| bad("missing topic"))?;
            let text = fields.next().ok_or_else(|| bad("missing text"))?;
            Ok(RecordLine::Post(Post::with_topic(
                unescape(text),
                ts,
                unescape(topic),
            )))
        }
        Some(other) => Err(bad(&format!("unknown record type {other:?}"))),
        None => unreachable!("split always yields at least one item"),
    }
}

/// Reads a corpus from the TSV format, aborting on the first problem.
///
/// # Errors
///
/// Returns [`ReadError`] on I/O failure, a bad header, or malformed record
/// lines.
pub fn read_corpus<R: BufRead>(r: R) -> Result<Corpus, ReadError> {
    let mut lines = r.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ReadError::BadHeader("<empty input>".into()))?;
    let header = header?;
    let name = strip_bom(&header)
        .strip_prefix("#darklight-corpus v1 ")
        .ok_or_else(|| ReadError::BadHeader(header.clone()))?;
    let mut corpus = Corpus::new(unescape(name));
    for (idx, line) in lines {
        let line = line?;
        // `idx` counts from the header at 0, so the 1-based file line of
        // this record is `idx + 1` — with no further increment (a record
        // on file line 2 is reported as line 2, pinned by a regression
        // test).
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        match parse_record_line(&line, !corpus.users.is_empty()) {
            Ok(RecordLine::User(user)) => corpus.users.push(user),
            Ok(RecordLine::Fact(fact)) => {
                corpus
                    .users
                    .last_mut()
                    .expect("has_user checked")
                    .facts
                    .push(fact);
            }
            Ok(RecordLine::Post(post)) => {
                corpus
                    .users
                    .last_mut()
                    .expect("has_user checked")
                    .posts
                    .push(post);
            }
            Err((_, reason)) => {
                return Err(ReadError::BadRecord {
                    line: lineno,
                    reason,
                })
            }
        }
    }
    Ok(corpus)
}

/// Reads a corpus from the TSV format, quarantining malformed lines
/// instead of aborting.
///
/// Every rejected line lands in the returned [`IngestReport`] with its
/// 1-based line number and an [`IssueKind`]; well-formed lines are kept.
/// A bad or missing header is itself quarantined (the corpus is named
/// `<unnamed>` and line 1 is retried as a record line). `F`/`P` lines
/// following a *quarantined* `U` line are quarantined as orphans rather
/// than mis-attached to the previous user. Quarantine activity is
/// recorded in `config.metrics` under `ingest.*`.
///
/// # Errors
///
/// Returns [`ReadError::TooManyBadLines`] when the quarantined share
/// exceeds `config.max_bad_ratio` — silent near-total data loss must not
/// look like a clean load. I/O failures mid-stream are quarantined as a
/// truncated tail (everything read so far is kept), because a scrape cut
/// off mid-record is exactly the dirty input this mode exists for.
pub fn read_corpus_lenient<R: BufRead>(
    r: R,
    config: &LenientConfig,
) -> Result<(Corpus, IngestReport), ReadError> {
    let mut report = IngestReport::default();
    let mut corpus = Corpus::new("<unnamed>");
    // `true` once a U line has been accepted; set back to false when a U
    // line is quarantined so its F/P lines orphan instead of attaching to
    // the wrong user.
    let mut last_user_ok = false;
    let mut lines = r.lines().enumerate();
    let mut pending_first: Option<(usize, String)> = None;
    match lines.next() {
        None => report.issues.push(IngestIssue {
            line: 1,
            kind: IssueKind::BadHeader,
            reason: "empty input".to_string(),
        }),
        Some((_, Err(e))) => report.issues.push(IngestIssue {
            line: 1,
            kind: IssueKind::BadHeader,
            reason: format!("i/o error: {e}"),
        }),
        Some((_, Ok(header))) => {
            report.lines_total += 1;
            match strip_bom(&header).strip_prefix("#darklight-corpus v1 ") {
                Some(name) => corpus.name = unescape(name),
                None => {
                    report.issues.push(IngestIssue {
                        line: 1,
                        kind: IssueKind::BadHeader,
                        reason: format!("bad corpus header: {header:?}"),
                    });
                    // The file may simply lack a header; retry line 1 as a
                    // record below.
                    pending_first = Some((1, header));
                }
            }
        }
    }
    let first = pending_first.into_iter().map(|(n, l)| (n, Ok(l)));
    for (lineno, line) in first.chain(lines.map(|(idx, l)| (idx + 1, l))) {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                // Truncated / unreadable tail: keep what we have.
                report.issues.push(IngestIssue {
                    line: lineno,
                    kind: IssueKind::BadRecord,
                    reason: format!("i/o error, input truncated here: {e}"),
                });
                break;
            }
        };
        if line.is_empty() {
            continue;
        }
        report.lines_total += 1;
        match parse_record_line(&line, last_user_ok) {
            Ok(RecordLine::User(user)) => {
                corpus.users.push(user);
                last_user_ok = true;
                report.records_kept += 1;
            }
            Ok(RecordLine::Fact(fact)) => {
                corpus
                    .users
                    .last_mut()
                    .expect("last_user_ok")
                    .facts
                    .push(fact);
                report.records_kept += 1;
            }
            Ok(RecordLine::Post(post)) => {
                corpus
                    .users
                    .last_mut()
                    .expect("last_user_ok")
                    .posts
                    .push(post);
                report.records_kept += 1;
            }
            Err((kind, reason)) => {
                // A quarantined U line must not leave its F/P lines
                // attaching to the previous user.
                if line == "U" || line.starts_with("U\t") {
                    last_user_ok = false;
                }
                report.issues.push(IngestIssue {
                    line: lineno,
                    kind,
                    reason,
                });
            }
        }
    }
    record_ingest_metrics(&config.metrics, &report);
    if report.bad_ratio() > config.max_bad_ratio {
        return Err(ReadError::TooManyBadLines {
            quarantined: report.quarantined(),
            total: report.lines_total,
            max_bad_ratio: config.max_bad_ratio,
        });
    }
    Ok((corpus, report))
}

/// Flushes one ingest run's quarantine counts into `metrics`.
fn record_ingest_metrics(metrics: &PipelineMetrics, report: &IngestReport) {
    if !metrics.is_enabled() {
        return;
    }
    metrics
        .counter("ingest.lines_total")
        .add(report.lines_total as u64);
    metrics
        .counter("ingest.records_kept")
        .add(report.records_kept as u64);
    metrics
        .counter("ingest.quarantined_lines")
        .add(report.quarantined() as u64);
    for kind in [
        IssueKind::BadHeader,
        IssueKind::BadRecord,
        IssueKind::OrphanRecord,
        IssueKind::UnparseableField,
    ] {
        let n = report.count(kind) as u64;
        if n > 0 {
            metrics
                // audit:allow(metric-name-registry) -- suffix drawn from the closed IssueKind enum; every expansion is listed in the registry
                .counter(&format!("ingest.quarantined.{}", kind.as_str()))
                .add(n);
        }
    }
}

/// Writes `corpus` to a file path.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_corpus(corpus: &Corpus, path: &std::path::Path) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_corpus(corpus, std::io::BufWriter::new(f))
}

/// Reads a corpus from a file path.
///
/// # Errors
///
/// Returns [`ReadError`] on any I/O or format problem.
pub fn load_corpus(path: &std::path::Path) -> Result<Corpus, ReadError> {
    let f = std::fs::File::open(path)?;
    read_corpus(std::io::BufReader::new(f))
}

/// Reads a corpus from a file path leniently; see [`read_corpus_lenient`].
///
/// # Errors
///
/// Returns [`ReadError::Io`] when the file cannot be opened, and
/// [`ReadError::TooManyBadLines`] when the quarantine budget is blown.
pub fn load_corpus_lenient(
    path: &std::path::Path,
    config: &LenientConfig,
) -> Result<(Corpus, IngestReport), ReadError> {
    let f = std::fs::File::open(path)?;
    read_corpus_lenient(std::io::BufReader::new(f), config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Corpus {
        let mut c = Corpus::new("dark web\tforum");
        let mut u = User::new("alias\twith\ttabs", Some(42));
        u.facts.push(Fact::new(FactKind::City, "miami"));
        u.facts.push(Fact::new(FactKind::AliasRef, "other_alias"));
        u.posts.push(Post::with_topic(
            "line one\nline two",
            1_500_000_000,
            "drugs",
        ));
        u.posts
            .push(Post::new("back\\slash and \r carriage", 1_500_000_100));
        c.users.push(u);
        c.users.push(User::new("empty_user", None));
        c
    }

    #[test]
    fn round_trip() {
        let c = sample();
        let mut buf = Vec::new();
        write_corpus(&c, &mut buf).unwrap();
        let back = read_corpus(buf.as_slice()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn escaping_keeps_one_record_per_line() {
        let c = sample();
        let mut buf = Vec::new();
        write_corpus(&c, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // 1 header + 2 U + 2 F + 2 P lines.
        assert_eq!(text.lines().count(), 7);
        for line in text.lines().skip(1) {
            assert!(line.starts_with(['U', 'F', 'P']));
        }
    }

    #[test]
    fn bad_header_rejected() {
        let err = read_corpus("not a header\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadError::BadHeader(_)));
        let err = read_corpus("".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadError::BadHeader(_)));
    }

    #[test]
    fn orphan_records_rejected() {
        let data = "#darklight-corpus v1 x\nP\t1\ttopic\ttext\n";
        let err = read_corpus(data.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("post before any user"));
    }

    #[test]
    fn malformed_fields_rejected() {
        let data = "#darklight-corpus v1 x\nU\ta\tnot_a_number\n";
        let err = read_corpus(data.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("persona"));
        let data = "#darklight-corpus v1 x\nU\ta\t-\nF\tbogus_kind\tv\n";
        let err = read_corpus(data.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown fact kind"));
        let data = "#darklight-corpus v1 x\nZ\tfoo\n";
        let err = read_corpus(data.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown record type"));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("darklight_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.tsv");
        let c = sample();
        save_corpus(&c, &path).unwrap();
        let back = load_corpus(&path).unwrap();
        assert_eq!(back, c);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_lines_tolerated() {
        let data = "#darklight-corpus v1 x\n\nU\ta\t-\n\n";
        let c = read_corpus(data.as_bytes()).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn bad_record_reports_exact_line_number() {
        // Header is line 1; the malformed U record sits on file line 2 and
        // must be reported as line 2, not 3 (regression: the reader used
        // to double-increment the line number).
        let data = "#darklight-corpus v1 x\nU\ta\tnot_a_number\n";
        let err = read_corpus(data.as_bytes()).unwrap_err();
        match err {
            ReadError::BadRecord { line, .. } => assert_eq!(line, 2),
            other => panic!("expected BadRecord, got {other:?}"),
        }
        // With a blank line in between, the bad record moves to line 4.
        let data = "#darklight-corpus v1 x\nU\ta\t-\n\nZ\tbogus\n";
        let err = read_corpus(data.as_bytes()).unwrap_err();
        match err {
            ReadError::BadRecord { line, .. } => assert_eq!(line, 4),
            other => panic!("expected BadRecord, got {other:?}"),
        }
    }

    #[test]
    fn lenient_quarantines_each_taxonomy_kind() {
        // line 1: good header          line 2: orphan post (no user yet)
        // line 3: good user            line 4: unparseable fact kind
        // line 5: unknown record type  line 6: good post
        // line 7: U with bad persona   line 8: post orphaned by line 7
        let data = "#darklight-corpus v1 dirty\n\
                    P\t1\ttopic\tearly\n\
                    U\talice\t7\n\
                    F\tbogus_kind\tv\n\
                    Z\twhat\n\
                    P\t99\tmarket\thello world\n\
                    U\tbob\tNaN\n\
                    P\t100\tmarket\tlost\n";
        let lax = LenientConfig {
            max_bad_ratio: 0.8, // 5 of 8 lines are dirty by design
            ..LenientConfig::default()
        };
        let (corpus, report) =
            read_corpus_lenient(data.as_bytes(), &lax).expect("under the 80% budget");
        assert_eq!(corpus.name, "dirty");
        assert_eq!(corpus.len(), 1);
        assert_eq!(corpus.users[0].alias, "alice");
        assert_eq!(corpus.users[0].posts.len(), 1);
        assert!(corpus.users[0].facts.is_empty());
        assert_eq!(report.lines_total, 8);
        assert_eq!(report.records_kept, 2); // alice + her surviving post
        assert_eq!(report.quarantined(), 5);
        assert_eq!(report.count(IssueKind::OrphanRecord), 2); // lines 2, 8
        assert_eq!(report.count(IssueKind::UnparseableField), 2); // lines 4, 7
        assert_eq!(report.count(IssueKind::BadRecord), 1); // line 5
        assert_eq!(report.count(IssueKind::BadHeader), 0);
        let lines: Vec<usize> = report.issues.iter().map(|i| i.line).collect();
        assert_eq!(lines, vec![2, 4, 5, 7, 8]);
    }

    #[test]
    fn lenient_matches_strict_on_clean_input() {
        let c = sample();
        let mut buf = Vec::new();
        write_corpus(&c, &mut buf).unwrap();
        let (back, report) =
            read_corpus_lenient(buf.as_slice(), &LenientConfig::default()).unwrap();
        assert_eq!(back, c);
        assert!(report.is_clean());
        assert_eq!(report.lines_total, 7);
        assert_eq!(report.records_kept, 6);
    }

    #[test]
    fn lenient_missing_header_retries_line_one_as_record() {
        let data = "U\ta\t-\nP\t5\tt\thello\n";
        let (corpus, report) =
            read_corpus_lenient(data.as_bytes(), &LenientConfig::default()).unwrap();
        assert_eq!(corpus.name, "<unnamed>");
        assert_eq!(corpus.len(), 1);
        assert_eq!(corpus.users[0].posts.len(), 1);
        assert_eq!(report.count(IssueKind::BadHeader), 1);
        assert_eq!(report.issues[0].line, 1);
    }

    #[test]
    fn lenient_budget_blown_fails_loudly() {
        // 1 good header + 1 good user + 4 garbage lines: 4/6 > 50%.
        let data = "#darklight-corpus v1 x\nU\ta\t-\nZ\n?\nZ\tx\n!\n";
        let err = read_corpus_lenient(data.as_bytes(), &LenientConfig::default()).unwrap_err();
        match err {
            ReadError::TooManyBadLines {
                quarantined, total, ..
            } => {
                assert_eq!(quarantined, 4);
                assert_eq!(total, 6);
            }
            other => panic!("expected TooManyBadLines, got {other:?}"),
        }
        // The same input loads under a 100% budget.
        let lax = LenientConfig {
            max_bad_ratio: 1.0,
            ..LenientConfig::default()
        };
        let (corpus, report) = read_corpus_lenient(data.as_bytes(), &lax).unwrap();
        assert_eq!(corpus.len(), 1);
        assert_eq!(report.quarantined(), 4);
    }

    /// A reader that yields `limit` bytes then fails — a scrape truncated
    /// mid-transfer.
    struct FlakyReader<'a> {
        data: &'a [u8],
        pos: usize,
        limit: usize,
    }

    impl std::io::Read for FlakyReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.limit {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection reset mid-record",
                ));
            }
            let n = buf
                .len()
                .min(self.limit - self.pos)
                .min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn lenient_keeps_prefix_of_truncated_stream() {
        let c = sample();
        let mut buf = Vec::new();
        write_corpus(&c, &mut buf).unwrap();
        // Cut the stream in the middle of the last post line.
        let limit = buf.len() - 10;
        let reader = std::io::BufReader::new(FlakyReader {
            data: &buf,
            pos: 0,
            limit,
        });
        let (corpus, report) = read_corpus_lenient(reader, &LenientConfig::default()).unwrap();
        assert_eq!(corpus.name, c.name);
        assert!(!corpus.users.is_empty());
        assert_eq!(
            report
                .issues
                .iter()
                .filter(|i| i.reason.contains("truncated"))
                .count(),
            1
        );
        // Strict mode on the same stream aborts with an I/O error.
        let reader = std::io::BufReader::new(FlakyReader {
            data: &buf,
            pos: 0,
            limit,
        });
        assert!(matches!(read_corpus(reader).unwrap_err(), ReadError::Io(_)));
    }

    #[test]
    fn lenient_records_metrics() {
        use darklight_obs::PipelineMetrics;
        let metrics = PipelineMetrics::enabled();
        let config = LenientConfig {
            max_bad_ratio: 1.0,
            metrics: metrics.clone(),
        };
        let data = "#darklight-corpus v1 x\nU\ta\t-\nZ\tbogus\nP\t1\tt\thello\n";
        let (_, report) = read_corpus_lenient(data.as_bytes(), &config).unwrap();
        assert_eq!(report.quarantined(), 1);
        assert_eq!(metrics.counter("ingest.lines_total").get(), 4);
        assert_eq!(metrics.counter("ingest.records_kept").get(), 2);
        assert_eq!(metrics.counter("ingest.quarantined_lines").get(), 1);
        assert_eq!(metrics.counter("ingest.quarantined.bad_record").get(), 1);
    }

    #[test]
    fn crlf_line_endings_load_like_unix_ones() {
        // Windows-exported TSVs terminate lines with \r\n; `lines()`
        // strips the \r, so both readers must accept the file unchanged
        // and report the same 1-based line numbers as the \n version.
        let data = "#darklight-corpus v1 win\r\nU\talice\t7\r\nP\t99\tmarket\thello\r\n";
        let c = read_corpus(data.as_bytes()).unwrap();
        assert_eq!(c.name, "win");
        assert_eq!(c.len(), 1);
        assert_eq!(c.users[0].posts.len(), 1);
        assert_eq!(c.users[0].posts[0].text, "hello");
        let (lenient, report) =
            read_corpus_lenient(data.as_bytes(), &LenientConfig::default()).unwrap();
        assert_eq!(lenient, c);
        assert!(report.is_clean());
        assert_eq!(report.lines_total, 3);
        assert_eq!(report.records_kept, 2);
    }

    #[test]
    fn crlf_input_reports_unshifted_line_numbers() {
        // The bad record sits on file line 3 in both encodings; CRLF
        // termination must not shift the number in the report.
        let data = "#darklight-corpus v1 win\r\nU\talice\t7\r\nZ\tbogus\r\nP\t99\tt\tkept\r\n";
        let (_, report) = read_corpus_lenient(data.as_bytes(), &LenientConfig::default()).unwrap();
        assert_eq!(report.quarantined(), 1);
        assert_eq!(report.issues[0].line, 3);
        assert_eq!(report.issues[0].kind, IssueKind::BadRecord);
        match read_corpus(data.as_bytes()).unwrap_err() {
            ReadError::BadRecord { line, .. } => assert_eq!(line, 3),
            other => panic!("expected BadRecord, got {other:?}"),
        }
    }

    #[test]
    fn utf8_bom_before_header_is_ignored() {
        // A BOM glued to the header's `#` must not fail the version
        // match or leak into the corpus name, in either reader.
        let data = "\u{feff}#darklight-corpus v1 bommed\nU\talice\t7\nP\t99\tt\thi\n";
        let c = read_corpus(data.as_bytes()).unwrap();
        assert_eq!(c.name, "bommed");
        assert_eq!(c.len(), 1);
        let (lenient, report) =
            read_corpus_lenient(data.as_bytes(), &LenientConfig::default()).unwrap();
        assert_eq!(lenient, c);
        assert!(report.is_clean());
        assert_eq!(report.records_kept, 2);
    }

    #[test]
    fn bom_with_crlf_keeps_exact_line_numbers() {
        // The worst realistic Windows export: BOM + CRLF. Record lines
        // keep their exact 1-based numbers (bad record on line 4).
        let data =
            "\u{feff}#darklight-corpus v1 both\r\nU\talice\t7\r\nP\t1\tt\tok\r\nU\tbob\tNaN\r\n";
        let (corpus, report) =
            read_corpus_lenient(data.as_bytes(), &LenientConfig::default()).unwrap();
        assert_eq!(corpus.name, "both");
        assert_eq!(corpus.len(), 1);
        assert_eq!(report.quarantined(), 1);
        assert_eq!(report.issues[0].line, 4);
        assert_eq!(report.issues[0].kind, IssueKind::UnparseableField);
    }

    #[test]
    fn escape_unescape_inverse() {
        for s in [
            "plain",
            "tab\there",
            "nl\nhere",
            "back\\slash",
            "\r",
            "\\t literal",
        ] {
            assert_eq!(unescape(&escape(s)), s, "{s:?}");
        }
    }
}
