//! TSV serialization of corpora.
//!
//! Experiment artifacts (generated corpora, refined datasets) are stored in
//! a simple line-oriented, tab-separated format so they can be inspected
//! with standard tools and diffed across runs. Tabs, newlines, and
//! backslashes inside fields are escaped. The format is versioned by a
//! header line.
//!
//! ```text
//! #darklight-corpus v1 <name>
//! U<TAB><alias><TAB><persona|->
//! F<TAB><kind><TAB><value>          (facts of the last U)
//! P<TAB><timestamp><TAB><topic><TAB><text>   (posts of the last U)
//! ```

use crate::model::{Corpus, Fact, FactKind, Post, User};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors produced while reading the TSV format.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header line is missing or has the wrong version.
    BadHeader(String),
    /// A malformed record line, with its 1-based line number.
    BadRecord {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        reason: String,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error reading corpus: {e}"),
            ReadError::BadHeader(h) => write!(f, "bad corpus header: {h:?}"),
            ReadError::BadRecord { line, reason } => {
                write!(f, "bad corpus record at line {line}: {reason}")
            }
        }
    }
}

impl Error for ReadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Writes a corpus in the TSV format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_corpus<W: Write>(corpus: &Corpus, mut w: W) -> std::io::Result<()> {
    writeln!(w, "#darklight-corpus v1 {}", escape(&corpus.name))?;
    for user in &corpus.users {
        let persona = match user.persona {
            Some(p) => p.to_string(),
            None => "-".to_string(),
        };
        writeln!(w, "U\t{}\t{}", escape(&user.alias), persona)?;
        for fact in &user.facts {
            writeln!(w, "F\t{}\t{}", fact.kind.as_str(), escape(&fact.value))?;
        }
        for post in &user.posts {
            writeln!(
                w,
                "P\t{}\t{}\t{}",
                post.timestamp,
                escape(&post.topic),
                escape(&post.text)
            )?;
        }
    }
    Ok(())
}

/// Reads a corpus from the TSV format.
///
/// # Errors
///
/// Returns [`ReadError`] on I/O failure, a bad header, or malformed record
/// lines.
pub fn read_corpus<R: BufRead>(r: R) -> Result<Corpus, ReadError> {
    let mut lines = r.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ReadError::BadHeader("<empty input>".into()))?;
    let header = header?;
    let name = header
        .strip_prefix("#darklight-corpus v1 ")
        .ok_or_else(|| ReadError::BadHeader(header.clone()))?;
    let mut corpus = Corpus::new(unescape(name));
    for (idx, line) in lines {
        let line = line?;
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        let bad = |reason: &str| ReadError::BadRecord {
            line: lineno + 1,
            reason: reason.to_string(),
        };
        let mut fields = line.split('\t');
        match fields.next() {
            Some("U") => {
                let alias = fields.next().ok_or_else(|| bad("missing alias"))?;
                let persona = fields.next().ok_or_else(|| bad("missing persona"))?;
                let persona = if persona == "-" {
                    None
                } else {
                    Some(
                        persona
                            .parse::<u64>()
                            .map_err(|_| bad("persona is not an integer"))?,
                    )
                };
                corpus.users.push(User::new(unescape(alias), persona));
            }
            Some("F") => {
                let user = corpus
                    .users
                    .last_mut()
                    .ok_or_else(|| bad("fact before any user"))?;
                let kind = fields.next().ok_or_else(|| bad("missing fact kind"))?;
                let kind = FactKind::parse(kind).ok_or_else(|| bad("unknown fact kind"))?;
                let value = fields.next().ok_or_else(|| bad("missing fact value"))?;
                user.facts.push(Fact::new(kind, unescape(value)));
            }
            Some("P") => {
                let user = corpus
                    .users
                    .last_mut()
                    .ok_or_else(|| bad("post before any user"))?;
                let ts = fields
                    .next()
                    .ok_or_else(|| bad("missing timestamp"))?
                    .parse::<i64>()
                    .map_err(|_| bad("timestamp is not an integer"))?;
                let topic = fields.next().ok_or_else(|| bad("missing topic"))?;
                let text = fields.next().ok_or_else(|| bad("missing text"))?;
                user.posts
                    .push(Post::with_topic(unescape(text), ts, unescape(topic)));
            }
            Some(other) => return Err(bad(&format!("unknown record type {other:?}"))),
            None => unreachable!("split always yields at least one item"),
        }
    }
    Ok(corpus)
}

/// Writes `corpus` to a file path.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_corpus(corpus: &Corpus, path: &std::path::Path) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_corpus(corpus, std::io::BufWriter::new(f))
}

/// Reads a corpus from a file path.
///
/// # Errors
///
/// Returns [`ReadError`] on any I/O or format problem.
pub fn load_corpus(path: &std::path::Path) -> Result<Corpus, ReadError> {
    let f = std::fs::File::open(path)?;
    read_corpus(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Corpus {
        let mut c = Corpus::new("dark web\tforum");
        let mut u = User::new("alias\twith\ttabs", Some(42));
        u.facts.push(Fact::new(FactKind::City, "miami"));
        u.facts.push(Fact::new(FactKind::AliasRef, "other_alias"));
        u.posts.push(Post::with_topic(
            "line one\nline two",
            1_500_000_000,
            "drugs",
        ));
        u.posts
            .push(Post::new("back\\slash and \r carriage", 1_500_000_100));
        c.users.push(u);
        c.users.push(User::new("empty_user", None));
        c
    }

    #[test]
    fn round_trip() {
        let c = sample();
        let mut buf = Vec::new();
        write_corpus(&c, &mut buf).unwrap();
        let back = read_corpus(buf.as_slice()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn escaping_keeps_one_record_per_line() {
        let c = sample();
        let mut buf = Vec::new();
        write_corpus(&c, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // 1 header + 2 U + 2 F + 2 P lines.
        assert_eq!(text.lines().count(), 7);
        for line in text.lines().skip(1) {
            assert!(line.starts_with(['U', 'F', 'P']));
        }
    }

    #[test]
    fn bad_header_rejected() {
        let err = read_corpus("not a header\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadError::BadHeader(_)));
        let err = read_corpus("".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadError::BadHeader(_)));
    }

    #[test]
    fn orphan_records_rejected() {
        let data = "#darklight-corpus v1 x\nP\t1\ttopic\ttext\n";
        let err = read_corpus(data.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("post before any user"));
    }

    #[test]
    fn malformed_fields_rejected() {
        let data = "#darklight-corpus v1 x\nU\ta\tnot_a_number\n";
        let err = read_corpus(data.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("persona"));
        let data = "#darklight-corpus v1 x\nU\ta\t-\nF\tbogus_kind\tv\n";
        let err = read_corpus(data.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown fact kind"));
        let data = "#darklight-corpus v1 x\nZ\tfoo\n";
        let err = read_corpus(data.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown record type"));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("darklight_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.tsv");
        let c = sample();
        save_corpus(&c, &path).unwrap();
        let back = load_corpus(&path).unwrap();
        assert_eq!(back, c);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_lines_tolerated() {
        let data = "#darklight-corpus v1 x\n\nU\ta\t-\n\n";
        let c = read_corpus(data.as_bytes()).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn escape_unescape_inverse() {
        for s in [
            "plain",
            "tab\there",
            "nl\nhere",
            "back\\slash",
            "\r",
            "\\t literal",
        ] {
            assert_eq!(unescape(&escape(s)), s, "{s:?}");
        }
    }
}
