//! The twelve polishing steps (§III-C of the paper).
//!
//! Raw forum data is noisy: bot accounts, crossposted duplicates, spam,
//! quotes, PGP keys, non-English chatter. The paper cleans it with twelve
//! steps before any feature extraction; [`Polisher::polish`] applies them
//! in order and returns both the cleaned corpus and a [`PolishReport`]
//! counting what each step removed:
//!
//!  1. drop accounts whose nickname starts/ends with `bot`;
//!  2. drop duplicate messages (vendors repost showcases; redditors
//!     crosspost);
//!  3. normalize URLs to their hostname;
//!  4. remove emoji;
//!  5. drop messages shorter than 10 words;
//!  6. drop messages whose distinct-word ratio is below 0.5 (spam);
//!  7. keep only English messages;
//!  8. remove quoted text (someone else's words);
//!  9. remove `Edit by <user>` platform tags;
//! 10. replace e-mail addresses with `_mail_`;
//! 11. remove PGP key blocks;
//! 12. drop "words" longer than 34 characters.
//!
//! Text transforms (3, 4, 8–12) run before the filters (5–7) so that word
//! counts and language detection see the text the feature extractor will.

use crate::model::{Corpus, User};
use darklight_text::langdetect::LanguageDetector;
use darklight_text::normalize;
use darklight_text::token::word_count;
use std::collections::HashSet;

/// Configuration of the polishing pipeline. The defaults are the paper's
/// settings; each step can be disabled for ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct PolishConfig {
    /// Step 1: drop `bot`-named accounts.
    pub drop_bots: bool,
    /// Step 2: drop duplicate messages per user.
    pub dedup: bool,
    /// Steps 3, 4, 8–12: apply the text transforms.
    pub transforms: bool,
    /// Step 5: minimum words per message (paper: 10; 0 disables).
    pub min_words: usize,
    /// Step 6: minimum distinct-word ratio (paper: 0.5; 0.0 disables).
    pub min_diversity: f64,
    /// Step 7: keep only messages detected as English.
    pub english_only: bool,
    /// Drop users left with zero posts after polishing.
    pub drop_empty_users: bool,
}

impl Default for PolishConfig {
    fn default() -> PolishConfig {
        PolishConfig {
            drop_bots: true,
            dedup: true,
            transforms: true,
            min_words: 10,
            min_diversity: 0.5,
            english_only: true,
            drop_empty_users: true,
        }
    }
}

impl PolishConfig {
    /// A no-op configuration (every step disabled) — the "polishing off"
    /// ablation baseline.
    pub fn disabled() -> PolishConfig {
        PolishConfig {
            drop_bots: false,
            dedup: false,
            transforms: false,
            min_words: 0,
            min_diversity: 0.0,
            english_only: false,
            drop_empty_users: false,
        }
    }
}

/// What each polishing step removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolishReport {
    /// Accounts dropped by the bot-name rule (step 1).
    pub bot_accounts: usize,
    /// Duplicate messages dropped (step 2).
    pub duplicate_messages: usize,
    /// Messages dropped for having fewer than `min_words` words (step 5).
    pub short_messages: usize,
    /// Messages dropped by the diversity-ratio spam rule (step 6).
    pub low_diversity_messages: usize,
    /// Messages dropped as non-English (step 7).
    pub non_english_messages: usize,
    /// Users dropped because no posts survived.
    pub emptied_users: usize,
    /// Messages surviving all steps.
    pub kept_messages: usize,
}

impl PolishReport {
    /// Total messages dropped by the per-message filters.
    pub fn dropped_messages(&self) -> usize {
        self.duplicate_messages
            + self.short_messages
            + self.low_diversity_messages
            + self.non_english_messages
    }
}

/// Applies the polishing pipeline. Holds the language detector so repeated
/// corpora share the profile tables.
#[derive(Debug)]
pub struct Polisher {
    config: PolishConfig,
    detector: LanguageDetector,
}

impl Polisher {
    /// Creates a polisher with the given configuration.
    pub fn new(config: PolishConfig) -> Polisher {
        Polisher {
            config,
            detector: LanguageDetector::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PolishConfig {
        &self.config
    }

    /// Returns `true` when `alias` triggers the bot-name rule (step 1).
    pub fn is_bot_name(alias: &str) -> bool {
        let lower = alias.to_lowercase();
        lower.starts_with("bot") || lower.ends_with("bot")
    }

    /// Applies all twelve steps, returning the cleaned corpus and the
    /// removal report.
    pub fn polish(&self, corpus: &Corpus) -> (Corpus, PolishReport) {
        let mut report = PolishReport::default();
        let mut out = Corpus::new(corpus.name.clone());
        for user in &corpus.users {
            if self.config.drop_bots && Self::is_bot_name(&user.alias) {
                report.bot_accounts += 1;
                continue;
            }
            let cleaned = self.polish_user(user, &mut report);
            if self.config.drop_empty_users && cleaned.posts.is_empty() {
                report.emptied_users += 1;
                continue;
            }
            out.users.push(cleaned);
        }
        (out, report)
    }

    fn polish_user(&self, user: &User, report: &mut PolishReport) -> User {
        let mut cleaned = User::new(user.alias.clone(), user.persona);
        cleaned.facts = user.facts.clone();
        let mut seen: HashSet<String> = HashSet::new();
        for post in &user.posts {
            // Step 2: duplicates (on the raw text, as the paper does during
            // collection).
            if self.config.dedup {
                let key = post.text.trim().to_lowercase();
                if !seen.insert(key) {
                    report.duplicate_messages += 1;
                    continue;
                }
            }
            let text = if self.config.transforms {
                self.transform_text(&post.text)
            } else {
                post.text.clone()
            };
            // Step 5: length filter.
            if self.config.min_words > 0 && word_count(&text) < self.config.min_words {
                report.short_messages += 1;
                continue;
            }
            // Step 6: diversity filter.
            if self.config.min_diversity > 0.0
                && normalize::diversity_ratio(&text) < self.config.min_diversity
            {
                report.low_diversity_messages += 1;
                continue;
            }
            // Step 7: language filter.
            if self.config.english_only && !self.detector.is_english(&text) {
                report.non_english_messages += 1;
                continue;
            }
            report.kept_messages += 1;
            let mut p = post.clone();
            p.text = text;
            cleaned.posts.push(p);
        }
        cleaned
    }

    /// Steps 3, 4, 8–12 in a sensible composition order: structural
    /// removals first (quotes, PGP, edit tags), then token rewrites (URLs,
    /// e-mails), then character cleanups (emoji, long words).
    fn transform_text(&self, text: &str) -> String {
        let t = normalize::remove_quotes(text);
        let t = normalize::remove_pgp_blocks(&t);
        let t = normalize::remove_edit_tags(&t);
        let t = normalize::normalize_urls_and_emails(&t);
        let t = normalize::strip_emojis(&t);
        normalize::drop_long_words(&t)
    }
}

impl Default for Polisher {
    fn default() -> Polisher {
        Polisher::new(PolishConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Post;

    const GOOD: &str = "this is a perfectly normal english message with plenty of distinct words in it";

    fn corpus_with(posts: Vec<Post>) -> Corpus {
        let mut c = Corpus::new("test");
        let mut u = User::new("normal_user", Some(1));
        u.posts = posts;
        c.users.push(u);
        c
    }

    #[test]
    fn bot_accounts_dropped() {
        let mut c = Corpus::new("test");
        for name in ["botfarm", "tipBot", "legit_user", "robotics_fan"] {
            let mut u = User::new(name, None);
            u.posts.push(Post::new(GOOD, 1));
            c.users.push(u);
        }
        let (out, report) = Polisher::default().polish(&c);
        assert_eq!(report.bot_accounts, 2); // botfarm, tipBot
        let names: Vec<&str> = out.users.iter().map(|u| u.alias.as_str()).collect();
        assert_eq!(names, ["legit_user", "robotics_fan"]);
    }

    #[test]
    fn duplicates_dropped() {
        let c = corpus_with(vec![
            Post::new(GOOD, 1),
            Post::new(GOOD, 2),
            Post::new(format!("{GOOD} "), 3), // trims to the same key
        ]);
        let (out, report) = Polisher::default().polish(&c);
        assert_eq!(report.duplicate_messages, 2);
        assert_eq!(out.users[0].posts.len(), 1);
    }

    #[test]
    fn short_messages_dropped() {
        let c = corpus_with(vec![Post::new("too short", 1), Post::new(GOOD, 2)]);
        let (out, report) = Polisher::default().polish(&c);
        assert_eq!(report.short_messages, 1);
        assert_eq!(out.users[0].posts.len(), 1);
    }

    #[test]
    fn spam_dropped_by_diversity() {
        let spam = "buy now buy now buy now buy now buy now buy now";
        let c = corpus_with(vec![Post::new(spam, 1), Post::new(GOOD, 2)]);
        let (_, report) = Polisher::default().polish(&c);
        assert_eq!(report.low_diversity_messages, 1);
    }

    #[test]
    fn non_english_dropped() {
        let es = "me gustaría saber si alguien puede ayudarme con este problema porque no encuentro solución";
        let c = corpus_with(vec![Post::new(es, 1), Post::new(GOOD, 2)]);
        let (_, report) = Polisher::default().polish(&c);
        assert_eq!(report.non_english_messages, 1);
    }

    #[test]
    fn transforms_applied_to_kept_messages() {
        let raw = format!("{GOOD} see https://www.example.com/page and mail me at x@y.io 😀");
        let c = corpus_with(vec![Post::new(raw, 1)]);
        let (out, _) = Polisher::default().polish(&c);
        let text = &out.users[0].posts[0].text;
        assert!(text.contains("example.com"));
        assert!(!text.contains("https://"));
        assert!(text.contains("_mail_"));
        assert!(!text.contains('😀'));
    }

    #[test]
    fn emptied_users_dropped() {
        let c = corpus_with(vec![Post::new("tiny", 1)]);
        let (out, report) = Polisher::default().polish(&c);
        assert!(out.is_empty());
        assert_eq!(report.emptied_users, 1);
    }

    #[test]
    fn disabled_config_is_identity() {
        let mut c = corpus_with(vec![Post::new("x", 1), Post::new("x", 2)]);
        c.users.push(User::new("spambot", None));
        let (out, report) = Polisher::new(PolishConfig::disabled()).polish(&c);
        assert_eq!(out, c);
        assert_eq!(report.dropped_messages(), 0);
        assert_eq!(report.bot_accounts, 0);
    }

    #[test]
    fn report_totals_consistent() {
        let c = corpus_with(vec![
            Post::new(GOOD, 1),
            Post::new(GOOD, 2),       // dup
            Post::new("short one", 3), // short
        ]);
        let (_, report) = Polisher::default().polish(&c);
        assert_eq!(report.kept_messages, 1);
        assert_eq!(report.dropped_messages(), 2);
    }

    #[test]
    fn facts_and_persona_preserved() {
        let mut c = corpus_with(vec![Post::new(GOOD, 1)]);
        c.users[0]
            .facts
            .push(crate::model::Fact::new(crate::model::FactKind::Age, "27"));
        let (out, _) = Polisher::default().polish(&c);
        assert_eq!(out.users[0].persona, Some(1));
        assert_eq!(out.users[0].facts.len(), 1);
    }
}
