//! The twelve polishing steps (§III-C of the paper).
//!
//! Raw forum data is noisy: bot accounts, crossposted duplicates, spam,
//! quotes, PGP keys, non-English chatter. The paper cleans it with twelve
//! steps before any feature extraction; [`Polisher::polish`] applies them
//! in order and returns both the cleaned corpus and a [`PolishReport`]
//! counting what each step removed:
//!
//!  1. drop accounts whose nickname starts/ends with `bot`;
//!  2. drop duplicate messages (vendors repost showcases; redditors
//!     crosspost);
//!  3. normalize URLs to their hostname;
//!  4. remove emoji;
//!  5. drop messages shorter than 10 words;
//!  6. drop messages whose distinct-word ratio is below 0.5 (spam);
//!  7. keep only English messages;
//!  8. remove quoted text (someone else's words);
//!  9. remove `Edit by <user>` platform tags;
//! 10. replace e-mail addresses with `_mail_`;
//! 11. remove PGP key blocks;
//! 12. drop "words" longer than 34 characters.
//!
//! Text transforms (3, 4, 8–12) run before the filters (5–7) so that word
//! counts and language detection see the text the feature extractor will.

use crate::model::{Corpus, User};
use darklight_obs::PipelineMetrics;
use darklight_text::langdetect::LanguageDetector;
use darklight_text::normalize;
use darklight_text::token::word_count;
use std::collections::HashSet;
use std::time::Instant;

/// Configuration of the polishing pipeline. The defaults are the paper's
/// settings; each step can be disabled for ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct PolishConfig {
    /// Step 1: drop `bot`-named accounts.
    pub drop_bots: bool,
    /// Step 2: drop duplicate messages per user.
    pub dedup: bool,
    /// Steps 3, 4, 8–12: apply the text transforms.
    pub transforms: bool,
    /// Step 5: minimum words per message (paper: 10; 0 disables).
    pub min_words: usize,
    /// Step 6: minimum distinct-word ratio (paper: 0.5; 0.0 disables).
    pub min_diversity: f64,
    /// Step 7: keep only messages detected as English.
    pub english_only: bool,
    /// Drop users left with zero posts after polishing.
    pub drop_empty_users: bool,
}

impl Default for PolishConfig {
    fn default() -> PolishConfig {
        PolishConfig {
            drop_bots: true,
            dedup: true,
            transforms: true,
            min_words: 10,
            min_diversity: 0.5,
            english_only: true,
            drop_empty_users: true,
        }
    }
}

impl PolishConfig {
    /// A no-op configuration (every step disabled) — the "polishing off"
    /// ablation baseline.
    pub fn disabled() -> PolishConfig {
        PolishConfig {
            drop_bots: false,
            dedup: false,
            transforms: false,
            min_words: 0,
            min_diversity: 0.0,
            english_only: false,
            drop_empty_users: false,
        }
    }
}

/// What each polishing step removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolishReport {
    /// Accounts dropped by the bot-name rule (step 1).
    pub bot_accounts: usize,
    /// Duplicate messages dropped (step 2).
    pub duplicate_messages: usize,
    /// Messages dropped for having fewer than `min_words` words (step 5).
    pub short_messages: usize,
    /// Messages dropped by the diversity-ratio spam rule (step 6).
    pub low_diversity_messages: usize,
    /// Messages dropped as non-English (step 7).
    pub non_english_messages: usize,
    /// Users dropped because no posts survived.
    pub emptied_users: usize,
    /// Users dropped because their polishing worker panicked (the panic
    /// is caught and quarantined rather than killing the run).
    pub panicked_users: usize,
    /// Messages surviving all steps.
    pub kept_messages: usize,
}

impl PolishReport {
    /// Total messages dropped by the per-message filters.
    pub fn dropped_messages(&self) -> usize {
        self.duplicate_messages
            + self.short_messages
            + self.low_diversity_messages
            + self.non_english_messages
    }

    /// Sums another report into this one. Every field is a count, so the
    /// fold over per-user partial reports is order-independent — the
    /// merged report is identical for any worker count.
    fn absorb(&mut self, other: &PolishReport) {
        self.bot_accounts += other.bot_accounts;
        self.duplicate_messages += other.duplicate_messages;
        self.short_messages += other.short_messages;
        self.low_diversity_messages += other.low_diversity_messages;
        self.non_english_messages += other.non_english_messages;
        self.emptied_users += other.emptied_users;
        self.panicked_users += other.panicked_users;
        self.kept_messages += other.kept_messages;
    }
}

/// Locally accumulated per-step nanoseconds, flushed to the metrics
/// registry once per [`Polisher::polish`] call so the per-message loop
/// never touches shared state.
#[derive(Debug, Default)]
struct StepNanos {
    dedup: u64,
    transforms: u64,
    length: u64,
    diversity: u64,
    language: u64,
}

impl StepNanos {
    /// Sums another accumulator into this one (total CPU-time per step
    /// across workers, like the serial accumulation it generalizes).
    fn absorb(&mut self, other: &StepNanos) {
        self.dedup += other.dedup;
        self.transforms += other.transforms;
        self.length += other.length;
        self.diversity += other.diversity;
        self.language += other.language;
    }
}

/// Runs `f`, adding its wall-clock to `acc` when `enabled`. Compiles to
/// a plain call when metrics are off — the clock is never read.
fn timed<T>(enabled: bool, acc: &mut u64, f: impl FnOnce() -> T) -> T {
    if enabled {
        // audit:allow(no-ambient-time-or-rand) -- wall-clock feeds obs step timers only; metrics are never read back by pipeline logic
        let start = Instant::now();
        let out = f();
        // audit:allow(no-ambient-time-or-rand) -- reads back the same obs-only timer started above; never feeds pipeline logic
        *acc += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        out
    } else {
        f()
    }
}

/// Applies the polishing pipeline. Holds the language detector so repeated
/// corpora share the profile tables.
#[derive(Debug)]
pub struct Polisher {
    config: PolishConfig,
    metrics: PipelineMetrics,
    detector: LanguageDetector,
    /// Worker threads for per-user polishing (0 = auto).
    threads: usize,
}

impl Polisher {
    /// Creates a polisher with the given configuration.
    pub fn new(config: PolishConfig) -> Polisher {
        Polisher {
            config,
            metrics: PipelineMetrics::disabled(),
            detector: LanguageDetector::new(),
            threads: 0,
        }
    }

    /// Records per-step message counts and durations into `metrics`.
    pub fn with_metrics(mut self, metrics: PipelineMetrics) -> Polisher {
        self.metrics = metrics;
        self
    }

    /// Polishes on up to `threads` worker threads (0 = auto-detect; see
    /// [`darklight_par::resolve_threads`]). Users are independent — the
    /// only stateful step, deduplication, is scoped per user — so the
    /// polished corpus and report are identical for every thread count.
    pub fn with_threads(mut self, threads: usize) -> Polisher {
        self.threads = threads;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &PolishConfig {
        &self.config
    }

    /// Returns `true` when `alias` triggers the bot-name rule (step 1).
    pub fn is_bot_name(alias: &str) -> bool {
        let lower = alias.to_lowercase();
        lower.starts_with("bot") || lower.ends_with("bot")
    }

    /// Applies all twelve steps, returning the cleaned corpus and the
    /// removal report.
    ///
    /// Users are polished in parallel on the configured worker pool (the
    /// per-message steps are independent across users; deduplication, the
    /// only stateful step, is scoped per user). Kept users stay in corpus
    /// order and the report is a sum of per-user counts, so output is
    /// identical for every thread count.
    ///
    /// Polishing is a *skip-tolerant* stage: a panic while polishing one
    /// user (a poisoned record tripping a bug deep in a text transform) is
    /// caught by [`darklight_par::try_par_map`], that user alone is
    /// dropped — counted in [`PolishReport::panicked_users`] and the
    /// `par.worker_panics` counter — and every other user completes.
    /// Whether a user panics depends only on the user, so degraded output
    /// is still identical for every thread count.
    pub fn polish(&self, corpus: &Corpus) -> (Corpus, PolishReport) {
        let _total = self.metrics.timer("polish.total").start();
        let threads = darklight_par::resolve_threads(self.threads);
        self.metrics.gauge("polish.threads").set(threads as i64);
        let per_user =
            darklight_par::try_par_map(&corpus.users, threads, &self.metrics, |i, user| {
                darklight_par::fault::maybe_panic("polish.user", i);
                let mut report = PolishReport::default();
                let mut steps = StepNanos::default();
                if self.config.drop_bots && Self::is_bot_name(&user.alias) {
                    report.bot_accounts = 1;
                    return (None, report, steps);
                }
                let cleaned = self.polish_user(user, &mut report, &mut steps);
                if self.config.drop_empty_users && cleaned.posts.is_empty() {
                    report.emptied_users = 1;
                    return (None, report, steps);
                }
                (Some(cleaned), report, steps)
            });
        let mut report = PolishReport::default();
        let mut steps = StepNanos::default();
        let mut out = Corpus::new(corpus.name.clone());
        let input_messages: u64 = corpus.users.iter().map(|u| u.posts.len() as u64).sum();
        for slot in per_user {
            match slot {
                Ok((cleaned, user_report, user_steps)) => {
                    report.absorb(&user_report);
                    steps.absorb(&user_steps);
                    if let Some(user) = cleaned {
                        out.users.push(user);
                    }
                }
                Err(_) => report.panicked_users += 1,
            }
        }
        self.flush_metrics(&report, &steps, input_messages);
        (out, report)
    }

    /// One registry write per polish run: per-step message counts from the
    /// report and per-step durations from the local accumulators.
    fn flush_metrics(&self, report: &PolishReport, steps: &StepNanos, input_messages: u64) {
        if !self.metrics.is_enabled() {
            return;
        }
        let m = &self.metrics;
        m.counter("polish.input_messages").add(input_messages);
        m.counter("polish.kept_messages")
            .add(report.kept_messages as u64);
        m.counter("polish.dropped.bot_accounts")
            .add(report.bot_accounts as u64);
        m.counter("polish.dropped.duplicates")
            .add(report.duplicate_messages as u64);
        m.counter("polish.dropped.short")
            .add(report.short_messages as u64);
        m.counter("polish.dropped.low_diversity")
            .add(report.low_diversity_messages as u64);
        m.counter("polish.dropped.non_english")
            .add(report.non_english_messages as u64);
        m.counter("polish.dropped.emptied_users")
            .add(report.emptied_users as u64);
        m.counter("polish.dropped.panicked_users")
            .add(report.panicked_users as u64);
        m.timer("polish.step.dedup").record_ns(steps.dedup);
        m.timer("polish.step.transforms")
            .record_ns(steps.transforms);
        m.timer("polish.step.length_filter").record_ns(steps.length);
        m.timer("polish.step.diversity_filter")
            .record_ns(steps.diversity);
        m.timer("polish.step.language_filter")
            .record_ns(steps.language);
    }

    fn polish_user(&self, user: &User, report: &mut PolishReport, steps: &mut StepNanos) -> User {
        let timing = self.metrics.is_enabled();
        let mut cleaned = User::new(user.alias.clone(), user.persona);
        cleaned.facts = user.facts.clone();
        let mut seen: HashSet<String> = HashSet::new();
        for post in &user.posts {
            // Step 2: duplicates (on the raw text, as the paper does during
            // collection).
            if self.config.dedup {
                let duplicate = timed(timing, &mut steps.dedup, || {
                    let key = post.text.trim().to_lowercase();
                    !seen.insert(key)
                });
                if duplicate {
                    report.duplicate_messages += 1;
                    continue;
                }
            }
            let text = if self.config.transforms {
                timed(timing, &mut steps.transforms, || {
                    self.transform_text(&post.text)
                })
            } else {
                post.text.clone()
            };
            // Step 5: length filter.
            if self.config.min_words > 0
                && timed(timing, &mut steps.length, || word_count(&text)) < self.config.min_words
            {
                report.short_messages += 1;
                continue;
            }
            // Step 6: diversity filter.
            if self.config.min_diversity > 0.0
                && timed(timing, &mut steps.diversity, || {
                    normalize::diversity_ratio(&text)
                }) < self.config.min_diversity
            {
                report.low_diversity_messages += 1;
                continue;
            }
            // Step 7: language filter.
            if self.config.english_only
                && !timed(timing, &mut steps.language, || {
                    self.detector.is_english(&text)
                })
            {
                report.non_english_messages += 1;
                continue;
            }
            report.kept_messages += 1;
            let mut p = post.clone();
            p.text = text;
            cleaned.posts.push(p);
        }
        cleaned
    }

    /// Steps 3, 4, 8–12 in a sensible composition order: structural
    /// removals first (quotes, PGP, edit tags), then token rewrites (URLs,
    /// e-mails), then character cleanups (emoji, long words).
    fn transform_text(&self, text: &str) -> String {
        let t = normalize::remove_quotes(text);
        let t = normalize::remove_pgp_blocks(&t);
        let t = normalize::remove_edit_tags(&t);
        let t = normalize::normalize_urls_and_emails(&t);
        let t = normalize::strip_emojis(&t);
        normalize::drop_long_words(&t)
    }
}

impl Default for Polisher {
    fn default() -> Polisher {
        Polisher::new(PolishConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Post;

    const GOOD: &str =
        "this is a perfectly normal english message with plenty of distinct words in it";

    fn corpus_with(posts: Vec<Post>) -> Corpus {
        let mut c = Corpus::new("test");
        let mut u = User::new("normal_user", Some(1));
        u.posts = posts;
        c.users.push(u);
        c
    }

    #[test]
    fn bot_accounts_dropped() {
        let mut c = Corpus::new("test");
        for name in ["botfarm", "tipBot", "legit_user", "robotics_fan"] {
            let mut u = User::new(name, None);
            u.posts.push(Post::new(GOOD, 1));
            c.users.push(u);
        }
        let (out, report) = Polisher::default().polish(&c);
        assert_eq!(report.bot_accounts, 2); // botfarm, tipBot
        let names: Vec<&str> = out.users.iter().map(|u| u.alias.as_str()).collect();
        assert_eq!(names, ["legit_user", "robotics_fan"]);
    }

    #[test]
    fn duplicates_dropped() {
        let c = corpus_with(vec![
            Post::new(GOOD, 1),
            Post::new(GOOD, 2),
            Post::new(format!("{GOOD} "), 3), // trims to the same key
        ]);
        let (out, report) = Polisher::default().polish(&c);
        assert_eq!(report.duplicate_messages, 2);
        assert_eq!(out.users[0].posts.len(), 1);
    }

    #[test]
    fn short_messages_dropped() {
        let c = corpus_with(vec![Post::new("too short", 1), Post::new(GOOD, 2)]);
        let (out, report) = Polisher::default().polish(&c);
        assert_eq!(report.short_messages, 1);
        assert_eq!(out.users[0].posts.len(), 1);
    }

    #[test]
    fn spam_dropped_by_diversity() {
        let spam = "buy now buy now buy now buy now buy now buy now";
        let c = corpus_with(vec![Post::new(spam, 1), Post::new(GOOD, 2)]);
        let (_, report) = Polisher::default().polish(&c);
        assert_eq!(report.low_diversity_messages, 1);
    }

    #[test]
    fn non_english_dropped() {
        let es = "me gustaría saber si alguien puede ayudarme con este problema porque no encuentro solución";
        let c = corpus_with(vec![Post::new(es, 1), Post::new(GOOD, 2)]);
        let (_, report) = Polisher::default().polish(&c);
        assert_eq!(report.non_english_messages, 1);
    }

    #[test]
    fn transforms_applied_to_kept_messages() {
        let raw = format!("{GOOD} see https://www.example.com/page and mail me at x@y.io 😀");
        let c = corpus_with(vec![Post::new(raw, 1)]);
        let (out, _) = Polisher::default().polish(&c);
        let text = &out.users[0].posts[0].text;
        assert!(text.contains("example.com"));
        assert!(!text.contains("https://"));
        assert!(text.contains("_mail_"));
        assert!(!text.contains('😀'));
    }

    #[test]
    fn emptied_users_dropped() {
        let c = corpus_with(vec![Post::new("tiny", 1)]);
        let (out, report) = Polisher::default().polish(&c);
        assert!(out.is_empty());
        assert_eq!(report.emptied_users, 1);
    }

    #[test]
    fn disabled_config_is_identity() {
        let mut c = corpus_with(vec![Post::new("x", 1), Post::new("x", 2)]);
        c.users.push(User::new("spambot", None));
        let (out, report) = Polisher::new(PolishConfig::disabled()).polish(&c);
        assert_eq!(out, c);
        assert_eq!(report.dropped_messages(), 0);
        assert_eq!(report.bot_accounts, 0);
    }

    #[test]
    fn report_totals_consistent() {
        let c = corpus_with(vec![
            Post::new(GOOD, 1),
            Post::new(GOOD, 2),        // dup
            Post::new("short one", 3), // short
        ]);
        let (_, report) = Polisher::default().polish(&c);
        assert_eq!(report.kept_messages, 1);
        assert_eq!(report.dropped_messages(), 2);
    }

    #[test]
    fn metrics_mirror_report_counts() {
        let metrics = PipelineMetrics::enabled();
        let c = corpus_with(vec![
            Post::new(GOOD, 1),
            Post::new(GOOD, 2),        // duplicate
            Post::new("short one", 3), // short
        ]);
        let (_, report) = Polisher::default().with_metrics(metrics.clone()).polish(&c);
        assert_eq!(metrics.counter("polish.input_messages").get(), 3);
        assert_eq!(
            metrics.counter("polish.kept_messages").get(),
            report.kept_messages as u64
        );
        assert_eq!(metrics.counter("polish.dropped.duplicates").get(), 1);
        assert_eq!(metrics.counter("polish.dropped.short").get(), 1);
        // Step timers observed once per polish() call.
        assert_eq!(metrics.timer("polish.step.dedup").count(), 1);
        assert_eq!(metrics.timer("polish.total").count(), 1);
    }

    #[test]
    fn metrics_do_not_change_polish_output() {
        let c = corpus_with(vec![
            Post::new(GOOD, 1),
            Post::new(GOOD, 2),
            Post::new("short one", 3),
        ]);
        let (plain_out, plain_report) = Polisher::default().polish(&c);
        let (metered_out, metered_report) = Polisher::default()
            .with_metrics(PipelineMetrics::enabled())
            .polish(&c);
        assert_eq!(plain_out, metered_out);
        assert_eq!(plain_report, metered_report);
    }

    #[test]
    fn parallel_polish_identical_to_serial() {
        let mut c = Corpus::new("mixed");
        for (i, name) in ["alice", "spambot", "bob", "carol", "dave", "erin", "frank"]
            .iter()
            .enumerate()
        {
            let mut u = User::new(*name, Some(i as u64));
            u.posts.push(Post::new(GOOD, i as i64));
            u.posts.push(Post::new(GOOD, i as i64 + 1)); // duplicate
            u.posts.push(Post::new("too short", i as i64 + 2));
            u.posts
                .push(Post::new(format!("{GOOD} variant {i}"), i as i64 + 3));
            c.users.push(u);
        }
        let (serial_out, serial_report) = Polisher::default().with_threads(1).polish(&c);
        for threads in [2, 3, 7] {
            let (out, report) = Polisher::default().with_threads(threads).polish(&c);
            assert_eq!(out, serial_out, "threads = {threads}");
            assert_eq!(report, serial_report, "threads = {threads}");
        }
    }

    #[test]
    fn facts_and_persona_preserved() {
        let mut c = corpus_with(vec![Post::new(GOOD, 1)]);
        c.users[0]
            .facts
            .push(crate::model::Fact::new(crate::model::FactKind::Age, "27"));
        let (out, _) = Polisher::default().polish(&c);
        assert_eq!(out.users[0].persona, Some(1));
        assert_eq!(out.users[0].facts.len(), 1);
    }
}
