//! Corpus layer of the `darklight` pipeline: the forum data model, the
//! paper's twelve polishing steps (§III-C), dataset refinement and
//! alter-ego generation (§IV-D), corpus statistics (Fig. 1, Table I), and a
//! dependency-free TSV serialization for experiment artifacts.
//!
//! The paper works with three forums — Reddit, The Majestic Garden, and the
//! Dream Market — scraped into (alias, posts, timestamps) records. This
//! crate is agnostic to where a [`model::Corpus`] comes from (the
//! `darklight-synth` crate generates them; [`io`] loads them from disk) and
//! provides everything between raw posts and the refined datasets the
//! attribution stage consumes:
//!
//! * [`model`] — forums, users, posts, and the ground-truth metadata
//!   (persona ids, identity facts) used for evaluation;
//! * [`polish`] — the twelve cleaning steps with a per-step report;
//! * [`refine`] — minimum-data filtering, longest-first text budgeting, and
//!   the alter-ego split that manufactures ground truth;
//! * [`stats`] — words-per-user CDFs and topic composition;
//! * [`io`] — TSV round-tripping of corpora.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
pub mod model;
pub mod polish;
pub mod refine;
pub mod stats;

pub use model::{Corpus, Fact, FactKind, Post, User};
pub use polish::{PolishConfig, PolishReport, Polisher};
pub use refine::{AlterEgoConfig, RefineConfig};
