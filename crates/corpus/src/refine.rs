//! Dataset refinement and alter-ego generation (§IV-D of the paper).
//!
//! After polishing, the paper keeps only users with enough signal — at
//! least 30 usable timestamps (for the activity profile) and 1,500 words —
//! and manufactures ground truth by splitting rich users (at least 3,000
//! words and 60 usable timestamps) into an *original* and an *alter-ego*:
//! disjoint random halves of their messages, with timestamps evenly
//! divided in a randomized way. Text budgets are then met by taking
//! messages longest-first.
//!
//! Splitting needs randomness; to keep this crate dependency-free it uses a
//! small embedded SplitMix64 generator seeded explicitly, so every
//! refinement is reproducible.

use crate::model::{Corpus, User};
use darklight_activity::profile::ProfileBuilder;
use darklight_text::token::word_count;

/// A tiny deterministic PRNG (SplitMix64) for reproducible splits.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n`. `n` must be positive.
    pub(crate) fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    pub(crate) fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

/// Thresholds for keeping a user in a refined dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineConfig {
    /// Minimum usable (weekday, non-holiday) timestamps — paper: 30.
    pub min_timestamps: usize,
    /// Minimum total words — paper: 1,500.
    pub min_words: usize,
}

impl Default for RefineConfig {
    fn default() -> RefineConfig {
        RefineConfig {
            min_timestamps: 30,
            min_words: 1_500,
        }
    }
}

/// Thresholds for alter-ego eligibility — paper: > 3,000 words and > 60
/// usable timestamps, i.e. both halves independently satisfy
/// [`RefineConfig`]'s defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlterEgoConfig {
    /// Minimum words a user needs before splitting (paper: 3,000).
    pub min_words: usize,
    /// Minimum usable timestamps before splitting (paper: 60).
    pub min_timestamps: usize,
    /// Seed for the reproducible random split.
    pub seed: u64,
}

impl Default for AlterEgoConfig {
    fn default() -> AlterEgoConfig {
        AlterEgoConfig {
            min_words: 3_000,
            min_timestamps: 60,
            seed: 0xDA_2C_11_67,
        }
    }
}

/// Keeps only the users meeting the refinement thresholds. The profile
/// builder supplies the usable-timestamp rule (weekends/holidays excluded).
pub fn refine(corpus: &Corpus, config: RefineConfig, profiles: &ProfileBuilder) -> Corpus {
    let mut out = Corpus::new(corpus.name.clone());
    out.users = corpus
        .users
        .iter()
        .filter(|u| {
            profiles.usable_count(&u.timestamps()) >= config.min_timestamps
                && u.total_words() >= config.min_words
        })
        .cloned()
        .collect();
    out
}

/// The outcome of an alter-ego split: the reduced original plus the new
/// alter-ego alias.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitUser {
    /// The original alias with half the posts.
    pub original: User,
    /// The alter-ego alias (named `<alias>__ae`) with the other half.
    pub alter_ego: User,
}

/// Splits one user into original + alter-ego: posts are shuffled and dealt
/// into two equal halves, so the message sets are disjoint and the
/// timestamps are evenly divided in a randomized way, exactly as in §IV-D.
/// Returns `None` when the user does not meet the eligibility thresholds.
pub fn split_user(
    user: &User,
    config: &AlterEgoConfig,
    profiles: &ProfileBuilder,
) -> Option<SplitUser> {
    if user.total_words() <= config.min_words
        || profiles.usable_count(&user.timestamps()) <= config.min_timestamps
    {
        return None;
    }
    // Seed per user so splits are independent of corpus ordering.
    let mut rng = SplitMix64::new(config.seed ^ hash_alias(&user.alias));
    let mut order: Vec<usize> = (0..user.posts.len()).collect();
    rng.shuffle(&mut order);
    let half = order.len() / 2;
    let mut original = User::new(user.alias.clone(), user.persona);
    original.facts = user.facts.clone();
    let mut alter = User::new(format!("{}__ae", user.alias), user.persona);
    alter.facts = user.facts.clone();
    for (rank, &idx) in order.iter().enumerate() {
        let post = user.posts[idx].clone();
        if rank < half {
            alter.posts.push(post);
        } else {
            original.posts.push(post);
        }
    }
    Some(SplitUser {
        original,
        alter_ego: alter,
    })
}

/// Splits every eligible user of `corpus`, producing the pair of datasets
/// of Table IV: the originals corpus (all users, with eligible ones
/// halved) and the alter-ego corpus (named `ae_<name>`).
pub fn build_alter_egos(
    corpus: &Corpus,
    config: &AlterEgoConfig,
    profiles: &ProfileBuilder,
) -> (Corpus, Corpus) {
    let mut originals = Corpus::new(corpus.name.clone());
    let mut alter = Corpus::new(format!("ae_{}", corpus.name));
    for user in &corpus.users {
        match split_user(user, config, profiles) {
            Some(split) => {
                originals.users.push(split.original);
                alter.users.push(split.alter_ego);
            }
            None => originals.users.push(user.clone()),
        }
    }
    (originals, alter)
}

/// Selects a user's text longest-message-first until `word_budget` words
/// are reached (§IV-D: "we sort the messages by length and select the
/// messages from the longest to the shortest until we reach the limit of
/// 1,500 words").
pub fn select_text(user: &User, word_budget: usize) -> String {
    let mut by_len: Vec<(usize, &str)> = user
        .posts
        .iter()
        .map(|p| (word_count(&p.text), p.text.as_str()))
        .collect();
    by_len.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(b.1)));
    let mut out = String::new();
    let mut words = 0usize;
    for (wc, text) in by_len {
        if words >= word_budget {
            break;
        }
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(text);
        words += wc;
    }
    out
}

/// Drops users whose concatenated text is pathologically repetitive —
/// the paper found that alter-ego pairs with near-1.0 cosine were bots or
/// users "that write multiple times the same messages changing just some
/// words", and removed them. The distinct-word ratio over the whole user
/// (not per message) catches exactly these.
pub fn drop_self_repetitive_users(corpus: &Corpus, min_global_diversity: f64) -> Corpus {
    let mut out = Corpus::new(corpus.name.clone());
    out.users = corpus
        .users
        .iter()
        .filter(|u| {
            let text = u.full_text();
            let words = word_count(&text);
            if words == 0 {
                return false;
            }
            // Distinct ratio adjusted for length: expect vocabulary growth
            // ~ sqrt; use distinct / sqrt(total) so long texts are not
            // unfairly punished, and compare on a 0..1-ish scale.
            let distinct = {
                let ws = darklight_text::token::words(&text);
                let set: std::collections::HashSet<&String> = ws.iter().collect();
                set.len()
            };
            let expected = (words as f64).sqrt() * 4.0; // generous heuristic
            (distinct as f64 / expected.min(words as f64)) >= min_global_diversity
        })
        .cloned()
        .collect();
    out
}

fn hash_alias(alias: &str) -> u64 {
    // FNV-1a, stable across runs.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in alias.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Post;
    use darklight_activity::profile::{ProfileBuilder, ProfilePolicy};

    /// Weekday timestamps spread across 2017: Monday–Friday of consecutive
    /// weeks, starting Monday 2017-02-06 (a handful land on holidays).
    fn weekday_ts(n: usize) -> Vec<i64> {
        let base = 1_486_375_200; // 2017-02-06T10:00:00Z, a Monday
        (0..n)
            .map(|i| base + (i as i64 / 5) * 7 * 86_400 + (i as i64 % 5) * 86_400)
            .collect()
    }

    fn rich_user(alias: &str, posts: usize, words_per_post: usize) -> User {
        let mut u = User::new(alias, Some(1));
        let text = vec!["word"; words_per_post].join(" ");
        for (i, ts) in weekday_ts(posts).into_iter().enumerate() {
            u.posts.push(Post::new(format!("{text} {i}"), ts));
        }
        u
    }

    fn builder() -> ProfileBuilder {
        ProfileBuilder::new(ProfilePolicy::default())
    }

    #[test]
    fn refine_drops_thin_users() {
        let mut c = Corpus::new("x");
        c.users.push(rich_user("rich", 80, 40)); // 80*41 words, 80 ts
        c.users.push(rich_user("few_ts", 10, 200)); // words ok, 10 ts
        c.users.push(rich_user("few_words", 80, 2)); // ts ok, 240 words
        let refined = refine(&c, RefineConfig::default(), &builder());
        let names: Vec<&str> = refined.users.iter().map(|u| u.alias.as_str()).collect();
        assert_eq!(names, ["rich"]);
    }

    #[test]
    fn split_preserves_and_partitions_posts() {
        let u = rich_user("splitme", 100, 40);
        let split = split_user(&u, &AlterEgoConfig::default(), &builder()).unwrap();
        assert_eq!(
            split.original.posts.len() + split.alter_ego.posts.len(),
            u.posts.len()
        );
        // Disjoint: no shared texts.
        let a: std::collections::HashSet<&String> =
            split.original.posts.iter().map(|p| &p.text).collect();
        assert!(split.alter_ego.posts.iter().all(|p| !a.contains(&p.text)));
        // Roughly even.
        let diff = split.original.posts.len() as i64 - split.alter_ego.posts.len() as i64;
        assert!(diff.abs() <= 1);
        assert_eq!(split.alter_ego.alias, "splitme__ae");
        assert_eq!(split.alter_ego.persona, Some(1));
    }

    #[test]
    fn split_rejects_thin_users() {
        let thin = rich_user("thin", 50, 40); // 50 ts ≤ 60
        assert!(split_user(&thin, &AlterEgoConfig::default(), &builder()).is_none());
        let wordless = rich_user("wordless", 100, 10); // 100*11 = 1100 words
        assert!(split_user(&wordless, &AlterEgoConfig::default(), &builder()).is_none());
    }

    #[test]
    fn split_is_deterministic() {
        let u = rich_user("det", 100, 40);
        let cfg = AlterEgoConfig::default();
        let s1 = split_user(&u, &cfg, &builder()).unwrap();
        let s2 = split_user(&u, &cfg, &builder()).unwrap();
        assert_eq!(s1, s2);
        // A different seed produces a different split.
        let s3 = split_user(&u, &AlterEgoConfig { seed: 99, ..cfg }, &builder()).unwrap();
        assert_ne!(s1, s3);
    }

    #[test]
    fn build_alter_egos_shapes() {
        let mut c = Corpus::new("dm");
        c.users.push(rich_user("eligible", 100, 40));
        c.users.push(rich_user("too_thin", 40, 40));
        let (orig, ae) = build_alter_egos(&c, &AlterEgoConfig::default(), &builder());
        assert_eq!(orig.name, "dm");
        assert_eq!(ae.name, "ae_dm");
        assert_eq!(orig.len(), 2);
        assert_eq!(ae.len(), 1);
    }

    #[test]
    fn select_text_longest_first() {
        let mut u = User::new("sel", None);
        u.posts.push(Post::new("short message here", 1));
        u.posts.push(Post::new(
            "this is a much longer message with many more words than the others combined",
            2,
        ));
        u.posts
            .push(Post::new("mid sized message with six words", 3));
        let text = select_text(&u, 15);
        assert!(text.starts_with("this is a much longer"));
        // Budget reached after the long (14 words) + mid (6 words) messages.
        assert!(text.contains("mid sized"));
        assert!(!text.contains("short message"));
    }

    #[test]
    fn select_text_budget_zero() {
        let mut u = User::new("none", None);
        u.posts.push(Post::new("anything", 1));
        assert_eq!(select_text(&u, 0), "");
    }

    #[test]
    fn repetitive_users_dropped() {
        let mut c = Corpus::new("x");
        let mut spam = User::new("repeater", None);
        for i in 0..50 {
            spam.posts
                .push(Post::new("same exact words every single time", i));
        }
        let mut varied = User::new("varied", None);
        for i in 0..50u8 {
            // Distinct alphabetic words per post (digits are not word
            // tokens, so suffix with letters).
            let a = char::from(b'a' + i % 26);
            let b = char::from(b'a' + (i / 2) % 26);
            varied.posts.push(Post::new(
                format!("unique{a}{b} content{b}{a} each{a} time{b} words{a}{a}"),
                i as i64,
            ));
        }
        c.users.push(spam);
        c.users.push(varied);
        let out = drop_self_repetitive_users(&c, 0.5);
        let names: Vec<&str> = out.users.iter().map(|u| u.alias.as_str()).collect();
        assert_eq!(names, ["varied"]);
    }

    #[test]
    fn splitmix_shuffle_is_permutation() {
        let mut rng = SplitMix64::new(42);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted); // astronomically unlikely to be identity
    }
}
