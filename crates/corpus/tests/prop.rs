//! Property-based tests for the corpus layer.

use darklight_activity::profile::{ProfileBuilder, ProfilePolicy};
use darklight_corpus::io::{read_corpus, write_corpus};
use darklight_corpus::model::{Corpus, Fact, FactKind, Post, User};
use darklight_corpus::polish::{PolishConfig, Polisher};
use darklight_corpus::refine::{split_user, AlterEgoConfig};
use darklight_corpus::stats::{cdf_at, cdf_of_sorted};
use proptest::prelude::*;

fn fact_kind_strategy() -> impl Strategy<Value = FactKind> {
    prop_oneof![
        Just(FactKind::Age),
        Just(FactKind::City),
        Just(FactKind::Drug),
        Just(FactKind::AliasRef),
        Just(FactKind::Hobby),
    ]
}

fn user_strategy() -> impl Strategy<Value = User> {
    (
        "[a-zA-Z_]{1,12}",
        proptest::option::of(0u64..100),
        proptest::collection::vec(("\\PC{0,60}", 0i64..2_000_000_000, "[a-z]{0,8}"), 0..10),
        proptest::collection::vec((fact_kind_strategy(), "[a-z0-9 ]{1,12}"), 0..4),
    )
        .prop_map(|(alias, persona, posts, facts)| {
            let mut u = User::new(alias, persona);
            for (text, ts, topic) in posts {
                u.posts.push(Post::with_topic(text, ts, topic));
            }
            for (kind, value) in facts {
                u.facts.push(Fact::new(kind, value));
            }
            u
        })
}

fn corpus_strategy() -> impl Strategy<Value = Corpus> {
    (
        "[a-z]{1,8}",
        proptest::collection::vec(user_strategy(), 0..8),
    )
        .prop_map(|(name, users)| {
            let mut c = Corpus::new(name);
            c.users = users;
            c
        })
}

proptest! {
    /// TSV serialization round-trips arbitrary corpora (including control
    /// characters in post text).
    #[test]
    fn tsv_round_trip(c in corpus_strategy()) {
        let mut buf = Vec::new();
        write_corpus(&c, &mut buf).unwrap();
        let back = read_corpus(buf.as_slice()).unwrap();
        prop_assert_eq!(back, c);
    }

    /// Polishing never invents posts or users, and the report's kept count
    /// matches the surviving corpus.
    #[test]
    fn polish_shrinks(c in corpus_strategy()) {
        let (out, report) = Polisher::default().polish(&c);
        prop_assert!(out.len() <= c.len());
        prop_assert!(out.total_posts() <= c.total_posts());
        prop_assert_eq!(report.kept_messages, out.total_posts());
    }

    /// With everything disabled, polishing is the identity.
    #[test]
    fn polish_disabled_identity(c in corpus_strategy()) {
        let (out, _) = Polisher::new(PolishConfig::disabled()).polish(&c);
        prop_assert_eq!(out, c);
    }

    /// The alter-ego split exactly partitions the user's posts: counts add
    /// up, each half is near-even, and the multisets of timestamps merge
    /// back to the original.
    #[test]
    fn split_partitions(seed in any::<u64>(), n_posts in 61usize..200) {
        let mut u = User::new("target", Some(1));
        let base = 1_486_375_200i64; // Monday 2017-02-06 10:00 UTC
        for i in 0..n_posts {
            let ts = base + (i as i64 / 5) * 7 * 86_400 + (i as i64 % 5) * 86_400;
            u.posts.push(Post::new(format!("post number {i} with some sixty words of filler {}", "pad ".repeat(60)), ts));
        }
        let cfg = AlterEgoConfig { seed, ..AlterEgoConfig::default() };
        let profiles = ProfileBuilder::new(ProfilePolicy::default());
        if let Some(split) = split_user(&u, &cfg, &profiles) {
            prop_assert_eq!(split.original.posts.len() + split.alter_ego.posts.len(), n_posts);
            let diff = split.original.posts.len() as i64 - split.alter_ego.posts.len() as i64;
            prop_assert!(diff.abs() <= 1);
            let mut merged: Vec<i64> = split
                .original
                .posts
                .iter()
                .chain(&split.alter_ego.posts)
                .map(|p| p.timestamp)
                .collect();
            merged.sort_unstable();
            let mut orig: Vec<i64> = u.posts.iter().map(|p| p.timestamp).collect();
            orig.sort_unstable();
            prop_assert_eq!(merged, orig);
        }
    }

    /// CDFs are monotone in both value and fraction and end at 1.
    #[test]
    fn cdf_monotone(mut sample in proptest::collection::vec(0u64..10_000, 1..100)) {
        sample.sort_unstable();
        let cdf = cdf_of_sorted(&sample);
        prop_assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            prop_assert!(w[0].value < w[1].value);
            prop_assert!(w[0].fraction <= w[1].fraction);
        }
        prop_assert!((cdf.last().unwrap().fraction - 1.0).abs() < 1e-12);
        // Evaluation brackets.
        prop_assert_eq!(cdf_at(&cdf, 0u64.wrapping_sub(0)), cdf_at(&cdf, 0));
        prop_assert!((cdf_at(&cdf, 10_000) - 1.0).abs() < 1e-12);
    }
}
