//! Property-based tests for the civil-time and profile substrate.

use darklight_activity::civil::{days_in_month, CivilDate, CivilDateTime};
use darklight_activity::profile::{DailyActivityProfile, ProfileBuilder, ProfilePolicy, HOURS};
use proptest::prelude::*;

proptest! {
    /// Unix -> civil -> unix is the identity over a ±200-year range.
    #[test]
    fn unix_civil_round_trip(unix in -6_000_000_000i64..6_000_000_000i64) {
        let dt = CivilDateTime::from_unix(unix);
        prop_assert_eq!(dt.to_unix(), unix);
    }

    /// Civil components produced by conversion are always in range.
    #[test]
    fn civil_components_in_range(unix in -6_000_000_000i64..6_000_000_000i64) {
        let dt = CivilDateTime::from_unix(unix);
        let d = dt.date();
        prop_assert!((1..=12).contains(&d.month()));
        prop_assert!(d.day() >= 1 && d.day() <= days_in_month(d.year(), d.month()));
        prop_assert!(dt.hour() < 24);
        prop_assert!(dt.minute() < 60);
        prop_assert!(dt.second() < 60);
    }

    /// Consecutive days have consecutive weekdays (mod 7).
    #[test]
    fn weekday_advances_by_one(days in -100_000i64..100_000i64) {
        let a = CivilDate::from_days_from_epoch(days);
        let b = CivilDate::from_days_from_epoch(days + 1);
        let wa = a.weekday().iso_number() as i64;
        let wb = b.weekday().iso_number() as i64;
        prop_assert_eq!((wa % 7) + 1, wb);
    }

    /// Profiles are normalized: shares sum to 1 and lie in [0, 1].
    #[test]
    fn profile_is_normalized(counts in proptest::array::uniform24(0u32..50)) {
        prop_assume!(counts.iter().any(|&c| c > 0));
        let p = DailyActivityProfile::from_counts(counts).unwrap();
        let sum: f64 = p.shares().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(p.shares().iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    /// Cosine similarity between profiles is symmetric and in [0, 1];
    /// self-similarity is 1.
    #[test]
    fn profile_cosine_bounds(
        a in proptest::array::uniform24(0u32..50),
        b in proptest::array::uniform24(0u32..50),
    ) {
        prop_assume!(a.iter().any(|&c| c > 0) && b.iter().any(|&c| c > 0));
        let pa = DailyActivityProfile::from_counts(a).unwrap();
        let pb = DailyActivityProfile::from_counts(b).unwrap();
        let s = pa.cosine(&pb);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&s));
        prop_assert!((pa.cosine(&pb) - pb.cosine(&pa)).abs() < 1e-12);
        prop_assert!((pa.cosine(&pa) - 1.0).abs() < 1e-12);
    }

    /// Rotating by any amount and back is the identity, and rotation
    /// preserves the post total.
    #[test]
    fn rotation_invertible(
        counts in proptest::array::uniform24(0u32..50),
        shift in -48i32..48,
    ) {
        prop_assume!(counts.iter().any(|&c| c > 0));
        let p = DailyActivityProfile::from_counts(counts).unwrap();
        let r = p.rotate(shift);
        prop_assert_eq!(r.total_posts(), p.total_posts());
        prop_assert_eq!(r.rotate(-shift), p);
    }

    /// The builder never counts weekend timestamps under the default policy.
    #[test]
    fn weekends_never_counted(offsets in proptest::collection::vec(0i64..365 * 86_400, 1..80)) {
        let base = 1_483_228_800i64; // 2017-01-01T00:00:00Z
        let ts: Vec<i64> = offsets.iter().map(|o| base + o).collect();
        let b = ProfileBuilder::new(ProfilePolicy::default().with_min_timestamps(1));
        match b.build(&ts) {
            Ok(p) => {
                prop_assert_eq!(p.total_posts() as usize, b.usable_count(&ts));
                prop_assert!(p.total_posts() as usize <= ts.len());
            }
            Err(_) => prop_assert_eq!(b.usable_count(&ts), 0),
        }
    }

    /// Hour binning matches civil conversion for arbitrary timestamps.
    #[test]
    fn hour_binning_matches_civil(unix in 1_483_228_800i64..1_514_764_800i64) {
        let b = ProfileBuilder::new(ProfilePolicy::keep_everything());
        let p = b.build(&[unix]).unwrap();
        let hour = CivilDateTime::from_unix(unix).hour() as usize;
        prop_assert_eq!(p.count(hour), 1);
        prop_assert_eq!(p.total_posts(), 1);
        for h in 0..HOURS {
            if h != hour {
                prop_assert_eq!(p.count(h), 0);
            }
        }
    }
}
