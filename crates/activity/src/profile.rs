//! Daily activity profiles (eq. 1 of the paper).
//!
//! A profile is the empirical distribution of a user's posts over the 24
//! hours of the (UTC) day: `P_u[h] = Σ_d a_u(d,h) / Σ_{d,h'} a_u(d,h')`,
//! where `a_u(d,h)` records whether user `u` posted in hour `h` of day `d`.
//! Timestamps on weekends and holidays are discarded, and a minimum number
//! of usable timestamps (30 in the paper) is required before a profile is
//! considered reliable.

use crate::calendar::{HolidayCalendar, UsFederalHolidays};
use crate::civil::CivilDateTime;
use std::error::Error;
use std::fmt;

/// Number of hourly bins in a profile.
pub const HOURS: usize = 24;

/// The paper's minimum number of usable timestamps for a reliable profile.
pub const DEFAULT_MIN_TIMESTAMPS: usize = 30;

/// Why a profile could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileError {
    /// Fewer usable (non-weekend, non-holiday) timestamps than the policy
    /// minimum. Carries `(usable, required)`.
    TooFewTimestamps {
        /// Usable timestamps found after exclusions.
        usable: usize,
        /// Minimum required by the [`ProfilePolicy`].
        required: usize,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::TooFewTimestamps { usable, required } => write!(
                f,
                "too few usable timestamps to build a daily activity profile: {usable} < {required}"
            ),
        }
    }
}

impl Error for ProfileError {}

/// Policy controlling which timestamps count toward a profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfilePolicy {
    /// Minimum number of usable timestamps (paper: 30).
    pub min_timestamps: usize,
    /// Whether Saturdays/Sundays are excluded (paper: yes).
    pub exclude_weekends: bool,
    /// Whether holidays are excluded (paper: yes).
    pub exclude_holidays: bool,
    /// Offset in seconds added to every timestamp before conversion, used to
    /// re-align a forum clock to UTC (paper §IV-B: "we align the timestamps
    /// by adjusting all the profiles to UTC").
    pub utc_offset_secs: i64,
}

impl Default for ProfilePolicy {
    fn default() -> ProfilePolicy {
        ProfilePolicy {
            min_timestamps: DEFAULT_MIN_TIMESTAMPS,
            exclude_weekends: true,
            exclude_holidays: true,
            utc_offset_secs: 0,
        }
    }
}

impl ProfilePolicy {
    /// A permissive policy that keeps every timestamp and requires only one.
    /// Useful in tests and for exploratory analysis.
    pub fn keep_everything() -> ProfilePolicy {
        ProfilePolicy {
            min_timestamps: 1,
            exclude_weekends: false,
            exclude_holidays: false,
            utc_offset_secs: 0,
        }
    }

    /// Returns a copy with the given minimum timestamp count.
    pub fn with_min_timestamps(mut self, min: usize) -> ProfilePolicy {
        self.min_timestamps = min;
        self
    }

    /// Returns a copy with the given forum-to-UTC offset in seconds.
    pub fn with_utc_offset_secs(mut self, secs: i64) -> ProfilePolicy {
        self.utc_offset_secs = secs;
        self
    }
}

/// A normalized 24-bin daily activity profile.
///
/// Bin `h` holds the fraction of the user's usable posts that fell in UTC
/// hour `h`; the bins sum to 1 (up to floating-point error).
#[derive(Debug, Clone, PartialEq)]
pub struct DailyActivityProfile {
    shares: [f64; HOURS],
    counts: [u32; HOURS],
    total: u32,
}

impl DailyActivityProfile {
    /// Builds a profile directly from per-hour post counts.
    ///
    /// Returns `None` when every count is zero (an empty profile cannot be
    /// normalized).
    pub fn from_counts(counts: [u32; HOURS]) -> Option<DailyActivityProfile> {
        let total: u32 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let mut shares = [0.0; HOURS];
        for (share, &count) in shares.iter_mut().zip(counts.iter()) {
            *share = count as f64 / total as f64;
        }
        Some(DailyActivityProfile {
            shares,
            counts,
            total,
        })
    }

    /// The fraction of posts in UTC hour `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h >= 24`.
    pub fn share(&self, h: usize) -> f64 {
        self.shares[h]
    }

    /// The raw post count in UTC hour `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h >= 24`.
    pub fn count(&self, h: usize) -> u32 {
        self.counts[h]
    }

    /// Total number of usable timestamps behind this profile.
    pub fn total_posts(&self) -> u32 {
        self.total
    }

    /// The normalized shares as a slice, in hour order.
    pub fn shares(&self) -> &[f64; HOURS] {
        &self.shares
    }

    /// The hour with the most activity (ties broken toward earlier hours).
    pub fn peak_hour(&self) -> usize {
        let mut best = 0;
        for h in 1..HOURS {
            if self.shares[h] > self.shares[best] {
                best = h;
            }
        }
        best
    }

    /// Shannon entropy of the profile in bits; 0 for a single-hour poster,
    /// log2(24) ≈ 4.58 for a perfectly uniform one. Useful to gauge how
    /// identifying a profile is.
    pub fn entropy_bits(&self) -> f64 {
        self.shares
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.log2())
            .sum()
    }

    /// Cosine similarity with another profile, in `[0, 1]` (profiles are
    /// non-negative).
    ///
    /// ```
    /// use darklight_activity::profile::DailyActivityProfile;
    /// let mut counts = [0u32; 24];
    /// counts[9] = 10;
    /// let a = DailyActivityProfile::from_counts(counts).unwrap();
    /// assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
    /// ```
    pub fn cosine(&self, other: &DailyActivityProfile) -> f64 {
        let mut dot = 0.0;
        let mut na = 0.0;
        let mut nb = 0.0;
        for h in 0..HOURS {
            dot += self.shares[h] * other.shares[h];
            na += self.shares[h] * self.shares[h];
            nb += other.shares[h] * other.shares[h];
        }
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na.sqrt() * nb.sqrt())
        }
    }

    /// Rotates the profile by `shift` hours (positive shifts move activity
    /// to later hours), e.g. to simulate or undo a timezone change.
    pub fn rotate(&self, shift: i32) -> DailyActivityProfile {
        let mut counts = [0u32; HOURS];
        for (h, &c) in self.counts.iter().enumerate() {
            let nh = (h as i32 + shift).rem_euclid(HOURS as i32) as usize;
            counts[nh] = c;
        }
        DailyActivityProfile::from_counts(counts).expect("rotation preserves total > 0")
    }

    /// Pools two profiles by summing their per-hour counts (e.g. to merge
    /// two confirmed aliases of the same person).
    pub fn merge(&self, other: &DailyActivityProfile) -> DailyActivityProfile {
        let mut counts = [0u32; HOURS];
        for ((c, &a), &b) in counts.iter_mut().zip(&self.counts).zip(&other.counts) {
            *c = a + b;
        }
        DailyActivityProfile::from_counts(counts).expect("merged total > 0")
    }
}

/// Builds [`DailyActivityProfile`]s from raw unix timestamps under a
/// [`ProfilePolicy`] and a holiday calendar.
#[derive(Debug, Clone)]
pub struct ProfileBuilder<C = UsFederalHolidays> {
    policy: ProfilePolicy,
    calendar: C,
}

impl ProfileBuilder<UsFederalHolidays> {
    /// Builder with the given policy and the US federal holiday calendar
    /// (the forums in the paper are anglophone).
    pub fn new(policy: ProfilePolicy) -> ProfileBuilder<UsFederalHolidays> {
        ProfileBuilder {
            policy,
            calendar: UsFederalHolidays::new(),
        }
    }
}

impl Default for ProfileBuilder<UsFederalHolidays> {
    fn default() -> Self {
        ProfileBuilder::new(ProfilePolicy::default())
    }
}

impl<C: HolidayCalendar> ProfileBuilder<C> {
    /// Builder with a custom holiday calendar.
    pub fn with_calendar(policy: ProfilePolicy, calendar: C) -> ProfileBuilder<C> {
        ProfileBuilder { policy, calendar }
    }

    /// The active policy.
    pub fn policy(&self) -> &ProfilePolicy {
        &self.policy
    }

    /// Number of timestamps that would survive the exclusion rules.
    pub fn usable_count(&self, timestamps: &[i64]) -> usize {
        timestamps.iter().filter(|&&t| self.is_usable(t)).count()
    }

    /// Whether a single timestamp survives the exclusion rules.
    pub fn is_usable(&self, unix: i64) -> bool {
        let dt = CivilDateTime::from_unix(unix + self.policy.utc_offset_secs);
        if self.policy.exclude_weekends && dt.date().weekday().is_weekend() {
            return false;
        }
        if self.policy.exclude_holidays && self.calendar.is_holiday(dt.date()) {
            return false;
        }
        true
    }

    /// Builds the profile.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::TooFewTimestamps`] when fewer than
    /// `policy.min_timestamps` timestamps survive the weekend/holiday
    /// exclusion.
    pub fn build(&self, timestamps: &[i64]) -> Result<DailyActivityProfile, ProfileError> {
        let mut counts = [0u32; HOURS];
        let mut usable = 0usize;
        for &t in timestamps {
            if !self.is_usable(t) {
                continue;
            }
            let dt = CivilDateTime::from_unix(t + self.policy.utc_offset_secs);
            counts[dt.hour() as usize] += 1;
            usable += 1;
        }
        if usable < self.policy.min_timestamps.max(1) {
            return Err(ProfileError::TooFewTimestamps {
                usable,
                required: self.policy.min_timestamps.max(1),
            });
        }
        Ok(DailyActivityProfile::from_counts(counts).expect("usable >= 1 implies total > 0"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::NoHolidays;
    use crate::civil::CivilDateTime;

    /// Unix timestamp for the given civil time.
    fn at(y: i32, m: u8, d: u8, h: u8) -> i64 {
        CivilDateTime::new(y, m, d, h, 0, 0).unwrap().to_unix()
    }

    /// Weekday timestamps: every Wed of Feb/Mar 2017 at `hour`.
    fn wednesdays_at(hour: u8, n: usize) -> Vec<i64> {
        // 2017-02-01 is a Wednesday.
        (0..n)
            .map(|w| at(2017, 2, 1, hour) + w as i64 * 7 * 86_400)
            .collect()
    }

    #[test]
    fn basic_profile_shape() {
        let mut ts = wednesdays_at(9, 20);
        ts.extend(wednesdays_at(21, 20));
        let b = ProfileBuilder::new(ProfilePolicy::default());
        let p = b.build(&ts).unwrap();
        assert_eq!(p.total_posts(), 40);
        assert!((p.share(9) - 0.5).abs() < 1e-12);
        assert!((p.share(21) - 0.5).abs() < 1e-12);
        assert_eq!(p.share(3), 0.0);
        let sum: f64 = p.shares().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weekend_posts_excluded() {
        // 2017-02-04 is a Saturday.
        let mut ts = wednesdays_at(10, 30);
        let saturday = at(2017, 2, 4, 10);
        ts.push(saturday);
        let b = ProfileBuilder::new(ProfilePolicy::default());
        let p = b.build(&ts).unwrap();
        assert_eq!(p.total_posts(), 30);
        assert!(!b.is_usable(saturday));
    }

    #[test]
    fn holiday_posts_excluded() {
        // 2017-07-04 is a Tuesday but a US holiday.
        let mut ts = wednesdays_at(10, 30);
        ts.push(at(2017, 7, 4, 10));
        let b = ProfileBuilder::new(ProfilePolicy::default());
        assert_eq!(b.usable_count(&ts), 30);
        // With NoHolidays it becomes usable.
        let b2 = ProfileBuilder::with_calendar(ProfilePolicy::default(), NoHolidays);
        assert_eq!(b2.usable_count(&ts), 31);
    }

    #[test]
    fn min_timestamp_enforced() {
        let ts = wednesdays_at(10, 29);
        let b = ProfileBuilder::new(ProfilePolicy::default());
        let err = b.build(&ts).unwrap_err();
        assert_eq!(
            err,
            ProfileError::TooFewTimestamps {
                usable: 29,
                required: 30
            }
        );
        assert!(err.to_string().contains("29 < 30"));
    }

    #[test]
    fn zero_min_is_clamped_to_one() {
        let b = ProfileBuilder::new(ProfilePolicy::keep_everything().with_min_timestamps(0));
        assert!(b.build(&[]).is_err());
        assert!(b.build(&[at(2017, 2, 1, 0)]).is_ok());
    }

    #[test]
    fn utc_offset_shifts_bins() {
        let ts = wednesdays_at(23, 30);
        let b = ProfileBuilder::new(ProfilePolicy::default());
        let p = b.build(&ts).unwrap();
        assert_eq!(p.peak_hour(), 23);
        // A +2h forum clock correction rolls 23:00 into 01:00 the next day
        // (which is Thursday, still a weekday).
        let b2 = ProfileBuilder::new(ProfilePolicy::default().with_utc_offset_secs(2 * 3600));
        let p2 = b2.build(&ts).unwrap();
        assert_eq!(p2.peak_hour(), 1);
    }

    #[test]
    fn cosine_properties() {
        let b = ProfileBuilder::new(ProfilePolicy::keep_everything());
        let p1 = b.build(&wednesdays_at(9, 10)).unwrap();
        let p2 = b.build(&wednesdays_at(21, 10)).unwrap();
        assert!((p1.cosine(&p1) - 1.0).abs() < 1e-12);
        assert_eq!(p1.cosine(&p2), 0.0);
        let mixed: Vec<i64> = wednesdays_at(9, 5)
            .into_iter()
            .chain(wednesdays_at(21, 5))
            .collect();
        let pm = b.build(&mixed).unwrap();
        let sim = p1.cosine(&pm);
        assert!(sim > 0.5 && sim < 1.0, "sim = {sim}");
    }

    #[test]
    fn entropy_extremes() {
        let b = ProfileBuilder::new(ProfilePolicy::keep_everything());
        let single = b.build(&wednesdays_at(9, 10)).unwrap();
        assert_eq!(single.entropy_bits(), 0.0);
        let mut counts = [1u32; HOURS];
        counts[0] = 1;
        let uniform = DailyActivityProfile::from_counts(counts).unwrap();
        assert!((uniform.entropy_bits() - (HOURS as f64).log2()).abs() < 1e-9);
    }

    #[test]
    fn rotate_wraps_and_preserves_mass() {
        let b = ProfileBuilder::new(ProfilePolicy::keep_everything());
        let p = b.build(&wednesdays_at(23, 10)).unwrap();
        let r = p.rotate(3);
        assert_eq!(r.peak_hour(), 2);
        assert_eq!(r.total_posts(), p.total_posts());
        let back = r.rotate(-3);
        assert_eq!(back, p);
    }

    #[test]
    fn merge_pools_counts() {
        let b = ProfileBuilder::new(ProfilePolicy::keep_everything());
        let p1 = b.build(&wednesdays_at(9, 10)).unwrap();
        let p2 = b.build(&wednesdays_at(21, 30)).unwrap();
        let m = p1.merge(&p2);
        assert_eq!(m.total_posts(), 40);
        assert_eq!(m.peak_hour(), 21);
    }

    #[test]
    fn from_counts_rejects_empty() {
        assert!(DailyActivityProfile::from_counts([0; HOURS]).is_none());
    }
}
