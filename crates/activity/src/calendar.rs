//! Holiday calendars used when excluding days from activity profiles.
//!
//! The paper discards timestamps falling on weekends *and holidays*, because
//! users change their posting habits on those days (§IV-B, §VI). The forums
//! studied are anglophone, so we provide the US federal holiday rules; custom
//! fixed dates can be added for other jurisdictions.

use crate::civil::{CivilDate, Weekday};
use std::collections::BTreeSet;

/// A source of holiday dates, queried per-date while building activity
/// profiles.
pub trait HolidayCalendar {
    /// Returns `true` if `date` is a holiday under this calendar.
    fn is_holiday(&self, date: CivilDate) -> bool;

    /// Convenience: `true` when the date should be excluded from a profile
    /// because it is a weekend or a holiday.
    fn is_excluded(&self, date: CivilDate) -> bool {
        date.weekday().is_weekend() || self.is_holiday(date)
    }
}

/// A calendar with no holidays; only weekends are excluded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoHolidays;

impl HolidayCalendar for NoHolidays {
    fn is_holiday(&self, _date: CivilDate) -> bool {
        false
    }
}

/// The ten US federal holidays, computed by rule for any year.
///
/// ```
/// use darklight_activity::calendar::{HolidayCalendar, UsFederalHolidays};
/// use darklight_activity::civil::CivilDate;
///
/// let cal = UsFederalHolidays::new();
/// assert!(cal.is_holiday(CivilDate::new(2017, 7, 4).unwrap()));   // July 4th
/// assert!(cal.is_holiday(CivilDate::new(2017, 11, 23).unwrap())); // Thanksgiving
/// assert!(!cal.is_holiday(CivilDate::new(2017, 7, 5).unwrap()));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UsFederalHolidays {
    _private: (),
}

impl UsFederalHolidays {
    /// Creates the calendar.
    pub fn new() -> UsFederalHolidays {
        UsFederalHolidays::default()
    }

    /// All federal holidays of a given year, in date order.
    pub fn holidays_for_year(&self, year: i32) -> Vec<CivilDate> {
        let d = |m, day| CivilDate::new(year, m, day).expect("fixed holiday date is valid");
        let nth = |m, wd, n| {
            CivilDate::nth_weekday_of_month(year, m, wd, n).expect("rule holiday exists")
        };
        let last = |m, wd| CivilDate::last_weekday_of_month(year, m, wd).expect("month non-empty");
        vec![
            d(1, 1),                       // New Year's Day
            nth(1, Weekday::Monday, 3),    // Martin Luther King Jr. Day
            nth(2, Weekday::Monday, 3),    // Washington's Birthday
            last(5, Weekday::Monday),      // Memorial Day
            d(7, 4),                       // Independence Day
            nth(9, Weekday::Monday, 1),    // Labor Day
            nth(10, Weekday::Monday, 2),   // Columbus Day
            d(11, 11),                     // Veterans Day
            nth(11, Weekday::Thursday, 4), // Thanksgiving
            d(12, 25),                     // Christmas
        ]
    }
}

impl HolidayCalendar for UsFederalHolidays {
    fn is_holiday(&self, date: CivilDate) -> bool {
        self.holidays_for_year(date.year()).contains(&date)
    }
}

/// A calendar made of an explicit set of dates, optionally layered on top of
/// another calendar (e.g. US federal holidays plus a local festival).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FixedDates {
    dates: BTreeSet<CivilDate>,
}

impl FixedDates {
    /// Creates an empty fixed-date calendar.
    pub fn new() -> FixedDates {
        FixedDates::default()
    }

    /// Adds a holiday date.
    pub fn insert(&mut self, date: CivilDate) -> &mut FixedDates {
        self.dates.insert(date);
        self
    }

    /// Number of dates in the calendar.
    pub fn len(&self) -> usize {
        self.dates.len()
    }

    /// Returns `true` when the calendar holds no dates.
    pub fn is_empty(&self) -> bool {
        self.dates.is_empty()
    }
}

impl FromIterator<CivilDate> for FixedDates {
    fn from_iter<I: IntoIterator<Item = CivilDate>>(iter: I) -> FixedDates {
        FixedDates {
            dates: iter.into_iter().collect(),
        }
    }
}

impl Extend<CivilDate> for FixedDates {
    fn extend<I: IntoIterator<Item = CivilDate>>(&mut self, iter: I) {
        self.dates.extend(iter);
    }
}

impl HolidayCalendar for FixedDates {
    fn is_holiday(&self, date: CivilDate) -> bool {
        self.dates.contains(&date)
    }
}

/// The union of two calendars: a date is a holiday if either side says so.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Union<A, B>(pub A, pub B);

impl<A: HolidayCalendar, B: HolidayCalendar> HolidayCalendar for Union<A, B> {
    fn is_holiday(&self, date: CivilDate) -> bool {
        self.0.is_holiday(date) || self.1.is_holiday(date)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn date(y: i32, m: u8, d: u8) -> CivilDate {
        CivilDate::new(y, m, d).unwrap()
    }

    #[test]
    fn us_2017_holidays() {
        let cal = UsFederalHolidays::new();
        let hs = cal.holidays_for_year(2017);
        assert_eq!(hs.len(), 10);
        let expected = [
            date(2017, 1, 1),
            date(2017, 1, 16),
            date(2017, 2, 20),
            date(2017, 5, 29),
            date(2017, 7, 4),
            date(2017, 9, 4),
            date(2017, 10, 9),
            date(2017, 11, 11),
            date(2017, 11, 23),
            date(2017, 12, 25),
        ];
        assert_eq!(hs, expected);
    }

    #[test]
    fn excluded_covers_weekends_and_holidays() {
        let cal = UsFederalHolidays::new();
        assert!(cal.is_excluded(date(2017, 1, 7))); // Saturday
        assert!(cal.is_excluded(date(2017, 7, 4))); // Tuesday, holiday
        assert!(!cal.is_excluded(date(2017, 7, 5))); // Wednesday, ordinary
    }

    #[test]
    fn no_holidays_excludes_only_weekends() {
        let cal = NoHolidays;
        assert!(!cal.is_holiday(date(2017, 12, 25)));
        assert!(cal.is_excluded(date(2017, 12, 24))); // Sunday
        assert!(!cal.is_excluded(date(2017, 12, 25))); // Monday
    }

    #[test]
    fn fixed_dates_and_union() {
        let mut local = FixedDates::new();
        local.insert(date(2017, 6, 2)); // Italian Republic Day (a Friday)
        assert_eq!(local.len(), 1);
        assert!(!local.is_empty());
        let both = Union(UsFederalHolidays::new(), local);
        assert!(both.is_holiday(date(2017, 6, 2)));
        assert!(both.is_holiday(date(2017, 7, 4)));
        assert!(!both.is_holiday(date(2017, 6, 5)));
    }

    #[test]
    fn fixed_dates_from_iterator() {
        let cal: FixedDates = [date(2017, 1, 6), date(2017, 8, 15)].into_iter().collect();
        assert_eq!(cal.len(), 2);
        assert!(cal.is_holiday(date(2017, 8, 15)));
    }

    #[test]
    fn holidays_differ_across_years() {
        let cal = UsFederalHolidays::new();
        // Thanksgiving moves: 2017-11-23 vs 2018-11-22.
        assert!(cal.is_holiday(date(2017, 11, 23)));
        assert!(cal.is_holiday(date(2018, 11, 22)));
        assert!(!cal.is_holiday(date(2018, 11, 23)));
    }
}
