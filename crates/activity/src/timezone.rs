//! Timezone-shift inference between two activity profiles.
//!
//! Two aliases of the same person observed on forums with differently
//! configured clocks (or a user who moved timezones) produce activity
//! profiles that are circular rotations of each other. This module finds the
//! rotation maximizing cosine similarity — a lightweight re-implementation of
//! the core idea in La Morgia et al., "Time-zone geolocation of crowds in the
//! Dark Web" (ICDCS 2018), which the linking paper cites for its profile
//! construction.

use crate::profile::{DailyActivityProfile, HOURS};

/// The result of a shift search between two profiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftMatch {
    /// Hours to rotate the *second* profile so it best aligns with the
    /// first, in `-11..=12`.
    pub shift_hours: i32,
    /// Cosine similarity at the best shift.
    pub similarity: f64,
    /// Cosine similarity at shift 0, for comparison.
    pub unshifted_similarity: f64,
}

impl ShiftMatch {
    /// How much the best alignment improves over no alignment.
    pub fn gain(&self) -> f64 {
        self.similarity - self.unshifted_similarity
    }
}

/// Finds the circular shift of `b` (in whole hours) that maximizes cosine
/// similarity with `a`.
///
/// Ties are broken toward the smallest absolute shift, so two identical
/// profiles report `shift_hours == 0`.
///
/// ```
/// use darklight_activity::profile::DailyActivityProfile;
/// use darklight_activity::timezone::infer_shift;
///
/// let mut counts = [0u32; 24];
/// counts[9] = 5;
/// counts[21] = 3;
/// let a = DailyActivityProfile::from_counts(counts).unwrap();
/// let b = a.rotate(6); // the same person, observed on a clock 6h ahead
/// let m = infer_shift(&a, &b);
/// assert_eq!(m.shift_hours, -6);
/// assert!((m.similarity - 1.0).abs() < 1e-12);
/// ```
pub fn infer_shift(a: &DailyActivityProfile, b: &DailyActivityProfile) -> ShiftMatch {
    let unshifted = a.cosine(b);
    let mut best_shift = 0i32;
    let mut best_sim = unshifted;
    for raw in 1..HOURS as i32 {
        // Visit shifts in order of increasing |shift|: 1, -1, 2, -2, ...
        let shift = if raw % 2 == 1 {
            (raw + 1) / 2
        } else {
            -raw / 2
        };
        let sim = a.cosine(&b.rotate(shift));
        if sim > best_sim + 1e-15 {
            best_sim = sim;
            best_shift = shift;
        }
    }
    // Normalize to -11..=12.
    let norm = ((best_shift + 11).rem_euclid(24)) - 11;
    ShiftMatch {
        shift_hours: norm,
        similarity: best_sim,
        unshifted_similarity: unshifted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(hours: &[(usize, u32)]) -> DailyActivityProfile {
        let mut counts = [0u32; HOURS];
        for &(h, c) in hours {
            counts[h] = c;
        }
        DailyActivityProfile::from_counts(counts).unwrap()
    }

    #[test]
    fn identical_profiles_need_no_shift() {
        let a = profile(&[(8, 4), (12, 2), (20, 6)]);
        let m = infer_shift(&a, &a);
        assert_eq!(m.shift_hours, 0);
        assert!((m.similarity - 1.0).abs() < 1e-12);
        assert_eq!(m.gain(), 0.0);
    }

    #[test]
    fn recovers_known_rotation() {
        let a = profile(&[(3, 1), (9, 5), (15, 2)]);
        for shift in [-8, -3, 1, 5, 11] {
            let b = a.rotate(shift);
            let m = infer_shift(&a, &b);
            assert_eq!(m.shift_hours, -shift, "shift={shift}");
            assert!((m.similarity - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gain_positive_for_misaligned_profiles() {
        let a = profile(&[(9, 10), (10, 8)]);
        let b = a.rotate(7);
        let m = infer_shift(&a, &b);
        assert!(m.gain() > 0.9);
    }

    #[test]
    fn shift_range_normalized() {
        let a = profile(&[(0, 10)]);
        let b = a.rotate(12); // 12 and -12 are the same rotation
        let m = infer_shift(&a, &b);
        assert_eq!(m.shift_hours, 12);
    }

    #[test]
    fn noisy_rotation_still_found() {
        let a = profile(&[(8, 20), (9, 30), (10, 20), (22, 5)]);
        let mut shifted = a.rotate(5);
        // Add noise: merge with a small uniform-ish blob.
        shifted = shifted.merge(&profile(&[(1, 2), (14, 2)]));
        let m = infer_shift(&a, &shifted);
        assert_eq!(m.shift_hours, -5);
        assert!(m.similarity > 0.9);
    }
}
