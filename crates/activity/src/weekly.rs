//! Weekly activity profiles: the 7×24 extension of the daily profile.
//!
//! The paper discards weekend posts because "users typically change their
//! habits" on those days (§IV-B) — which means the weekday/weekend *split
//! itself* is signal. A [`WeeklyProfile`] keeps the full 168-bin
//! hour-of-week histogram, letting analyses compare weekday and weekend
//! behaviour, and provides Jensen-Shannon divergence as a
//! bounded, symmetric alternative to cosine for distribution comparison.

use crate::civil::CivilDateTime;

/// Bins per week (7 days × 24 hours).
pub const WEEK_HOURS: usize = 168;

/// A normalized 168-bin hour-of-week profile. Bin `d * 24 + h` holds the
/// share of posts in hour `h` of ISO weekday `d` (0 = Monday).
#[derive(Debug, Clone, PartialEq)]
pub struct WeeklyProfile {
    shares: Vec<f64>,
    total: u32,
}

impl WeeklyProfile {
    /// Builds a profile from unix timestamps (UTC). Returns `None` when
    /// `timestamps` is empty.
    pub fn from_timestamps(timestamps: &[i64]) -> Option<WeeklyProfile> {
        if timestamps.is_empty() {
            return None;
        }
        let mut counts = vec![0u32; WEEK_HOURS];
        for &t in timestamps {
            let dt = CivilDateTime::from_unix(t);
            let day = dt.date().weekday().iso_number() as usize - 1;
            counts[day * 24 + dt.hour() as usize] += 1;
        }
        let total: u32 = counts.iter().sum();
        let shares = counts.iter().map(|&c| c as f64 / total as f64).collect();
        Some(WeeklyProfile { shares, total })
    }

    /// The share of posts in hour `h` of ISO weekday `d` (0 = Monday).
    ///
    /// # Panics
    ///
    /// Panics if `day >= 7` or `hour >= 24`.
    pub fn share(&self, day: usize, hour: usize) -> f64 {
        assert!(day < 7 && hour < 24, "bin out of range");
        self.shares[day * 24 + hour]
    }

    /// Total posts behind the profile.
    pub fn total_posts(&self) -> u32 {
        self.total
    }

    /// All 168 shares in (day, hour) order.
    pub fn shares(&self) -> &[f64] {
        &self.shares
    }

    /// Fraction of activity on Saturday/Sunday.
    pub fn weekend_share(&self) -> f64 {
        self.shares[5 * 24..].iter().sum()
    }

    /// Cosine similarity with another weekly profile.
    pub fn cosine(&self, other: &WeeklyProfile) -> f64 {
        let dot: f64 = self
            .shares
            .iter()
            .zip(&other.shares)
            .map(|(a, b)| a * b)
            .sum();
        let na: f64 = self.shares.iter().map(|a| a * a).sum::<f64>().sqrt();
        let nb: f64 = other.shares.iter().map(|b| b * b).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Jensen-Shannon divergence with another profile, in bits; 0 for
    /// identical distributions, 1 for disjoint supports.
    pub fn js_divergence(&self, other: &WeeklyProfile) -> f64 {
        let kl = |p: &[f64], q: &[f64]| -> f64 {
            p.iter()
                .zip(q)
                .filter(|&(&pi, _)| pi > 0.0)
                .map(|(&pi, &qi)| pi * (pi / qi).log2())
                .sum()
        };
        let m: Vec<f64> = self
            .shares
            .iter()
            .zip(&other.shares)
            .map(|(a, b)| (a + b) / 2.0)
            .collect();
        (kl(&self.shares, &m) + kl(&other.shares, &m)) / 2.0
    }

    /// Collapses to a 24-bin daily view (summing over weekdays).
    pub fn daily_shares(&self) -> [f64; 24] {
        let mut out = [0.0; 24];
        for day in 0..7 {
            for (hour, o) in out.iter_mut().enumerate() {
                *o += self.shares[day * 24 + hour];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::civil::CivilDateTime;

    fn at(y: i32, m: u8, d: u8, h: u8) -> i64 {
        CivilDateTime::new(y, m, d, h, 0, 0).unwrap().to_unix()
    }

    #[test]
    fn bins_by_weekday_and_hour() {
        // 2017-02-06 is a Monday; 2017-02-11 a Saturday.
        let ts = [at(2017, 2, 6, 9), at(2017, 2, 6, 9), at(2017, 2, 11, 22)];
        let p = WeeklyProfile::from_timestamps(&ts).unwrap();
        assert!((p.share(0, 9) - 2.0 / 3.0).abs() < 1e-12);
        assert!((p.share(5, 22) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.total_posts(), 3);
    }

    #[test]
    fn weekend_share() {
        let ts = [
            at(2017, 2, 6, 9),  // Mon
            at(2017, 2, 11, 9), // Sat
            at(2017, 2, 12, 9), // Sun
            at(2017, 2, 8, 9),  // Wed
        ];
        let p = WeeklyProfile::from_timestamps(&ts).unwrap();
        assert!((p.weekend_share() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shares_sum_to_one() {
        let ts: Vec<i64> = (0..100).map(|i| at(2017, 3, 1, 0) + i * 3671).collect();
        let p = WeeklyProfile::from_timestamps(&ts).unwrap();
        let sum: f64 = p.shares().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_rejected() {
        assert!(WeeklyProfile::from_timestamps(&[]).is_none());
    }

    #[test]
    fn cosine_self_is_one() {
        let ts = [at(2017, 2, 6, 9), at(2017, 2, 7, 20)];
        let p = WeeklyProfile::from_timestamps(&ts).unwrap();
        assert!((p.cosine(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn js_divergence_bounds() {
        let a = WeeklyProfile::from_timestamps(&[at(2017, 2, 6, 9)]).unwrap();
        let b = WeeklyProfile::from_timestamps(&[at(2017, 2, 7, 20)]).unwrap();
        assert_eq!(a.js_divergence(&a), 0.0);
        // Disjoint supports: exactly 1 bit.
        assert!((a.js_divergence(&b) - 1.0).abs() < 1e-12);
        // Symmetric.
        assert!((a.js_divergence(&b) - b.js_divergence(&a)).abs() < 1e-12);
    }

    #[test]
    fn daily_collapse_matches() {
        let ts = [at(2017, 2, 6, 9), at(2017, 2, 7, 9), at(2017, 2, 8, 21)];
        let p = WeeklyProfile::from_timestamps(&ts).unwrap();
        let daily = p.daily_shares();
        assert!((daily[9] - 2.0 / 3.0).abs() < 1e-12);
        assert!((daily[21] - 1.0 / 3.0).abs() < 1e-12);
        let sum: f64 = daily.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bin out of range")]
    fn share_bounds_checked() {
        let p = WeeklyProfile::from_timestamps(&[at(2017, 2, 6, 9)]).unwrap();
        p.share(7, 0);
    }
}
