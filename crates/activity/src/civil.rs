//! Proleptic-Gregorian civil-time arithmetic.
//!
//! Implements the minimal calendar algebra the pipeline needs — converting
//! unix timestamps to calendar dates and hours (and back), and computing
//! weekdays — using the classic days-from-civil / civil-from-days algorithms
//! (Howard Hinnant's formulation). Everything is UTC; per-forum timezone
//! offsets are applied as plain second shifts before conversion.

use std::fmt;

/// Seconds in a civil day.
pub const SECS_PER_DAY: i64 = 86_400;

/// A day of the week. `Monday` through `Sunday`, ISO order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Weekday {
    /// Monday (ISO weekday 1).
    Monday,
    /// Tuesday (ISO weekday 2).
    Tuesday,
    /// Wednesday (ISO weekday 3).
    Wednesday,
    /// Thursday (ISO weekday 4).
    Thursday,
    /// Friday (ISO weekday 5).
    Friday,
    /// Saturday (ISO weekday 6).
    Saturday,
    /// Sunday (ISO weekday 7).
    Sunday,
}

impl Weekday {
    /// All weekdays in ISO order, Monday first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// Returns `true` for Saturday and Sunday.
    ///
    /// ```
    /// use darklight_activity::civil::Weekday;
    /// assert!(Weekday::Saturday.is_weekend());
    /// assert!(!Weekday::Wednesday.is_weekend());
    /// ```
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }

    /// ISO weekday number: Monday = 1 … Sunday = 7.
    pub fn iso_number(self) -> u8 {
        match self {
            Weekday::Monday => 1,
            Weekday::Tuesday => 2,
            Weekday::Wednesday => 3,
            Weekday::Thursday => 4,
            Weekday::Friday => 5,
            Weekday::Saturday => 6,
            Weekday::Sunday => 7,
        }
    }

    fn from_days_from_epoch(days: i64) -> Weekday {
        // 1970-01-01 was a Thursday.
        let idx = (days + 3).rem_euclid(7); // 0 = Monday
        Weekday::ALL[idx as usize]
    }
}

impl fmt::Display for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Weekday::Monday => "Monday",
            Weekday::Tuesday => "Tuesday",
            Weekday::Wednesday => "Wednesday",
            Weekday::Thursday => "Thursday",
            Weekday::Friday => "Friday",
            Weekday::Saturday => "Saturday",
            Weekday::Sunday => "Sunday",
        };
        f.write_str(name)
    }
}

/// A calendar date in the proleptic Gregorian calendar (UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CivilDate {
    year: i32,
    month: u8,
    day: u8,
}

impl CivilDate {
    /// Creates a date, validating the month and the day-of-month range.
    ///
    /// Returns `None` for out-of-range components (e.g. February 30).
    ///
    /// ```
    /// use darklight_activity::civil::CivilDate;
    /// assert!(CivilDate::new(2017, 2, 29).is_none());
    /// assert!(CivilDate::new(2016, 2, 29).is_some());
    /// ```
    pub fn new(year: i32, month: u8, day: u8) -> Option<CivilDate> {
        if !(1..=12).contains(&month) {
            return None;
        }
        if day == 0 || day > days_in_month(year, month) {
            return None;
        }
        Some(CivilDate { year, month, day })
    }

    /// The calendar year.
    pub fn year(self) -> i32 {
        self.year
    }

    /// The calendar month, 1–12.
    pub fn month(self) -> u8 {
        self.month
    }

    /// The day of month, 1-based.
    pub fn day(self) -> u8 {
        self.day
    }

    /// Number of days since the unix epoch (1970-01-01 = 0; earlier dates
    /// are negative).
    pub fn days_from_epoch(self) -> i64 {
        days_from_civil(self.year, self.month, self.day)
    }

    /// Builds a date from a count of days since the unix epoch.
    pub fn from_days_from_epoch(days: i64) -> CivilDate {
        let (year, month, day) = civil_from_days(days);
        CivilDate { year, month, day }
    }

    /// The weekday this date falls on.
    ///
    /// ```
    /// use darklight_activity::civil::{CivilDate, Weekday};
    /// let date = CivilDate::new(2017, 1, 1).unwrap();
    /// assert_eq!(date.weekday(), Weekday::Sunday);
    /// ```
    pub fn weekday(self) -> Weekday {
        Weekday::from_days_from_epoch(self.days_from_epoch())
    }

    /// The date `n` days after this one (negative `n` goes backwards).
    pub fn plus_days(self, n: i64) -> CivilDate {
        CivilDate::from_days_from_epoch(self.days_from_epoch() + n)
    }

    /// The n-th (1-based) occurrence of `weekday` within this date's month,
    /// e.g. the 3rd Monday of January. Returns `None` when the month has no
    /// n-th occurrence (n = 5 in short months).
    pub fn nth_weekday_of_month(
        year: i32,
        month: u8,
        weekday: Weekday,
        n: u8,
    ) -> Option<CivilDate> {
        if n == 0 || !(1..=12).contains(&month) {
            return None;
        }
        let first = CivilDate::new(year, month, 1)?;
        let offset =
            (weekday.iso_number() as i64 - first.weekday().iso_number() as i64).rem_euclid(7);
        let day = 1 + offset + 7 * (n as i64 - 1);
        if day > days_in_month(year, month) as i64 {
            None
        } else {
            CivilDate::new(year, month, day as u8)
        }
    }

    /// The last occurrence of `weekday` within this date's month, e.g. the
    /// last Monday of May.
    pub fn last_weekday_of_month(year: i32, month: u8, weekday: Weekday) -> Option<CivilDate> {
        let last_day = days_in_month(year, month);
        let last = CivilDate::new(year, month, last_day)?;
        let back = (last.weekday().iso_number() as i64 - weekday.iso_number() as i64).rem_euclid(7);
        Some(last.plus_days(-back))
    }
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A calendar date plus a time of day, second resolution, UTC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CivilDateTime {
    date: CivilDate,
    hour: u8,
    minute: u8,
    second: u8,
}

impl CivilDateTime {
    /// Converts a unix timestamp (seconds, UTC) to civil time.
    ///
    /// ```
    /// use darklight_activity::civil::CivilDateTime;
    /// let dt = CivilDateTime::from_unix(1_483_228_800); // 2017-01-01T00:00:00Z
    /// assert_eq!(dt.date().year(), 2017);
    /// assert_eq!(dt.hour(), 0);
    /// ```
    pub fn from_unix(unix: i64) -> CivilDateTime {
        let days = unix.div_euclid(SECS_PER_DAY);
        let secs = unix.rem_euclid(SECS_PER_DAY);
        CivilDateTime {
            date: CivilDate::from_days_from_epoch(days),
            hour: (secs / 3600) as u8,
            minute: (secs % 3600 / 60) as u8,
            second: (secs % 60) as u8,
        }
    }

    /// Builds a civil date-time from components. Returns `None` when the
    /// date is invalid or the time of day is out of range.
    pub fn new(
        year: i32,
        month: u8,
        day: u8,
        hour: u8,
        minute: u8,
        second: u8,
    ) -> Option<CivilDateTime> {
        if hour > 23 || minute > 59 || second > 59 {
            return None;
        }
        Some(CivilDateTime {
            date: CivilDate::new(year, month, day)?,
            hour,
            minute,
            second,
        })
    }

    /// Converts back to a unix timestamp in seconds.
    pub fn to_unix(self) -> i64 {
        self.date.days_from_epoch() * SECS_PER_DAY
            + self.hour as i64 * 3600
            + self.minute as i64 * 60
            + self.second as i64
    }

    /// The date component.
    pub fn date(self) -> CivilDate {
        self.date
    }

    /// Hour of day, 0–23.
    pub fn hour(self) -> u8 {
        self.hour
    }

    /// Minute, 0–59.
    pub fn minute(self) -> u8 {
        self.minute
    }

    /// Second, 0–59.
    pub fn second(self) -> u8 {
        self.second
    }
}

impl fmt::Display for CivilDateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}T{:02}:{:02}:{:02}Z",
            self.date, self.hour, self.minute, self.second
        )
    }
}

/// Returns `true` if `year` is a Gregorian leap year.
///
/// ```
/// use darklight_activity::civil::is_leap_year;
/// assert!(is_leap_year(2016));
/// assert!(!is_leap_year(1900));
/// assert!(is_leap_year(2000));
/// ```
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in the given month of the given year.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

// Hinnant's days_from_civil: days since 1970-01-01.
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = y as i64 - if m <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // March = 0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

// Hinnant's civil_from_days: inverse of the above.
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    ((y + if m <= 2 { 1 } else { 0 }) as i32, m as u8, d as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_thursday() {
        let d = CivilDate::from_days_from_epoch(0);
        assert_eq!(d, CivilDate::new(1970, 1, 1).unwrap());
        assert_eq!(d.weekday(), Weekday::Thursday);
    }

    #[test]
    fn known_dates_round_trip() {
        let cases = [
            (0, (1970, 1, 1)),
            (1_483_228_800, (2017, 1, 1)),
            (1_514_764_799, (2017, 12, 31)),
            (951_782_400, (2000, 2, 29)),
            (-86_400, (1969, 12, 31)),
        ];
        for (unix, (y, m, d)) in cases {
            let dt = CivilDateTime::from_unix(unix);
            assert_eq!(
                (dt.date().year(), dt.date().month(), dt.date().day()),
                (y, m, d),
                "unix={unix}"
            );
        }
    }

    #[test]
    fn to_unix_inverts_from_unix() {
        for unix in [0i64, 1, -1, 1_500_000_000, -1_000_000_000, 86_399, 86_400] {
            assert_eq!(CivilDateTime::from_unix(unix).to_unix(), unix);
        }
    }

    #[test]
    fn hours_minutes_seconds_extracted() {
        // 2017-06-15T13:45:30Z
        let dt = CivilDateTime::new(2017, 6, 15, 13, 45, 30).unwrap();
        let back = CivilDateTime::from_unix(dt.to_unix());
        assert_eq!(back, dt);
        assert_eq!(back.hour(), 13);
        assert_eq!(back.minute(), 45);
        assert_eq!(back.second(), 30);
    }

    #[test]
    fn invalid_dates_rejected() {
        assert!(CivilDate::new(2017, 0, 1).is_none());
        assert!(CivilDate::new(2017, 13, 1).is_none());
        assert!(CivilDate::new(2017, 2, 29).is_none());
        assert!(CivilDate::new(2017, 4, 31).is_none());
        assert!(CivilDate::new(2017, 1, 0).is_none());
        assert!(CivilDateTime::new(2017, 1, 1, 24, 0, 0).is_none());
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2016));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2017));
        assert_eq!(days_in_month(2016, 2), 29);
        assert_eq!(days_in_month(2017, 2), 28);
    }

    #[test]
    fn weekday_progression() {
        // 2017-01-01 was a Sunday; subsequent days cycle in ISO order.
        let base = CivilDate::new(2017, 1, 1).unwrap();
        let expect = [
            Weekday::Sunday,
            Weekday::Monday,
            Weekday::Tuesday,
            Weekday::Wednesday,
            Weekday::Thursday,
            Weekday::Friday,
            Weekday::Saturday,
        ];
        for (i, wd) in expect.iter().enumerate() {
            assert_eq!(base.plus_days(i as i64).weekday(), *wd);
        }
    }

    #[test]
    fn nth_weekday() {
        // MLK day 2017: 3rd Monday of January = Jan 16.
        let mlk = CivilDate::nth_weekday_of_month(2017, 1, Weekday::Monday, 3).unwrap();
        assert_eq!(mlk, CivilDate::new(2017, 1, 16).unwrap());
        // Thanksgiving 2017: 4th Thursday of November = Nov 23.
        let tg = CivilDate::nth_weekday_of_month(2017, 11, Weekday::Thursday, 4).unwrap();
        assert_eq!(tg, CivilDate::new(2017, 11, 23).unwrap());
        // No 5th Monday in February 2017.
        assert!(CivilDate::nth_weekday_of_month(2017, 2, Weekday::Monday, 5).is_none());
    }

    #[test]
    fn last_weekday() {
        // Memorial day 2017: last Monday of May = May 29.
        let md = CivilDate::last_weekday_of_month(2017, 5, Weekday::Monday).unwrap();
        assert_eq!(md, CivilDate::new(2017, 5, 29).unwrap());
    }

    #[test]
    fn display_formats() {
        let dt = CivilDateTime::new(2017, 3, 5, 7, 8, 9).unwrap();
        assert_eq!(dt.to_string(), "2017-03-05T07:08:09Z");
        assert_eq!(dt.date().to_string(), "2017-03-05");
        assert_eq!(Weekday::Friday.to_string(), "Friday");
    }

    #[test]
    fn negative_timestamps() {
        let dt = CivilDateTime::from_unix(-1);
        assert_eq!(dt.to_string(), "1969-12-31T23:59:59Z");
    }
}
