//! Single-profile timezone geolocation.
//!
//! The linking paper builds on La Morgia et al., "Time-zone geolocation of
//! crowds in the Dark Web" (ICDCS 2018): a forum user's UTC activity
//! profile is a circular shift of a *canonical human day* — people mostly
//! post between the morning and just before sleep, with an evening peak.
//! Finding the rotation that best aligns a profile with that template
//! estimates the poster's UTC offset, which narrows a suspect pool by
//! geography before any text is read.
//!
//! The template here is a smooth wake/evening-peak curve; accuracy on
//! synthetic single-peak users is within ±2 hours (see tests), matching
//! the coarse, crowd-level claims of the original paper.

use crate::profile::{DailyActivityProfile, HOURS};

/// The canonical diurnal template: relative posting propensity per *local*
/// hour. Near zero at night (02–06 local), rising through the morning,
/// evening peak around 21:00.
pub const DIURNAL_TEMPLATE: [f64; HOURS] = [
    0.55, 0.35, 0.18, 0.10, 0.08, 0.10, 0.20, 0.40, 0.60, 0.72, 0.80, 0.85, 0.88, 0.85, 0.82, 0.85,
    0.88, 0.92, 0.98, 1.05, 1.12, 1.15, 1.05, 0.80,
];

/// The result of a geolocation estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoEstimate {
    /// Estimated UTC offset in hours (`-11..=12`): the shift that maps the
    /// observed UTC profile onto the local-time template.
    pub utc_offset_hours: i32,
    /// Cosine similarity with the template at the best shift, in `[0, 1]`.
    pub fit: f64,
    /// Similarity margin over the second-best shift — near zero means the
    /// profile is too flat or too multi-modal to place.
    pub margin: f64,
}

impl GeoEstimate {
    /// `true` when the estimate is trustworthy: decent template fit and a
    /// clear winner among shifts.
    pub fn is_confident(&self) -> bool {
        self.fit > 0.8 && self.margin > 0.01
    }
}

/// Estimates the UTC offset of a profile's owner.
///
/// ```
/// use darklight_activity::geolocate::estimate_utc_offset;
/// use darklight_activity::profile::DailyActivityProfile;
///
/// // A user posting 19:00–23:00 local, observed in UTC from UTC+5.
/// let mut counts = [0u32; 24];
/// for local in 19..=23 {
///     counts[(local + 24 - 5) % 24] = 10;
/// }
/// let profile = DailyActivityProfile::from_counts(counts).unwrap();
/// let est = estimate_utc_offset(&profile);
/// assert!((est.utc_offset_hours - 5).abs() <= 2);
/// ```
pub fn estimate_utc_offset(profile: &DailyActivityProfile) -> GeoEstimate {
    let mut scored: Vec<(i32, f64)> = (0..HOURS as i32)
        .map(|shift| {
            // A user at UTC+k posts at local hour h in UTC hour (h - k).
            // Rotating the observed profile by +k maps it back to local.
            let local = rotate_shares(profile.shares(), shift);
            (shift, cosine(&local, &DIURNAL_TEMPLATE))
        })
        .collect();
    scored.sort_by(|a, b| darklight_order::cmp_f64_desc(a.1, b.1));
    let (best_shift, fit) = scored[0];
    let margin = fit - scored[1].1;
    // Normalize to -11..=12.
    let offset = ((best_shift + 11).rem_euclid(24)) - 11;
    GeoEstimate {
        utc_offset_hours: offset,
        fit,
        margin,
    }
}

fn rotate_shares(shares: &[f64; HOURS], shift: i32) -> [f64; HOURS] {
    let mut out = [0.0; HOURS];
    for (h, &v) in shares.iter().enumerate() {
        let nh = (h as i32 + shift).rem_euclid(HOURS as i32) as usize;
        out[nh] = v;
    }
    out
}

fn cosine(a: &[f64; HOURS], b: &[f64; HOURS]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A realistic "template-following" user observed from `offset` hours
    /// east of UTC.
    fn observed_profile(offset: i32) -> DailyActivityProfile {
        let mut counts = [0u32; HOURS];
        for (local, &propensity) in DIURNAL_TEMPLATE.iter().enumerate() {
            let utc = ((local as i32 - offset).rem_euclid(24)) as usize;
            counts[utc] = (propensity * 100.0) as u32;
        }
        DailyActivityProfile::from_counts(counts).unwrap()
    }

    #[test]
    fn recovers_offsets() {
        for offset in [-8, -5, -1, 0, 2, 5, 9, 12] {
            let est = estimate_utc_offset(&observed_profile(offset));
            assert_eq!(est.utc_offset_hours, offset, "offset {offset}");
            assert!(est.fit > 0.95);
            assert!(est.is_confident(), "{est:?}");
        }
    }

    #[test]
    fn evening_only_poster_within_two_hours() {
        // Someone who only posts 20:00–23:00 local, living at UTC-6.
        let mut counts = [0u32; HOURS];
        for local in 20..=23usize {
            counts[(local + 6) % 24] = 10;
        }
        let p = DailyActivityProfile::from_counts(counts).unwrap();
        let est = estimate_utc_offset(&p);
        assert!(
            (est.utc_offset_hours - (-6)).abs() <= 2,
            "estimated {}",
            est.utc_offset_hours
        );
    }

    #[test]
    fn flat_profile_not_confident() {
        let p = DailyActivityProfile::from_counts([4u32; HOURS]).unwrap();
        let est = estimate_utc_offset(&p);
        assert!(est.margin < 1e-9, "flat profile margin {}", est.margin);
        assert!(!est.is_confident());
    }

    #[test]
    fn offset_range_normalized() {
        for offset in -11..=12 {
            let est = estimate_utc_offset(&observed_profile(offset));
            assert!((-11..=12).contains(&est.utc_offset_hours));
        }
    }

    #[test]
    fn template_shape_sane() {
        // Night trough below morning, evening peak highest.
        let night: f64 = DIURNAL_TEMPLATE[3..6].iter().sum();
        let evening: f64 = DIURNAL_TEMPLATE[19..22].iter().sum();
        assert!(evening > night * 5.0);
        assert_eq!(DIURNAL_TEMPLATE.len(), 24);
    }
}
