//! Temporal substrate for the `darklight` alias-linking pipeline.
//!
//! The paper fingerprints a forum user by *when* they post: a 24-bin
//! histogram of posting hours (the *daily activity profile*, eq. 1 of the
//! paper), computed over UTC-aligned timestamps with weekends and holidays
//! excluded. This crate provides everything needed to build such profiles
//! from raw unix timestamps, without any external time library:
//!
//! * [`civil`] — proleptic-Gregorian civil-time arithmetic (unix seconds to
//!   year/month/day/hour and back, weekday computation, leap years);
//! * [`calendar`] — configurable holiday calendars (US federal holidays by
//!   rule, plus custom fixed dates) and the weekend/holiday exclusion policy;
//! * [`profile`] — the [`profile::DailyActivityProfile`]
//!   itself: construction, normalization, cosine similarity, entropy;
//! * [`timezone`] — circular cross-correlation between profiles to infer the
//!   most likely timezone shift separating two aliases (an extension in the
//!   spirit of La Morgia et al., "Time-zone geolocation of crowds in the
//!   Dark Web", ICDCS 2018, which the paper builds on).
//!
//! # Example
//!
//! ```
//! use darklight_activity::profile::{ProfileBuilder, ProfilePolicy};
//!
//! // A user who posts every weekday at 9:00 and 21:00 UTC during Feb 2017.
//! let mut timestamps = Vec::new();
//! for day in 0..28 {
//!     let midnight = 1_485_907_200 + day * 86_400; // 2017-02-01T00:00:00Z
//!     timestamps.push(midnight + 9 * 3600);
//!     timestamps.push(midnight + 21 * 3600);
//! }
//! let builder = ProfileBuilder::new(ProfilePolicy::default());
//! let profile = builder.build(&timestamps).expect("enough weekday posts");
//! assert!(profile.share(9) > 0.3 && profile.share(21) > 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod civil;
pub mod geolocate;
pub mod profile;
pub mod timezone;
pub mod weekly;

pub use calendar::{HolidayCalendar, UsFederalHolidays};
pub use civil::{CivilDate, CivilDateTime, Weekday};
pub use geolocate::{estimate_utc_offset, GeoEstimate};
pub use profile::{DailyActivityProfile, ProfileBuilder, ProfileError, ProfilePolicy};
pub use timezone::infer_shift;
pub use weekly::WeeklyProfile;
