//! A minimal JSON value tree and serializer.
//!
//! The observability subsystem must not pull in serde (the build
//! environment is offline), so metric snapshots are rendered through this
//! hand-rolled writer. Objects use [`BTreeMap`] so key order — and
//! therefore the serialized bytes — are deterministic, which the golden
//! schema tests rely on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (counters, bucket counts, nanosecond totals).
    UInt(u64),
    /// A signed integer (gauges).
    Int(i64),
    /// A finite float; NaN and infinities render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered list.
    Array(Vec<Json>),
    /// A key-sorted object.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(BTreeMap::new())
    }

    /// Inserts `key` into an object value; panics on non-objects.
    pub fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Object(map) => {
                map.insert(key.to_string(), value);
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
    }

    /// The object's keys, if this is an object.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Object(map) => map.keys().map(String::as_str).collect(),
            _ => Vec::new(),
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders human-readable JSON with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => write_float(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // `{}` on f64 round-trips; append `.0` so integral floats stay floats
    // on re-read.
    let s = format!("{x}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::UInt(42).render(), "42");
        assert_eq!(Json::Int(-7).render(), "-7");
        assert_eq!(
            Json::Str("a\"b\\c\nd".into()).render(),
            "\"a\\\"b\\\\c\\nd\""
        );
    }

    #[test]
    fn floats_stay_floats_and_nonfinite_is_null() {
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(3.0).render(), "3.0");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn objects_render_with_sorted_keys() {
        let mut obj = Json::object();
        obj.set("zebra", Json::UInt(1));
        obj.set("apple", Json::UInt(2));
        assert_eq!(obj.render(), "{\"apple\":2,\"zebra\":1}");
    }

    #[test]
    fn nested_structures_round_trip_shape() {
        let mut inner = Json::object();
        inner.set("n", Json::UInt(3));
        let root = Json::Array(vec![inner, Json::Null, Json::Bool(false)]);
        assert_eq!(root.render(), "[{\"n\":3},null,false]");
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(Json::Str("\u{01}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn pretty_rendering_is_indented_and_parseable_shape() {
        let mut obj = Json::object();
        obj.set("list", Json::Array(vec![Json::UInt(1), Json::UInt(2)]));
        obj.set("empty", Json::object());
        let pretty = obj.render_pretty();
        assert!(pretty.contains("\"list\": [\n"));
        assert!(pretty.contains("\"empty\": {}"));
        assert!(pretty.ends_with("}\n"));
    }
}
