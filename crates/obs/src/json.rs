//! A minimal JSON value tree, serializer, and parser.
//!
//! The observability subsystem must not pull in serde (the build
//! environment is offline), so metric snapshots are rendered through this
//! hand-rolled writer. Objects use [`BTreeMap`] so key order — and
//! therefore the serialized bytes — are deterministic, which the golden
//! schema tests rely on. [`Json::parse`] is the matching reader: the
//! batch-attribution checkpoint files are written with this writer and
//! read back with this parser on resume, so neither side needs an
//! external crate.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (counters, bucket counts, nanosecond totals).
    UInt(u64),
    /// A signed integer (gauges).
    Int(i64),
    /// A finite float; NaN and infinities render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered list.
    Array(Vec<Json>),
    /// A key-sorted object.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(BTreeMap::new())
    }

    /// Inserts `key` into an object value; panics on non-objects.
    pub fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Object(map) => {
                map.insert(key.to_string(), value);
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
    }

    /// The object's keys, if this is an object.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Object(map) => map.keys().map(String::as_str).collect(),
            _ => Vec::new(),
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders human-readable JSON with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => write_float(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// A parse failure: byte offset plus a short explanation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.reason
        )
    }
}

impl std::error::Error for JsonParseError {}

impl Json {
    /// Parses a JSON document.
    ///
    /// Numbers parse as [`Json::UInt`] when they are non-negative
    /// integers, [`Json::Int`] for negative integers, and [`Json::Float`]
    /// otherwise — the same partition the writer emits (a `Float` always
    /// carries a `.` or exponent). Trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError`] with the byte offset of the first
    /// malformed construct.
    pub fn parse(input: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after document"));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, reason: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            reason: reason.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote/escape.
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            // Surrogates never appear in writer output
                            // (it emits \u only for control characters).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("\\u escape is not a scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                None => return Err(self.error("unterminated string")),
                Some(_) => unreachable!("fast-path loop stops only at quote/escape/end"),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' => {
                    fractional = true;
                    self.pos += 1;
                }
                b'-' if fractional => self.pos += 1, // exponent sign
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if fractional {
            let x: f64 = text
                .parse()
                .map_err(|_| self.error("malformed float literal"))?;
            return Ok(Json::Float(x));
        }
        if text.starts_with('-') {
            let n: i64 = text
                .parse()
                .map_err(|_| self.error("integer out of range"))?;
            Ok(Json::Int(n))
        } else {
            let n: u64 = text
                .parse()
                .map_err(|_| self.error("integer out of range"))?;
            Ok(Json::UInt(n))
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // `{}` on f64 round-trips; append `.0` so integral floats stay floats
    // on re-read.
    let s = format!("{x}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::UInt(42).render(), "42");
        assert_eq!(Json::Int(-7).render(), "-7");
        assert_eq!(
            Json::Str("a\"b\\c\nd".into()).render(),
            "\"a\\\"b\\\\c\\nd\""
        );
    }

    #[test]
    fn floats_stay_floats_and_nonfinite_is_null() {
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(3.0).render(), "3.0");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn objects_render_with_sorted_keys() {
        let mut obj = Json::object();
        obj.set("zebra", Json::UInt(1));
        obj.set("apple", Json::UInt(2));
        assert_eq!(obj.render(), "{\"apple\":2,\"zebra\":1}");
    }

    #[test]
    fn nested_structures_round_trip_shape() {
        let mut inner = Json::object();
        inner.set("n", Json::UInt(3));
        let root = Json::Array(vec![inner, Json::Null, Json::Bool(false)]);
        assert_eq!(root.render(), "[{\"n\":3},null,false]");
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(Json::Str("\u{01}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut inner = Json::object();
        inner.set("count", Json::UInt(3));
        inner.set("delta", Json::Int(-7));
        inner.set("rate", Json::Float(0.25));
        inner.set("big", Json::Float(3.0));
        inner.set("label", Json::Str("tab\there \"quoted\" \u{01}".into()));
        let root = Json::Array(vec![
            inner,
            Json::Null,
            Json::Bool(true),
            Json::Array(vec![]),
            Json::object(),
        ]);
        assert_eq!(Json::parse(&root.render()).unwrap(), root);
        assert_eq!(Json::parse(&root.render_pretty()).unwrap(), root);
    }

    #[test]
    fn parse_number_partition_matches_writer() {
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("42.0").unwrap(), Json::Float(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Float(-1500.0));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "nul", "1 2", "\"open", "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
        let err = Json::parse("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn parse_unicode_escape() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".into())
        );
    }

    #[test]
    fn pretty_rendering_is_indented_and_parseable_shape() {
        let mut obj = Json::object();
        obj.set("list", Json::Array(vec![Json::UInt(1), Json::UInt(2)]));
        obj.set("empty", Json::object());
        let pretty = obj.render_pretty();
        assert!(pretty.contains("\"list\": [\n"));
        assert!(pretty.contains("\"empty\": {}"));
        assert!(pretty.ends_with("}\n"));
    }
}
