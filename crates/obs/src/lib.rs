//! # darklight-obs — pipeline observability
//!
//! A zero-dependency instrumentation subsystem for the darklight
//! attribution pipeline. It provides a thread-safe metrics registry
//! (counters, gauges, monotonic stage timers, and latency histograms
//! with fixed log₂-scale buckets), RAII scoped-timer guards, and a
//! serializer that renders a snapshot as deterministic JSON — no serde,
//! no external crates.
//!
//! ## Design
//!
//! The entry point is [`PipelineMetrics`], a cheaply cloneable handle
//! that is **off by default**. A disabled handle resolves every
//! instrument to a no-op cell, so instrumented code pays one branch (or
//! nothing, where call sites gate on [`PipelineMetrics::is_enabled`])
//! and never allocates. Because instruments only *record* — they are
//! never read back by pipeline code — enabling metrics provably cannot
//! change attribution output; an integration test in the root crate
//! pins that guarantee.
//!
//! Hot paths should resolve instruments once, outside the loop:
//!
//! ```
//! use darklight_obs::PipelineMetrics;
//!
//! let metrics = PipelineMetrics::enabled();
//! let scored = metrics.counter("attrib.queries_scored");
//! for _ in 0..1000 {
//!     scored.incr(); // one relaxed atomic add, no lock, no lookup
//! }
//! let _stage = metrics.timer("attrib.total").start(); // RAII: records on drop
//! assert!(metrics.snapshot().render().contains("attrib.queries_scored"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod registry;

use std::sync::Arc;
use std::time::Instant;

pub use json::Json;
pub use registry::{bucket_index, Registry, HISTOGRAM_BUCKETS};

use registry::{CounterCell, GaugeCell, HistogramCell, TimerCell};

/// The shared, cloneable metrics handle threaded through the pipeline.
///
/// Default-constructed handles are disabled: every instrument they hand
/// out is a no-op and [`snapshot`](PipelineMetrics::snapshot) returns an
/// empty-sectioned document. Clones share the same underlying registry,
/// so a handle given to `Polisher`, `FeatureExtractor`, and `TwoStage`
/// aggregates into one snapshot.
#[derive(Clone, Default)]
pub struct PipelineMetrics {
    inner: Option<Arc<Registry>>,
}

impl std::fmt::Debug for PipelineMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineMetrics")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Equality is *configuration* equality: two handles compare equal when
/// both are disabled or both point at the same registry. This lets
/// configuration structs that carry a handle keep deriving `PartialEq`
/// without metric contents affecting config identity.
impl PartialEq for PipelineMetrics {
    fn eq(&self, other: &PipelineMetrics) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl PipelineMetrics {
    /// A disabled handle: all instruments are no-ops.
    pub fn disabled() -> PipelineMetrics {
        PipelineMetrics { inner: None }
    }

    /// An enabled handle backed by a fresh registry.
    pub fn enabled() -> PipelineMetrics {
        PipelineMetrics {
            inner: Some(Arc::new(Registry::new())),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves the counter `name` (no-op when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.inner.as_ref().map(|r| r.counter(name)),
        }
    }

    /// Resolves the gauge `name` (no-op when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            cell: self.inner.as_ref().map(|r| r.gauge(name)),
        }
    }

    /// Resolves the stage timer `name` (no-op when disabled).
    pub fn timer(&self, name: &str) -> Timer {
        Timer {
            cell: self.inner.as_ref().map(|r| r.timer(name)),
        }
    }

    /// Resolves the histogram `name` (no-op when disabled).
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram {
            cell: self.inner.as_ref().map(|r| r.histogram(name)),
        }
    }

    /// A point-in-time JSON view of every instrument. Disabled handles
    /// return a document with the four (empty) sections so consumers see
    /// a stable schema either way.
    pub fn snapshot(&self) -> Json {
        match &self.inner {
            Some(registry) => registry.snapshot(),
            None => Registry::new().snapshot(),
        }
    }

    /// Renders [`snapshot`](PipelineMetrics::snapshot) as pretty JSON.
    pub fn to_json_pretty(&self) -> String {
        self.snapshot().render_pretty()
    }
}

/// A resolved counter handle. See [`PipelineMetrics::counter`].
/// The `Default` handle is a no-op, like every instrument resolved from
/// a disabled [`PipelineMetrics`].
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Option<Arc<CounterCell>>,
}

impl Counter {
    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.add(n);
        }
    }

    /// Adds one event.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.get())
    }
}

/// A resolved gauge handle (no-op by `Default`). See
/// [`PipelineMetrics::gauge`].
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Option<Arc<GaugeCell>>,
}

impl Gauge {
    /// Overwrites the gauge.
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.cell {
            cell.set(v);
        }
    }

    /// Raises the gauge to `v` if larger than the current value.
    pub fn set_max(&self, v: i64) {
        if let Some(cell) = &self.cell {
            cell.set_max(v);
        }
    }

    /// The current value (0 when disabled).
    pub fn get(&self) -> i64 {
        self.cell.as_ref().map_or(0, |c| c.get())
    }
}

/// A resolved stage-timer handle (no-op by `Default`). See
/// [`PipelineMetrics::timer`].
#[derive(Clone, Debug, Default)]
pub struct Timer {
    cell: Option<Arc<TimerCell>>,
}

impl Timer {
    /// Starts a monotonic measurement; the returned guard records the
    /// elapsed time when dropped.
    pub fn start(&self) -> ScopedTimer {
        ScopedTimer {
            armed: self
                .cell
                .as_ref()
                .map(|cell| (Instant::now(), Arc::clone(cell))),
        }
    }

    /// Records an externally measured duration.
    pub fn record(&self, elapsed: std::time::Duration) {
        self.record_ns(saturating_ns(elapsed));
    }

    /// Records an externally measured duration in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        if let Some(cell) = &self.cell {
            cell.record_ns(ns);
        }
    }

    /// Total accumulated nanoseconds (0 when disabled).
    pub fn total_ns(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.total_ns())
    }

    /// Number of recorded observations (0 when disabled).
    pub fn count(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.count())
    }
}

/// A resolved histogram handle (no-op by `Default`). See
/// [`PipelineMetrics::histogram`].
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        if let Some(cell) = &self.cell {
            cell.record(value);
        }
    }

    /// Number of observations (0 when disabled).
    pub fn count(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.count())
    }

    /// Sum of observed values (0 when disabled).
    pub fn sum(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.sum())
    }

    /// Lower bound of the log₂ bucket holding quantile `q` (0 when
    /// disabled or empty). See
    /// [`HistogramCell::quantile_lower_bound`](registry::HistogramCell::quantile_lower_bound).
    pub fn quantile_lower_bound(&self, q: f64) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.quantile_lower_bound(q))
    }
}

/// RAII guard from [`Timer::start`]: records the elapsed wall-clock time
/// into its timer when dropped. When the parent handle is disabled the
/// guard holds nothing and drop is free — it never even reads the clock.
#[must_use = "a scoped timer measures until dropped; binding it to _ drops immediately"]
#[derive(Debug)]
pub struct ScopedTimer {
    armed: Option<(Instant, Arc<TimerCell>)>,
}

impl ScopedTimer {
    /// Stops the measurement early, recording now instead of at drop.
    pub fn stop(mut self) {
        self.finish();
    }

    /// Abandons the measurement without recording anything.
    pub fn cancel(mut self) {
        self.armed = None;
    }

    fn finish(&mut self) {
        if let Some((start, cell)) = self.armed.take() {
            cell.record_ns(saturating_ns(start.elapsed()));
        }
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        self.finish();
    }
}

fn saturating_ns(elapsed: std::time::Duration) -> u64 {
    u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let metrics = PipelineMetrics::disabled();
        assert!(!metrics.is_enabled());
        let c = metrics.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        let t = metrics.timer("y");
        drop(t.start());
        assert_eq!(t.count(), 0);
        metrics.histogram("z").record(9);
        assert_eq!(metrics.histogram("z").count(), 0);
    }

    #[test]
    fn default_is_disabled() {
        assert!(!PipelineMetrics::default().is_enabled());
    }

    #[test]
    fn clones_share_one_registry() {
        let metrics = PipelineMetrics::enabled();
        let clone = metrics.clone();
        clone.counter("shared").add(2);
        metrics.counter("shared").add(3);
        assert_eq!(clone.counter("shared").get(), 5);
        assert_eq!(metrics, clone);
    }

    #[test]
    fn equality_is_registry_identity() {
        assert_eq!(PipelineMetrics::disabled(), PipelineMetrics::disabled());
        let a = PipelineMetrics::enabled();
        let b = PipelineMetrics::enabled();
        assert_ne!(a, b);
        assert_ne!(a, PipelineMetrics::disabled());
        assert_eq!(a, a.clone());
        let _ = b;
    }

    #[test]
    fn scoped_timer_records_on_drop() {
        let metrics = PipelineMetrics::enabled();
        let timer = metrics.timer("stage");
        {
            let _guard = timer.start();
            std::hint::black_box(0u64);
        }
        assert_eq!(timer.count(), 1);
    }

    #[test]
    fn scoped_timer_cancel_records_nothing() {
        let metrics = PipelineMetrics::enabled();
        let timer = metrics.timer("stage");
        timer.start().cancel();
        assert_eq!(timer.count(), 0);
        timer.start().stop();
        assert_eq!(timer.count(), 1);
    }

    #[test]
    fn snapshot_has_stable_sections_even_when_disabled() {
        let sections = vec!["counters", "gauges", "histograms", "timers"];
        assert_eq!(PipelineMetrics::disabled().snapshot().keys(), sections);
        assert_eq!(PipelineMetrics::enabled().snapshot().keys(), sections);
    }

    #[test]
    fn json_rendering_contains_recorded_values() {
        let metrics = PipelineMetrics::enabled();
        metrics.counter("polish.messages").add(12);
        metrics.gauge("features.vocab").set(-1);
        let json = metrics.snapshot().render();
        assert!(json.contains("\"polish.messages\":12"));
        assert!(json.contains("\"features.vocab\":-1"));
    }
}
