//! The thread-safe metrics registry and its instrument cells.
//!
//! Instruments are interned by name: the registry hands out
//! `Arc`-wrapped cells, so a hot loop resolves its counter once and then
//! updates it with a single relaxed atomic op per event — no lock, no
//! string hashing. The name maps themselves sit behind mutexes that are
//! touched only at resolution and snapshot time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// Number of histogram buckets. Bucket `i` holds observations whose
/// nanosecond value has its highest set bit at position `i`, i.e. the
/// half-open range `[2^i, 2^(i+1))`, with bucket 0 covering 0–1 ns. A
/// `u64` nanosecond count never needs more than 64 buckets, so the scale
/// is fixed and two histograms are always mergeable bucket-by-bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct CounterCell {
    value: AtomicU64,
}

impl CounterCell {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed measurement (sizes, dimensions, rates ×1e6).
#[derive(Debug, Default)]
pub struct GaugeCell {
    value: AtomicI64,
}

impl GaugeCell {
    /// Overwrites the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if it is larger than the current value.
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Accumulated monotonic duration for one pipeline stage.
#[derive(Debug, Default)]
pub struct TimerCell {
    total_ns: AtomicU64,
    count: AtomicU64,
}

impl TimerCell {
    /// Records one observation of `ns` nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total accumulated nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// A fixed log₂-scale latency/size distribution.
///
/// The bucket layout is static (see [`HISTOGRAM_BUCKETS`]) so recording
/// is a single index computation plus one atomic increment, and
/// snapshots never reallocate.
#[derive(Debug)]
pub struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> HistogramCell {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Index of the log₂ bucket that holds `value`.
pub fn bucket_index(value: u64) -> usize {
    (63 - value.max(1).leading_zeros()) as usize
}

impl HistogramCell {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, lowest bucket first.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Approximate quantile from the log-scale buckets: returns the lower
    /// bound of the bucket containing the `q`-quantile observation.
    pub fn quantile_lower_bound(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets().iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (HISTOGRAM_BUCKETS - 1)
    }
}

/// The interning store behind a [`crate::PipelineMetrics`] handle.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<CounterCell>>>,
    gauges: Mutex<BTreeMap<String, Arc<GaugeCell>>>,
    timers: Mutex<BTreeMap<String, Arc<TimerCell>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
}

fn intern<T: Default>(map: &Mutex<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    let mut map = map.lock().expect("metrics registry poisoned");
    Arc::clone(map.entry(name.to_string()).or_default())
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Resolves (creating on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<CounterCell> {
        intern(&self.counters, name)
    }

    /// Resolves (creating on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<GaugeCell> {
        intern(&self.gauges, name)
    }

    /// Resolves (creating on first use) the timer `name`.
    pub fn timer(&self, name: &str) -> Arc<TimerCell> {
        intern(&self.timers, name)
    }

    /// Resolves (creating on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<HistogramCell> {
        intern(&self.histograms, name)
    }

    /// A point-in-time JSON view of every instrument, grouped by kind.
    ///
    /// Shape (all keys sorted):
    /// `{"counters": {name: n}, "gauges": {name: n},
    ///   "timers": {name: {"count", "total_ns", "mean_ns"}},
    ///   "histograms": {name: {"count", "sum", "p50", "p99", "buckets"}}}`
    pub fn snapshot(&self) -> Json {
        let mut root = Json::object();

        let mut counters = Json::object();
        for (name, cell) in self.counters.lock().expect("poisoned").iter() {
            counters.set(name, Json::UInt(cell.get()));
        }
        root.set("counters", counters);

        let mut gauges = Json::object();
        for (name, cell) in self.gauges.lock().expect("poisoned").iter() {
            gauges.set(name, Json::Int(cell.get()));
        }
        root.set("gauges", gauges);

        let mut timers = Json::object();
        for (name, cell) in self.timers.lock().expect("poisoned").iter() {
            let count = cell.count();
            let total = cell.total_ns();
            let mut entry = Json::object();
            entry.set("count", Json::UInt(count));
            entry.set("total_ns", Json::UInt(total));
            entry.set(
                "mean_ns",
                Json::Float(if count == 0 {
                    0.0
                } else {
                    total as f64 / count as f64
                }),
            );
            timers.set(name, entry);
        }
        root.set("timers", timers);

        let mut histograms = Json::object();
        for (name, cell) in self.histograms.lock().expect("poisoned").iter() {
            let mut entry = Json::object();
            entry.set("count", Json::UInt(cell.count()));
            entry.set("sum", Json::UInt(cell.sum()));
            entry.set("p50", Json::UInt(cell.quantile_lower_bound(0.50)));
            entry.set("p99", Json::UInt(cell.quantile_lower_bound(0.99)));
            // Trailing empty buckets are elided so snapshots stay small;
            // bucket i spans [2^i, 2^(i+1)).
            let buckets = cell.buckets();
            let used = buckets
                .iter()
                .rposition(|&b| b > 0)
                .map_or(0, |last| last + 1);
            entry.set(
                "buckets",
                Json::Array(buckets[..used].iter().map(|&b| Json::UInt(b)).collect()),
            );
            histograms.set(name, entry);
        }
        root.set("histograms", histograms);

        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_resolutions() {
        let reg = Registry::new();
        reg.counter("polish.messages").add(3);
        reg.counter("polish.messages").add(4);
        assert_eq!(reg.counter("polish.messages").get(), 7);
    }

    #[test]
    fn gauges_overwrite_and_track_max() {
        let reg = Registry::new();
        let g = reg.gauge("pool");
        g.set(10);
        g.set(4);
        assert_eq!(g.get(), 4);
        g.set_max(9);
        g.set_max(2);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn bucket_index_is_floor_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn histogram_quantiles_land_in_right_bucket() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        for _ in 0..99 {
            h.record(100); // bucket 6: [64, 128)
        }
        h.record(1_000_000); // bucket 19
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_lower_bound(0.50), 64);
        assert_eq!(h.quantile_lower_bound(1.0), 1 << 19);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let reg = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = reg.counter("shared");
                let t = reg.timer("stage");
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.add(1);
                        t.record_ns(5);
                    }
                });
            }
        });
        assert_eq!(reg.counter("shared").get(), 8000);
        assert_eq!(reg.timer("stage").count(), 8000);
        assert_eq!(reg.timer("stage").total_ns(), 40_000);
    }

    #[test]
    fn snapshot_shape_and_key_order() {
        let reg = Registry::new();
        reg.counter("b").add(1);
        reg.counter("a").add(2);
        reg.gauge("g").set(-3);
        reg.timer("t").record_ns(10);
        reg.histogram("h").record(7);
        let snap = reg.snapshot();
        assert_eq!(
            snap.keys(),
            vec!["counters", "gauges", "histograms", "timers"]
        );
        assert_eq!(snap.get("counters").unwrap().keys(), vec!["a", "b"]);
        let t = snap.get("timers").unwrap().get("t").unwrap();
        assert_eq!(t.get("count"), Some(&Json::UInt(1)));
        assert_eq!(t.get("total_ns"), Some(&Json::UInt(10)));
        let h = snap.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("count"), Some(&Json::UInt(1)));
        // Bucket list is truncated after the last non-empty bucket:
        // 7 lands in bucket 2, so exactly three buckets render.
        match h.get("buckets") {
            Some(Json::Array(buckets)) => assert_eq!(buckets.len(), 3),
            other => panic!("expected bucket array, got {other:?}"),
        }
    }
}
