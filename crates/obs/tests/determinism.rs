//! Snapshot serialization must be byte-deterministic: two registries
//! holding the same instruments must render identically no matter the
//! order in which the instruments were first resolved, and repeated
//! renders of one registry must be byte-identical. The `deterministic-
//! iteration` audit rule keeps `HashMap`s out of this path; these tests
//! pin the observable consequence.

use darklight_obs::PipelineMetrics;

fn record(metrics: &PipelineMetrics, names: &[&str]) {
    for (i, name) in names.iter().enumerate() {
        metrics.counter(&format!("count.{name}")).add(i as u64 + 1);
        metrics.gauge(&format!("gauge.{name}")).set(-(i as i64));
        metrics
            .timer(&format!("timer.{name}"))
            .record_ns(10 * (i as u64 + 1));
        metrics.histogram(&format!("hist.{name}")).record(1 << i);
    }
}

#[test]
fn snapshot_bytes_are_insertion_order_invariant() {
    let names = ["polish", "features", "attrib", "batch", "linker"];
    let forward = PipelineMetrics::enabled();
    record(&forward, &names);

    let mut reversed_names = names;
    reversed_names.reverse();
    let reversed = PipelineMetrics::enabled();
    record(&reversed, &names);
    // Touch instruments again in reverse resolution order: interning must
    // not depend on resolution history.
    for name in reversed_names {
        let _ = reversed.counter(&format!("count.{name}"));
    }

    assert_eq!(
        forward.snapshot().render(),
        reversed.snapshot().render(),
        "snapshot bytes depend on instrument insertion order"
    );
    assert_eq!(
        forward.snapshot().render_pretty(),
        reversed.snapshot().render_pretty()
    );
}

#[test]
fn repeated_renders_are_byte_identical() {
    let metrics = PipelineMetrics::enabled();
    record(&metrics, &["a", "b", "c"]);
    let first = metrics.snapshot().render();
    for _ in 0..5 {
        assert_eq!(metrics.snapshot().render(), first);
    }
}
