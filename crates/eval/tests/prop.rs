//! Property-based tests for the evaluation layer.

use darklight_eval::bootstrap::{precision_recall_interval, BootstrapConfig};
use darklight_eval::curve::PrCurve;
use darklight_eval::metrics::{precision_recall_at, LabeledScore};
use darklight_eval::roc::RocCurve;
use proptest::prelude::*;

fn labeled_strategy() -> impl Strategy<Value = Vec<LabeledScore>> {
    proptest::collection::vec(
        (0.0f64..1.0, any::<bool>(), any::<bool>()).prop_map(|(score, correct, extra_truth)| {
            LabeledScore {
                score,
                correct,
                // A correct match implies its truth exists in the known set.
                has_truth: correct || extra_truth,
            }
        }),
        1..60,
    )
}

proptest! {
    /// PR curves: recall is non-decreasing as the threshold drops, both
    /// metrics stay in [0, 1], and AUC is in [0, 1].
    #[test]
    fn pr_curve_invariants(labeled in labeled_strategy()) {
        let c = PrCurve::from_labeled(&labeled);
        let mut prev_recall = 0.0;
        for p in c.points() {
            prop_assert!((0.0..=1.0).contains(&p.precision));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p.recall));
            prop_assert!(p.recall >= prev_recall - 1e-12);
            prev_recall = p.recall;
        }
        prop_assert!((0.0..=1.0 + 1e-9).contains(&c.auc()));
    }

    /// `at_threshold` agrees with a direct precision/recall computation.
    #[test]
    fn at_threshold_matches_direct(labeled in labeled_strategy(), t in 0.0f64..1.0) {
        let c = PrCurve::from_labeled(&labeled);
        let p = c.at_threshold(t);
        let (dp, dr) = precision_recall_at(&labeled, t);
        prop_assert!((p.precision - dp).abs() < 1e-9, "precision {} vs {}", p.precision, dp);
        prop_assert!((p.recall - dr).abs() < 1e-9, "recall {} vs {}", p.recall, dr);
    }

    /// `threshold_for_recall` really achieves the target when it returns.
    #[test]
    fn threshold_for_recall_correct(labeled in labeled_strategy(), target in 0.0f64..1.0) {
        let c = PrCurve::from_labeled(&labeled);
        if let Some(p) = c.threshold_for_recall(target) {
            prop_assert!(p.recall >= target);
            // And it is the *highest* such threshold among curve points.
            for q in c.points() {
                if q.threshold > p.threshold {
                    prop_assert!(q.recall < target);
                }
            }
        }
    }

    /// ROC curves: TPR and FPR are monotone, bounded, and AUC ∈ [0, 1].
    #[test]
    fn roc_invariants(labeled in labeled_strategy()) {
        let c = RocCurve::from_labeled(&labeled);
        let mut prev = (0.0f64, 0.0f64);
        for p in c.points() {
            prop_assert!((0.0..=1.0).contains(&p.tpr));
            prop_assert!((0.0..=1.0).contains(&p.fpr));
            prop_assert!(p.tpr >= prev.0 - 1e-12);
            prop_assert!(p.fpr >= prev.1 - 1e-12);
            prev = (p.tpr, p.fpr);
        }
        prop_assert!((0.0..=1.0 + 1e-9).contains(&c.auc()));
        if let Some((eer, _)) = c.equal_error_rate() {
            prop_assert!((0.0..=1.0).contains(&eer));
        }
    }

    /// Bootstrap intervals bracket the point estimate and stay in [0, 1].
    #[test]
    fn bootstrap_brackets_estimate(labeled in labeled_strategy(), t in 0.0f64..1.0) {
        let cfg = BootstrapConfig {
            resamples: 50,
            ..BootstrapConfig::default()
        };
        let (p, r) = precision_recall_interval(&labeled, t, &cfg);
        for i in [p, r] {
            prop_assert!(i.lower <= i.upper + 1e-12);
            prop_assert!((0.0..=1.0).contains(&i.lower));
            prop_assert!((0.0..=1.0).contains(&i.upper));
        }
    }
}
