//! Match labeling and accuracy metrics.

use darklight_core::attrib::Ranked;
use darklight_core::dataset::Dataset;
use darklight_core::twostage::RankedMatch;

/// One unknown's best-match score, labeled against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabeledScore {
    /// The final similarity score of the emitted (best) candidate.
    pub score: f64,
    /// Whether that candidate is the true author.
    pub correct: bool,
    /// Whether the unknown's true author exists in the known set at all
    /// (recall denominators count only these).
    pub has_truth: bool,
}

/// Returns `true` when the ranked candidate is the unknown's true author
/// (same persona id; `None` personas never match).
pub fn is_correct(known: &Dataset, unknown_persona: Option<u64>, candidate: usize) -> bool {
    match (unknown_persona, known.records[candidate].persona) {
        (Some(a), Some(b)) => a == b,
        _ => false,
    }
}

/// Whether the unknown's persona appears anywhere in the known set.
pub fn truth_present(known: &Dataset, unknown_persona: Option<u64>) -> bool {
    match unknown_persona {
        Some(p) => known.records.iter().any(|r| r.persona == Some(p)),
        None => false,
    }
}

/// Labels every unknown's best stage-2 candidate.
pub fn labeled_best_matches(
    results: &[RankedMatch],
    known: &Dataset,
    unknown: &Dataset,
) -> Vec<LabeledScore> {
    results
        .iter()
        .map(|m| {
            let persona = unknown.records[m.unknown].persona;
            let has_truth = truth_present(known, persona);
            match m.best() {
                Some(best) => LabeledScore {
                    score: best.score,
                    correct: is_correct(known, persona, best.index),
                    has_truth,
                },
                None => LabeledScore {
                    score: f64::MIN,
                    correct: false,
                    has_truth,
                },
            }
        })
        .collect()
}

/// Accuracy@k over candidate lists (Table III / Fig. 4): the fraction of
/// unknowns *with a true author in the known set* whose true author appears
/// in their first `k` candidates. `lists` pairs each unknown's persona with
/// its ranked candidates.
pub fn accuracy_at_k<'a, I>(lists: I, known: &Dataset, k: usize) -> f64
where
    I: IntoIterator<Item = (Option<u64>, &'a [Ranked])>,
{
    let mut eligible = 0usize;
    let mut hit = 0usize;
    for (persona, ranked) in lists {
        if !truth_present(known, persona) {
            continue;
        }
        eligible += 1;
        if ranked
            .iter()
            .take(k)
            .any(|r| is_correct(known, persona, r.index))
        {
            hit += 1;
        }
    }
    if eligible == 0 {
        0.0
    } else {
        hit as f64 / eligible as f64
    }
}

/// Accuracy@k of the reduction stage for a full result set.
pub fn reduction_accuracy_at_k(
    results: &[RankedMatch],
    known: &Dataset,
    unknown: &Dataset,
    k: usize,
) -> f64 {
    accuracy_at_k(
        results
            .iter()
            .map(|m| (unknown.records[m.unknown].persona, m.stage1.as_slice())),
        known,
        k,
    )
}

/// Precision and recall of the emitted pairs at a threshold.
///
/// Precision counts correct pairs among emitted pairs; recall counts
/// correct emitted pairs among unknowns whose true author is present.
pub fn precision_recall_at(labeled: &[LabeledScore], threshold: f64) -> (f64, f64) {
    let emitted: Vec<&LabeledScore> = labeled.iter().filter(|l| l.score >= threshold).collect();
    let correct = emitted.iter().filter(|l| l.correct).count();
    let positives = labeled.iter().filter(|l| l.has_truth).count();
    let precision = if emitted.is_empty() {
        1.0
    } else {
        correct as f64 / emitted.len() as f64
    };
    let recall = if positives == 0 {
        0.0
    } else {
        correct as f64 / positives as f64
    };
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use darklight_core::dataset::Record;
    use darklight_features::pipeline::{CountedDoc, PreparedDoc};

    fn record(alias: &str, persona: Option<u64>) -> Record {
        let doc = PreparedDoc::prepare("sample text for the record body", None);
        let counted = CountedDoc::from_prepared(&doc, 3, 5);
        Record {
            alias: alias.to_string(),
            persona,
            facts: Vec::new(),
            text: String::new(),
            doc,
            counted,
            profile: None,
        }
    }

    fn known() -> Dataset {
        Dataset::new(
            "known",
            vec![
                record("a", Some(1)),
                record("b", Some(2)),
                record("c", None),
            ],
        )
    }

    fn ranked(pairs: &[(usize, f64)]) -> Vec<Ranked> {
        pairs
            .iter()
            .map(|&(index, score)| Ranked { index, score })
            .collect()
    }

    #[test]
    fn correctness_checks() {
        let k = known();
        assert!(is_correct(&k, Some(1), 0));
        assert!(!is_correct(&k, Some(1), 1));
        assert!(!is_correct(&k, None, 0));
        assert!(!is_correct(&k, Some(5), 2)); // None persona in known
        assert!(truth_present(&k, Some(2)));
        assert!(!truth_present(&k, Some(9)));
        assert!(!truth_present(&k, None));
    }

    #[test]
    fn accuracy_at_k_counts_only_eligible() {
        let k = known();
        let lists: Vec<(Option<u64>, Vec<Ranked>)> = vec![
            (Some(1), ranked(&[(1, 0.9), (0, 0.8)])), // truth at rank 2
            (Some(2), ranked(&[(1, 0.9)])),           // truth at rank 1
            (Some(9), ranked(&[(0, 0.9)])),           // no truth in known
            (None, ranked(&[(0, 0.9)])),              // noise unknown
        ];
        let iter = lists.iter().map(|(p, r)| (*p, r.as_slice()));
        assert!((accuracy_at_k(iter.clone(), &k, 1) - 0.5).abs() < 1e-12);
        assert!((accuracy_at_k(iter, &k, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_behaviour() {
        let labeled = vec![
            LabeledScore {
                score: 0.9,
                correct: true,
                has_truth: true,
            },
            LabeledScore {
                score: 0.8,
                correct: false,
                has_truth: true,
            },
            LabeledScore {
                score: 0.3,
                correct: true,
                has_truth: true,
            },
            LabeledScore {
                score: 0.2,
                correct: false,
                has_truth: false,
            },
        ];
        let (p, r) = precision_recall_at(&labeled, 0.5);
        assert!((p - 0.5).abs() < 1e-12); // 1 correct of 2 emitted
        assert!((r - 1.0 / 3.0).abs() < 1e-12); // 1 of 3 positives
        let (p0, r0) = precision_recall_at(&labeled, 0.0);
        assert!((p0 - 0.5).abs() < 1e-12); // 2 of 4
        assert!((r0 - 2.0 / 3.0).abs() < 1e-12);
        // Nothing emitted: precision defined as 1, recall 0.
        let (p9, r9) = precision_recall_at(&labeled, 0.95);
        assert_eq!((p9, r9), (1.0, 0.0));
    }

    #[test]
    fn empty_inputs() {
        let k = known();
        assert_eq!(accuracy_at_k(std::iter::empty(), &k, 3), 0.0);
        let (p, r) = precision_recall_at(&[], 0.1);
        assert_eq!((p, r), (1.0, 0.0));
    }
}

/// Labels *every* candidate pair of every unknown, not just the best one —
/// the paper's literal emission rule ("output the pair if the similarity
/// score is higher than the threshold t") applied to whatever candidate
/// set survived. With reduction the candidate set is capped at k per
/// unknown; without reduction every known alias is a potential pair, which
/// is exactly why the paper finds reduction lifts the PR curve (Table VI).
///
/// `has_truth` is set on an unknown's *first* (best) pair only, so recall
/// denominators still count each findable unknown once.
pub fn labeled_all_pairs(
    results: &[RankedMatch],
    known: &Dataset,
    unknown: &Dataset,
) -> Vec<LabeledScore> {
    let mut out = Vec::new();
    for m in results {
        let persona = unknown.records[m.unknown].persona;
        let has_truth = truth_present(known, persona);
        for (i, r) in m.stage2.iter().enumerate() {
            out.push(LabeledScore {
                score: r.score,
                correct: is_correct(known, persona, r.index),
                has_truth: has_truth && i == 0,
            });
        }
    }
    out
}

#[cfg(test)]
mod all_pairs_tests {
    use super::*;
    use darklight_core::attrib::Ranked;
    use darklight_core::dataset::Record;
    use darklight_core::twostage::RankedMatch;
    use darklight_features::pipeline::{CountedDoc, PreparedDoc};

    fn record(persona: Option<u64>) -> Record {
        let doc = PreparedDoc::prepare("t", None);
        let counted = CountedDoc::from_prepared(&doc, 3, 5);
        Record {
            alias: "a".into(),
            persona,
            facts: Vec::new(),
            text: String::new(),
            doc,
            counted,
            profile: None,
        }
    }

    #[test]
    fn all_pairs_expand_candidates() {
        let known = Dataset::new("k", vec![record(Some(1)), record(Some(2))]);
        let unknown = Dataset::new("u", vec![record(Some(1))]);
        let results = vec![RankedMatch {
            unknown: 0,
            stage1: Vec::new(),
            stage2: vec![
                Ranked {
                    index: 1,
                    score: 0.9,
                }, // wrong, ranked first
                Ranked {
                    index: 0,
                    score: 0.7,
                }, // right, ranked second
            ],
        }];
        let labeled = labeled_all_pairs(&results, &known, &unknown);
        assert_eq!(labeled.len(), 2);
        assert!(!labeled[0].correct && labeled[0].has_truth);
        assert!(labeled[1].correct && !labeled[1].has_truth); // truth counted once
                                                              // The best-match labeling would have produced only one entry.
        assert_eq!(labeled_best_matches(&results, &known, &unknown).len(), 1);
    }
}
