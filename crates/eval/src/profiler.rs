//! Personal-profile aggregation — the "John Doe" analysis of §V-D.
//!
//! Once a dark alias is linked to an open alias, the open alias's posting
//! history yields a detailed personal profile: age, city, devices, habits,
//! hobbies. [`build_profile`] aggregates the identity facts leaked across
//! one or more linked aliases into a [`PersonalProfile`]; `render` prints
//! the dossier.

use darklight_corpus::model::{Fact, FactKind, User};
use std::collections::BTreeMap;

/// An aggregated dossier on one (de-anonymized) person.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PersonalProfile {
    /// The aliases contributing to the dossier.
    pub aliases: Vec<String>,
    /// kind → distinct values disclosed, in disclosure order.
    pub attributes: BTreeMap<FactKind, Vec<String>>,
}

impl PersonalProfile {
    /// Number of distinct disclosed attribute values.
    pub fn fact_count(&self) -> usize {
        self.attributes.values().map(Vec::len).sum()
    }

    /// The first disclosed value of a kind, if any.
    pub fn first(&self, kind: FactKind) -> Option<&str> {
        self.attributes
            .get(&kind)
            .and_then(|v| v.first())
            .map(String::as_str)
    }

    /// Adds a fact (deduplicating values per kind).
    pub fn add_fact(&mut self, fact: &Fact) {
        let values = self.attributes.entry(fact.kind).or_default();
        if !values.contains(&fact.value) {
            values.push(fact.value.clone());
        }
    }

    /// Renders the dossier as human-readable text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Profile built from {} alias(es): {}\n",
            self.aliases.len(),
            self.aliases.join(", ")
        ));
        for (kind, values) in &self.attributes {
            out.push_str(&format!(
                "  {:<17} {}\n",
                format!("{kind}:"),
                values.join(", ")
            ));
        }
        out
    }
}

/// Aggregates the leaked facts of one or more linked aliases (typically a
/// dark alias plus the open alias it was linked to).
pub fn build_profile<'a, I>(users: I) -> PersonalProfile
where
    I: IntoIterator<Item = &'a User>,
{
    let mut profile = PersonalProfile::default();
    for user in users {
        profile.aliases.push(user.alias.clone());
        for fact in &user.facts {
            profile.add_fact(fact);
        }
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(alias: &str, facts: &[(FactKind, &str)]) -> User {
        let mut u = User::new(alias, Some(1));
        for (k, v) in facts {
            u.facts.push(Fact::new(*k, *v));
        }
        u
    }

    #[test]
    fn aggregates_across_aliases() {
        let dark = user("acid_wolf", &[(FactKind::Drug, "lsd")]);
        let open = user(
            "john_doe_99",
            &[
                (FactKind::Age, "27"),
                (FactKind::City, "edmonton"),
                (FactKind::Device, "galaxy s4"),
                (FactKind::Hobby, "gaming"),
            ],
        );
        let p = build_profile([&dark, &open]);
        assert_eq!(p.aliases, ["acid_wolf", "john_doe_99"]);
        assert_eq!(p.first(FactKind::Age), Some("27"));
        assert_eq!(p.first(FactKind::City), Some("edmonton"));
        assert_eq!(p.fact_count(), 5);
    }

    #[test]
    fn duplicate_values_merged() {
        let a = user("a", &[(FactKind::Drug, "lsd")]);
        let b = user("b", &[(FactKind::Drug, "lsd"), (FactKind::Drug, "mdma")]);
        let p = build_profile([&a, &b]);
        assert_eq!(p.attributes[&FactKind::Drug], ["lsd", "mdma"]);
    }

    #[test]
    fn render_contains_everything() {
        let u = user(
            "target",
            &[(FactKind::Age, "27"), (FactKind::City, "miami")],
        );
        let p = build_profile([&u]);
        let text = p.render();
        assert!(text.contains("target"));
        assert!(text.contains("27"));
        assert!(text.contains("miami"));
        assert!(text.contains("age:"));
    }

    #[test]
    fn empty_profile() {
        let p = build_profile(std::iter::empty());
        assert_eq!(p.fact_count(), 0);
        assert!(p.first(FactKind::Age).is_none());
        assert!(p.render().contains("0 alias"));
    }
}
