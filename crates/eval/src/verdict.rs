//! Simulated manual verification (§V-A of the paper).
//!
//! The authors judged every emitted pair by reading both aliases' posts:
//! **True** on clear evidence (declared alias on the other forum, a unique
//! leaked link, the same distinctive vendor complaint); **Probably True**
//! on weaker corroboration (same country + same vendor + same drugs);
//! **Unclear** when nothing usable leaked; **False** on contradictions
//! (different declared ages, opposite religions or politics, different
//! countries). The generator records exactly which facts each alias
//! leaked, so [`judge_pair`] replays this protocol deterministically.

use darklight_corpus::model::{Fact, FactKind};
use std::fmt;

/// The §V-A verdict classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Verdict {
    /// Clear evidence both aliases are the same person.
    True,
    /// Corroborating but not conclusive evidence.
    ProbablyTrue,
    /// No exploitable evidence either way.
    Unclear,
    /// Contradictory disclosures.
    False,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::True => "True",
            Verdict::ProbablyTrue => "Probably True",
            Verdict::Unclear => "Unclear",
            Verdict::False => "False",
        };
        f.write_str(s)
    }
}

/// Judges a matched pair from the facts each alias leaked (plus the alias
/// names, for self-reference checks).
pub fn judge_pair(a_alias: &str, a_facts: &[Fact], b_alias: &str, b_facts: &[Fact]) -> Verdict {
    // Alias self-reference: one side names the other.
    let names_other = a_facts
        .iter()
        .any(|f| f.kind == FactKind::AliasRef && f.value.eq_ignore_ascii_case(b_alias))
        || b_facts
            .iter()
            .any(|f| f.kind == FactKind::AliasRef && f.value.eq_ignore_ascii_case(a_alias));
    if names_other {
        return Verdict::True;
    }
    // Shared strong facts: unique links, distinctive vendor complaints.
    let shared: Vec<&Fact> = a_facts.iter().filter(|f| b_facts.contains(f)).collect();
    if shared.iter().any(|f| f.kind.is_strong()) {
        return Verdict::True;
    }
    // Contradictions on exclusive kinds.
    for fa in a_facts {
        if !fa.kind.is_exclusive() {
            continue;
        }
        for fb in b_facts {
            if fb.kind == fa.kind && fb.value != fa.value {
                return Verdict::False;
            }
        }
    }
    // Weak corroboration: drug habits alone are "not discriminative
    // information" (§V-C), so require at least two shared facts with at
    // least one beyond Drug, or a shared exclusive fact plus another.
    let non_drug_shared = shared.iter().filter(|f| f.kind != FactKind::Drug).count();
    if shared.len() >= 2 && non_drug_shared >= 1 {
        return Verdict::ProbablyTrue;
    }
    Verdict::Unclear
}

/// Tallies verdicts for a set of judged pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerdictCounts {
    /// Pairs judged True.
    pub true_: usize,
    /// Pairs judged Probably True.
    pub probably: usize,
    /// Pairs judged Unclear.
    pub unclear: usize,
    /// Pairs judged False.
    pub false_: usize,
}

impl VerdictCounts {
    /// Adds one verdict.
    pub fn add(&mut self, v: Verdict) {
        match v {
            Verdict::True => self.true_ += 1,
            Verdict::ProbablyTrue => self.probably += 1,
            Verdict::Unclear => self.unclear += 1,
            Verdict::False => self.false_ += 1,
        }
    }

    /// Total judged pairs.
    pub fn total(&self) -> usize {
        self.true_ + self.probably + self.unclear + self.false_
    }
}

impl FromIterator<Verdict> for VerdictCounts {
    fn from_iter<I: IntoIterator<Item = Verdict>>(iter: I) -> VerdictCounts {
        let mut c = VerdictCounts::default();
        for v in iter {
            c.add(v);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(kind: FactKind, value: &str) -> Fact {
        Fact::new(kind, value)
    }

    #[test]
    fn alias_reference_is_true() {
        let a = vec![fact(FactKind::AliasRef, "DarkWolf")];
        let b: Vec<Fact> = vec![];
        assert_eq!(judge_pair("acid_queen", &a, "darkwolf", &b), Verdict::True);
        // And in the other direction.
        assert_eq!(judge_pair("darkwolf", &b, "acid_queen", &a), Verdict::True);
    }

    #[test]
    fn shared_link_is_true() {
        let shared = fact(FactKind::Link, "refer.example.com/wolf123");
        let a = vec![shared.clone()];
        let b = vec![shared];
        assert_eq!(judge_pair("x", &a, "y", &b), Verdict::True);
    }

    #[test]
    fn shared_vendor_complaint_is_true() {
        let c = fact(FactKind::VendorComplaint, "whitewizard sold bunk molly");
        assert_eq!(
            judge_pair("x", std::slice::from_ref(&c), "y", std::slice::from_ref(&c)),
            Verdict::True
        );
    }

    #[test]
    fn age_contradiction_is_false() {
        let a = vec![fact(FactKind::Age, "20")];
        let b = vec![fact(FactKind::Age, "34")];
        assert_eq!(judge_pair("x", &a, "y", &b), Verdict::False);
    }

    #[test]
    fn religion_and_politics_contradictions() {
        let a = vec![fact(FactKind::Religion, "christian")];
        let b = vec![fact(FactKind::Religion, "atheist")];
        assert_eq!(judge_pair("x", &a, "y", &b), Verdict::False);
        let a = vec![fact(FactKind::Politics, "right")];
        let b = vec![fact(FactKind::Politics, "left")];
        assert_eq!(judge_pair("x", &a, "y", &b), Verdict::False);
    }

    #[test]
    fn corroboration_is_probably_true() {
        let a = vec![fact(FactKind::City, "miami"), fact(FactKind::Drug, "molly")];
        let b = a.clone();
        assert_eq!(judge_pair("x", &a, "y", &b), Verdict::ProbablyTrue);
    }

    #[test]
    fn drugs_alone_are_unclear() {
        let a = vec![fact(FactKind::Drug, "lsd"), fact(FactKind::Drug, "mdma")];
        let b = a.clone();
        assert_eq!(judge_pair("x", &a, "y", &b), Verdict::Unclear);
    }

    #[test]
    fn nothing_shared_is_unclear() {
        let a = vec![fact(FactKind::Hobby, "yoga")];
        let b = vec![fact(FactKind::Hobby, "chess")];
        assert_eq!(judge_pair("x", &a, "y", &b), Verdict::Unclear);
        assert_eq!(judge_pair("x", &[], "y", &[]), Verdict::Unclear);
    }

    #[test]
    fn strong_evidence_beats_contradiction_order() {
        // A self-reference decides True even if other facts disagree (the
        // disagreement is then noise, e.g. trolling about one's age).
        let a = vec![fact(FactKind::AliasRef, "other"), fact(FactKind::Age, "20")];
        let b = vec![fact(FactKind::Age, "30")];
        assert_eq!(judge_pair("me", &a, "other", &b), Verdict::True);
    }

    #[test]
    fn counts_tally() {
        let counts: VerdictCounts = [
            Verdict::True,
            Verdict::True,
            Verdict::Unclear,
            Verdict::False,
            Verdict::ProbablyTrue,
        ]
        .into_iter()
        .collect();
        assert_eq!(counts.true_, 2);
        assert_eq!(counts.probably, 1);
        assert_eq!(counts.unclear, 1);
        assert_eq!(counts.false_, 1);
        assert_eq!(counts.total(), 5);
    }

    #[test]
    fn display_names() {
        assert_eq!(Verdict::True.to_string(), "True");
        assert_eq!(Verdict::ProbablyTrue.to_string(), "Probably True");
    }
}
