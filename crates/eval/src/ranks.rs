//! Rank analysis of the reduction stage.
//!
//! Accuracy@k (Table III) compresses the candidate ranking into one bit per
//! unknown; the *rank histogram* — at which position the true author
//! actually appears — shows the whole story: a method can have identical
//! accuracy@10 with very different rank mass at position 1 vs position 9,
//! which changes how much work the second stage has to do.

use crate::metrics::{is_correct, truth_present};
use darklight_core::dataset::Dataset;
use darklight_core::twostage::RankedMatch;

/// The distribution of true-author ranks over a result set.
#[derive(Debug, Clone, PartialEq)]
pub struct RankHistogram {
    /// `counts[r]` = unknowns whose true author ranked r+1 (0-indexed
    /// storage, 1-indexed rank). Length = the deepest list observed.
    counts: Vec<usize>,
    /// Unknowns whose true author exists but did not appear in their list.
    pub missed: usize,
    /// Unknowns with a true author in the known set.
    pub eligible: usize,
}

impl RankHistogram {
    /// Builds the histogram from stage-1 candidate lists.
    pub fn from_results(
        results: &[RankedMatch],
        known: &Dataset,
        unknown: &Dataset,
    ) -> RankHistogram {
        let max_depth = results.iter().map(|m| m.stage1.len()).max().unwrap_or(0);
        let mut counts = vec![0usize; max_depth];
        let mut missed = 0usize;
        let mut eligible = 0usize;
        for m in results {
            let persona = unknown.records[m.unknown].persona;
            if !truth_present(known, persona) {
                continue;
            }
            eligible += 1;
            match m
                .stage1
                .iter()
                .position(|r| is_correct(known, persona, r.index))
            {
                Some(pos) => counts[pos] += 1,
                None => missed += 1,
            }
        }
        RankHistogram {
            counts,
            missed,
            eligible,
        }
    }

    /// Unknowns whose true author ranked exactly `rank` (1-based).
    pub fn at_rank(&self, rank: usize) -> usize {
        if rank == 0 {
            return 0;
        }
        self.counts.get(rank - 1).copied().unwrap_or(0)
    }

    /// Cumulative count up to `rank` inclusive — `accuracy@rank` numerator.
    pub fn within(&self, rank: usize) -> usize {
        self.counts.iter().take(rank).sum()
    }

    /// Mean rank of found true authors (`None` when none were found).
    pub fn mean_rank(&self) -> Option<f64> {
        let found: usize = self.counts.iter().sum();
        if found == 0 {
            return None;
        }
        let weighted: usize = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i + 1) * c)
            .sum();
        Some(weighted as f64 / found as f64)
    }

    /// Mean reciprocal rank over all eligible unknowns (missed = 0
    /// contribution) — the standard retrieval summary.
    pub fn mrr(&self) -> f64 {
        if self.eligible == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 / (i + 1) as f64)
            .sum();
        sum / self.eligible as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darklight_core::attrib::Ranked;
    use darklight_core::dataset::Record;
    use darklight_features::pipeline::{CountedDoc, PreparedDoc};

    fn record(persona: Option<u64>) -> Record {
        let doc = PreparedDoc::prepare("text", None);
        let counted = CountedDoc::from_prepared(&doc, 3, 5);
        Record {
            alias: format!("u{persona:?}"),
            persona,
            facts: Vec::new(),
            text: String::new(),
            doc,
            counted,
            profile: None,
        }
    }

    fn dataset(personas: &[Option<u64>]) -> Dataset {
        Dataset::new("d", personas.iter().map(|&p| record(p)).collect())
    }

    fn rm(unknown: usize, candidates: &[usize]) -> RankedMatch {
        let ranked: Vec<Ranked> = candidates
            .iter()
            .enumerate()
            .map(|(i, &index)| Ranked {
                index,
                score: 1.0 - i as f64 * 0.1,
            })
            .collect();
        RankedMatch {
            unknown,
            stage1: ranked.clone(),
            stage2: ranked,
        }
    }

    #[test]
    fn histogram_counts_ranks() {
        let known = dataset(&[Some(0), Some(1), Some(2)]);
        let unknown = dataset(&[Some(0), Some(1), Some(2), Some(9)]);
        let results = vec![
            rm(0, &[0, 1, 2]), // truth at rank 1
            rm(1, &[0, 1, 2]), // truth at rank 2
            rm(2, &[0, 1]),    // truth missing from list
            rm(3, &[0, 1, 2]), // persona 9 absent from known: not eligible
        ];
        let h = RankHistogram::from_results(&results, &known, &unknown);
        assert_eq!(h.eligible, 3);
        assert_eq!(h.at_rank(1), 1);
        assert_eq!(h.at_rank(2), 1);
        assert_eq!(h.at_rank(3), 0);
        assert_eq!(h.missed, 1);
        assert_eq!(h.within(2), 2);
        assert!((h.mean_rank().unwrap() - 1.5).abs() < 1e-12);
        let expected_mrr = (1.0 + 0.5) / 3.0;
        assert!((h.mrr() - expected_mrr).abs() < 1e-12);
    }

    #[test]
    fn empty_results() {
        let known = dataset(&[Some(0)]);
        let unknown = dataset(&[]);
        let h = RankHistogram::from_results(&[], &known, &unknown);
        assert_eq!(h.eligible, 0);
        assert_eq!(h.mrr(), 0.0);
        assert!(h.mean_rank().is_none());
        assert_eq!(h.at_rank(0), 0);
        assert_eq!(h.at_rank(5), 0);
    }
}
