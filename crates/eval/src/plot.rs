//! Dependency-free SVG rendering of the paper's figure types.
//!
//! The `repro` harness prints figure *series* as tables; this module turns
//! the same series into standalone SVG files so Figs. 1–5 exist as actual
//! images (`results/*.svg`). The renderer is deliberately small: fixed
//! layout, multiple line series with markers, axis ticks, a legend — all
//! hand-emitted SVG with no external crates.

use std::fmt::Write as _;

/// One named line series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in data coordinates.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// A simple 2-D line chart.
#[derive(Debug, Clone, PartialEq)]
pub struct LineChart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series to draw (≤ 6 get distinct colors).
    pub series: Vec<Series>,
    /// Fixed axis ranges; `None` auto-fits with 5% padding.
    pub x_range: Option<(f64, f64)>,
    /// Fixed y range.
    pub y_range: Option<(f64, f64)>,
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 24.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 52.0;
const COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b",
];

impl LineChart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> LineChart {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            x_range: None,
            y_range: None,
        }
    }

    /// Adds a series.
    pub fn with_series(mut self, series: Series) -> LineChart {
        self.series.push(series);
        self
    }

    /// Fixes both axes to `[0, 1]` — the right frame for PR curves.
    pub fn unit_axes(mut self) -> LineChart {
        self.x_range = Some((0.0, 1.0));
        self.y_range = Some((0.0, 1.0));
        self
    }

    fn ranges(&self) -> ((f64, f64), (f64, f64)) {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        let fit = |sel: fn(&(f64, f64)) -> f64| -> (f64, f64) {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for p in &all {
                min = min.min(sel(p));
                max = max.max(sel(p));
            }
            if !min.is_finite() || !max.is_finite() {
                return (0.0, 1.0);
            }
            let pad = ((max - min).abs()).max(1e-9) * 0.05;
            (min - pad, max + pad)
        };
        (
            self.x_range.unwrap_or_else(|| fit(|p| p.0)),
            self.y_range.unwrap_or_else(|| fit(|p| p.1)),
        )
    }

    /// Renders the chart as a standalone SVG document.
    pub fn to_svg(&self) -> String {
        let ((x0, x1), (y0, y1)) = self.ranges();
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let sx = move |x: f64| MARGIN_L + (x - x0) / (x1 - x0).max(1e-12) * plot_w;
        let sy = move |y: f64| MARGIN_T + plot_h - (y - y0) / (y1 - y0).max(1e-12) * plot_h;

        let mut svg = String::new();
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
        );
        let _ = writeln!(
            svg,
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
        );
        // Title and axis labels.
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="24" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
            WIDTH / 2.0,
            escape(&self.title)
        );
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="middle" font-size="12">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 12.0,
            escape(&self.x_label)
        );
        let _ = writeln!(
            svg,
            r#"<text x="16" y="{:.1}" text-anchor="middle" font-size="12" transform="rotate(-90 16 {:.1})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&self.y_label)
        );
        // Frame + ticks (5 per axis).
        let _ = writeln!(
            svg,
            r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#333"/>"##
        );
        for i in 0..=5 {
            let fx = x0 + (x1 - x0) * i as f64 / 5.0;
            let fy = y0 + (y1 - y0) * i as f64 / 5.0;
            let px = sx(fx);
            let py = sy(fy);
            let _ = writeln!(
                svg,
                r##"<line x1="{px:.1}" y1="{:.1}" x2="{px:.1}" y2="{:.1}" stroke="#ccc" stroke-dasharray="3,3"/>"##,
                MARGIN_T,
                MARGIN_T + plot_h
            );
            let _ = writeln!(
                svg,
                r##"<line x1="{:.1}" y1="{py:.1}" x2="{:.1}" y2="{py:.1}" stroke="#ccc" stroke-dasharray="3,3"/>"##,
                MARGIN_L,
                MARGIN_L + plot_w
            );
            let _ = writeln!(
                svg,
                r#"<text x="{px:.1}" y="{:.1}" text-anchor="middle" font-size="10">{}</text>"#,
                MARGIN_T + plot_h + 16.0,
                fmt_tick(fx)
            );
            let _ = writeln!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" text-anchor="end" font-size="10">{}</text>"#,
                MARGIN_L - 6.0,
                py + 3.0,
                fmt_tick(fy)
            );
        }
        // Series.
        for (si, s) in self.series.iter().enumerate() {
            let color = COLORS[si % COLORS.len()];
            if s.points.len() > 1 {
                let mut d = String::new();
                for (i, &(x, y)) in s.points.iter().enumerate() {
                    let _ = write!(
                        d,
                        "{}{:.1},{:.1} ",
                        if i == 0 { "M" } else { "L" },
                        sx(x),
                        sy(y)
                    );
                }
                let _ = writeln!(
                    svg,
                    r#"<path d="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                    d.trim_end()
                );
            }
            for &(x, y) in &s.points {
                let _ = writeln!(
                    svg,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="2.2" fill="{color}"/>"#,
                    sx(x),
                    sy(y)
                );
            }
            // Legend entry.
            let ly = MARGIN_T + 14.0 + si as f64 * 16.0;
            let lx = MARGIN_L + plot_w - 150.0;
            let _ = writeln!(
                svg,
                r#"<line x1="{lx:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>"#,
                lx + 20.0
            );
            let _ = writeln!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-size="11">{}</text>"#,
                lx + 26.0,
                ly + 3.5,
                escape(&s.label)
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 1000.0 || (v - v.round()).abs() < 1e-9 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders a PR curve as a chart-ready series.
pub fn pr_series(label: impl Into<String>, curve: &crate::curve::PrCurve) -> Series {
    Series::new(
        label,
        curve
            .points()
            .iter()
            .map(|p| (p.recall, p.precision))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::PrCurve;
    use crate::metrics::LabeledScore;

    fn chart() -> LineChart {
        LineChart::new("Test & <chart>", "recall", "precision")
            .unit_axes()
            .with_series(Series::new("a", vec![(0.0, 1.0), (0.5, 0.9), (1.0, 0.6)]))
            .with_series(Series::new("b", vec![(0.0, 0.8), (1.0, 0.2)]))
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let svg = chart().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Balanced: one opening svg, one closing.
        assert_eq!(svg.matches("<svg").count(), 1);
        assert_eq!(svg.matches("</svg>").count(), 1);
        // Both series paths and legends present.
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
    }

    #[test]
    fn title_is_escaped() {
        let svg = chart().to_svg();
        assert!(svg.contains("Test &amp; &lt;chart&gt;"));
        assert!(!svg.contains("<chart>"));
    }

    #[test]
    fn points_within_canvas() {
        let svg = chart().to_svg();
        for cap in svg.split("<circle cx=\"").skip(1) {
            let x: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=WIDTH).contains(&x), "x {x} out of canvas");
        }
    }

    #[test]
    fn autofit_handles_flat_series() {
        let c = LineChart::new("flat", "x", "y")
            .with_series(Series::new("s", vec![(1.0, 5.0), (2.0, 5.0)]));
        let svg = c.to_svg();
        assert!(svg.contains("<path"));
    }

    #[test]
    fn empty_chart_renders() {
        let c = LineChart::new("empty", "x", "y");
        let svg = c.to_svg();
        assert!(svg.contains("</svg>"));
        assert_eq!(svg.matches("<path").count(), 0);
    }

    #[test]
    fn pr_series_maps_recall_precision() {
        let labeled = vec![
            LabeledScore {
                score: 0.9,
                correct: true,
                has_truth: true,
            },
            LabeledScore {
                score: 0.5,
                correct: false,
                has_truth: true,
            },
        ];
        let curve = PrCurve::from_labeled(&labeled);
        let s = pr_series("pr", &curve);
        assert_eq!(s.points.len(), curve.points().len());
        assert_eq!(s.points[0], (0.5, 1.0));
    }
}
