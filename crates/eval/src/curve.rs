//! Precision-recall curves, AUC, and threshold calibration (§IV-E).
//!
//! The paper sweeps the stage-2 similarity scores as candidate thresholds,
//! draws the precision-recall curve, and picks the threshold giving "a good
//! trade-off between precision and recall" — 0.4190, at precision 94% /
//! recall 80% on the calibration split. [`PrCurve`] reproduces this:
//! build it from labeled best-match scores, then query points, AUC, or the
//! threshold achieving a target recall.

use crate::metrics::LabeledScore;

/// One point of a precision-recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// The threshold producing this point (pairs with `score >= threshold`
    /// are emitted).
    pub threshold: f64,
    /// Precision at this threshold.
    pub precision: f64,
    /// Recall at this threshold.
    pub recall: f64,
}

/// A precision-recall curve over labeled match scores.
#[derive(Debug, Clone, PartialEq)]
pub struct PrCurve {
    points: Vec<PrPoint>,
    positives: usize,
}

impl PrCurve {
    /// Builds the curve by sweeping every distinct score as a threshold
    /// (highest first). The recall denominator is the number of unknowns
    /// whose true author exists in the known set.
    pub fn from_labeled(labeled: &[LabeledScore]) -> PrCurve {
        let positives = labeled.iter().filter(|l| l.has_truth).count();
        let mut sorted: Vec<&LabeledScore> = labeled.iter().collect();
        sorted.sort_by(|a, b| darklight_order::cmp_f64_desc(a.score, b.score));
        let mut points = Vec::new();
        let mut emitted = 0usize;
        let mut correct = 0usize;
        let mut i = 0;
        while i < sorted.len() {
            let t = sorted[i].score;
            if t.is_nan() {
                // NaN sorts last and can never clear a real threshold;
                // stop — `score == t` would never consume it (NaN != NaN).
                break;
            }
            // Consume the whole tie group.
            while i < sorted.len() && sorted[i].score == t {
                emitted += 1;
                if sorted[i].correct {
                    correct += 1;
                }
                i += 1;
            }
            let precision = correct as f64 / emitted as f64;
            let recall = if positives == 0 {
                0.0
            } else {
                correct as f64 / positives as f64
            };
            points.push(PrPoint {
                threshold: t,
                precision,
                recall,
            });
        }
        PrCurve { points, positives }
    }

    /// The curve points, highest threshold first.
    pub fn points(&self) -> &[PrPoint] {
        &self.points
    }

    /// Number of ground-truth positives behind the recall denominator.
    pub fn positives(&self) -> usize {
        self.positives
    }

    /// Area under the precision-recall curve (average-precision / step
    /// integration, the scikit-learn definition the authors' AUC values
    /// follow). 0 for an empty curve.
    pub fn auc(&self) -> f64 {
        let mut auc = 0.0;
        let mut prev_recall = 0.0;
        for p in &self.points {
            auc += (p.recall - prev_recall) * p.precision;
            prev_recall = p.recall;
        }
        auc
    }

    /// Precision/recall when emitting pairs with `score >= threshold`.
    pub fn at_threshold(&self, threshold: f64) -> PrPoint {
        // Points are ordered by descending threshold; find the last point
        // whose threshold is still >= requested.
        let mut best = PrPoint {
            threshold,
            precision: 1.0,
            recall: 0.0,
        };
        for p in &self.points {
            if p.threshold >= threshold {
                best = PrPoint { threshold, ..*p };
            } else {
                break;
            }
        }
        best
    }

    /// The highest threshold achieving at least `target` recall, with its
    /// operating point — how the paper reports Table V ("thresholds
    /// associated with 80% recall"). `None` when the curve never reaches
    /// the target.
    pub fn threshold_for_recall(&self, target: f64) -> Option<PrPoint> {
        self.points.iter().find(|p| p.recall >= target).copied()
    }

    /// The threshold maximizing F1 — a "good trade-off between precision
    /// and recall" selector.
    pub fn best_f1(&self) -> Option<PrPoint> {
        self.points
            .iter()
            .max_by(|a, b| {
                // Reversed descending order: ascending on reals with NaN
                // *below* every real, so a NaN F1 can never win max_by.
                darklight_order::cmp_f64_desc(f1(b), f1(a))
                    .then_with(|| darklight_order::cmp_f64_desc(b.threshold, a.threshold))
            })
            .copied()
    }
}

fn f1(p: &PrPoint) -> f64 {
    if p.precision + p.recall == 0.0 {
        0.0
    } else {
        2.0 * p.precision * p.recall / (p.precision + p.recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(score: f64, correct: bool) -> LabeledScore {
        LabeledScore {
            score,
            correct,
            has_truth: true,
        }
    }

    #[test]
    fn nan_scores_sort_last_and_never_win_best_f1() {
        // Regression: these sorts used partial_cmp().expect() and panicked
        // on NaN (e.g. a zero-norm query vector upstream). NaN must now
        // rank below every real score and never be selected as best F1.
        let labeled = vec![l(f64::NAN, false), l(0.9, true), l(0.2, false)];
        let c = PrCurve::from_labeled(&labeled);
        let first = c.points()[0];
        assert_eq!(first.threshold, 0.9);
        let best = c.best_f1().expect("curve has points");
        assert!(!best.threshold.is_nan(), "NaN threshold won best_f1");
    }

    #[test]
    fn perfect_ranking_gives_auc_one() {
        let labeled = vec![l(0.9, true), l(0.8, true), l(0.2, false), l(0.1, false)];
        let c = PrCurve::from_labeled(&labeled);
        // With only 2 positives having truth... wait: has_truth true for
        // all four, so positives = 4 and max recall = 0.5.
        assert_eq!(c.positives(), 4);
        let top = c.points()[0];
        assert_eq!(top.precision, 1.0);
    }

    #[test]
    fn auc_of_clean_separation() {
        // Two positives ranked above two incorrect emissions, and only the
        // two correct unknowns have truth present.
        let labeled = vec![
            LabeledScore {
                score: 0.9,
                correct: true,
                has_truth: true,
            },
            LabeledScore {
                score: 0.8,
                correct: true,
                has_truth: true,
            },
            LabeledScore {
                score: 0.2,
                correct: false,
                has_truth: false,
            },
            LabeledScore {
                score: 0.1,
                correct: false,
                has_truth: false,
            },
        ];
        let c = PrCurve::from_labeled(&labeled);
        assert!((c.auc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worst_ranking_low_auc() {
        let labeled = vec![l(0.9, false), l(0.8, false), l(0.2, true), l(0.1, true)];
        let c = PrCurve::from_labeled(&labeled);
        assert!(c.auc() < 0.5);
    }

    #[test]
    fn monotone_recall() {
        let labeled = vec![l(0.9, true), l(0.7, false), l(0.5, true), l(0.3, false)];
        let c = PrCurve::from_labeled(&labeled);
        for w in c.points().windows(2) {
            assert!(w[0].recall <= w[1].recall);
            assert!(w[0].threshold > w[1].threshold);
        }
    }

    #[test]
    fn tie_groups_consumed_together() {
        let labeled = vec![l(0.5, true), l(0.5, false)];
        let c = PrCurve::from_labeled(&labeled);
        assert_eq!(c.points().len(), 1);
        assert!((c.points()[0].precision - 0.5).abs() < 1e-12);
    }

    #[test]
    fn at_threshold_brackets() {
        let labeled = vec![l(0.9, true), l(0.5, true), l(0.1, false)];
        let c = PrCurve::from_labeled(&labeled);
        let p = c.at_threshold(0.6);
        assert!((p.recall - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.precision, 1.0);
        let p2 = c.at_threshold(0.05);
        assert!((p2.recall - 2.0 / 3.0).abs() < 1e-12);
        // Above all scores: nothing emitted.
        let p3 = c.at_threshold(0.95);
        assert_eq!((p3.precision, p3.recall), (1.0, 0.0));
    }

    #[test]
    fn threshold_for_recall_finds_operating_point() {
        let labeled = vec![l(0.9, true), l(0.7, true), l(0.5, false), l(0.3, true)];
        let c = PrCurve::from_labeled(&labeled);
        let p = c.threshold_for_recall(0.5).unwrap();
        assert!(p.recall >= 0.5);
        assert_eq!(p.threshold, 0.7);
        assert!(
            c.threshold_for_recall(0.99).is_none() || c.points().last().unwrap().recall >= 0.99
        );
    }

    #[test]
    fn best_f1_prefers_balanced_points() {
        let labeled = vec![l(0.9, true), l(0.8, true), l(0.7, true), l(0.1, false)];
        let c = PrCurve::from_labeled(&labeled);
        let best = c.best_f1().unwrap();
        assert!((best.recall - 0.75).abs() < 1e-12);
        assert_eq!(best.precision, 1.0);
    }

    #[test]
    fn empty_curve() {
        let c = PrCurve::from_labeled(&[]);
        assert_eq!(c.auc(), 0.0);
        assert!(c.points().is_empty());
        assert!(c.best_f1().is_none());
    }
}
