//! Bootstrap confidence intervals for precision/recall estimates.
//!
//! The paper reports point estimates (94% precision at 80% recall) on a
//! single split; with a few hundred matches, those numbers carry several
//! points of sampling noise. This module quantifies that: resample the
//! labeled best-match scores with replacement and report percentile
//! intervals — useful when deciding whether a measured difference (e.g.
//! between batched and unbatched modes) is real.
//!
//! The resampler is a self-contained SplitMix64, so intervals are
//! reproducible without a `rand` dependency.

use crate::metrics::{precision_recall_at, LabeledScore};

/// A percentile confidence interval for an estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// The point estimate on the full sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lower: f64,
    /// Upper percentile bound.
    pub upper: f64,
}

impl Interval {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// `true` when `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        (self.lower..=self.upper).contains(&value)
    }
}

/// Bootstrap configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapConfig {
    /// Number of resamples (default 1,000).
    pub resamples: usize,
    /// Central coverage, e.g. 0.95 for a 95% interval.
    pub coverage: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BootstrapConfig {
    fn default() -> BootstrapConfig {
        BootstrapConfig {
            resamples: 1_000,
            coverage: 0.95,
            seed: 0xB007,
        }
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Bootstrap intervals for precision and recall at a fixed threshold.
///
/// # Panics
///
/// Panics if `labeled` is empty, `resamples` is zero, or `coverage` is not
/// in `(0, 1)`.
pub fn precision_recall_interval(
    labeled: &[LabeledScore],
    threshold: f64,
    config: &BootstrapConfig,
) -> (Interval, Interval) {
    assert!(!labeled.is_empty(), "bootstrap needs at least one sample");
    assert!(config.resamples > 0, "resamples must be positive");
    assert!(
        config.coverage > 0.0 && config.coverage < 1.0,
        "coverage must be in (0, 1)"
    );
    let (p_est, r_est) = precision_recall_at(labeled, threshold);
    let mut rng = SplitMix64(config.seed);
    let mut precisions = Vec::with_capacity(config.resamples);
    let mut recalls = Vec::with_capacity(config.resamples);
    let mut resample = Vec::with_capacity(labeled.len());
    for _ in 0..config.resamples {
        resample.clear();
        for _ in 0..labeled.len() {
            resample.push(labeled[rng.index(labeled.len())]);
        }
        let (p, r) = precision_recall_at(&resample, threshold);
        precisions.push(p);
        recalls.push(r);
    }
    (
        percentile_interval(p_est, &mut precisions, config.coverage),
        percentile_interval(r_est, &mut recalls, config.coverage),
    )
}

fn percentile_interval(estimate: f64, samples: &mut [f64], coverage: f64) -> Interval {
    samples.sort_by(|a, b| darklight_order::cmp_f64_asc(*a, *b));
    let alpha = (1.0 - coverage) / 2.0;
    let lo_idx = ((samples.len() as f64) * alpha).floor() as usize;
    let hi_idx = (((samples.len() as f64) * (1.0 - alpha)).ceil() as usize)
        .saturating_sub(1)
        .min(samples.len() - 1);
    Interval {
        estimate,
        lower: samples[lo_idx],
        upper: samples[hi_idx],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(score: f64, correct: bool) -> LabeledScore {
        LabeledScore {
            score,
            correct,
            has_truth: true,
        }
    }

    fn sample(n: usize, accuracy: f64) -> Vec<LabeledScore> {
        (0..n)
            .map(|i| {
                let correct = (i as f64 / n as f64) < accuracy;
                l(if correct { 0.8 } else { 0.6 }, correct)
            })
            .collect()
    }

    #[test]
    fn interval_contains_estimate() {
        let labeled = sample(200, 0.8);
        let (p, r) = precision_recall_interval(&labeled, 0.5, &BootstrapConfig::default());
        assert!(p.contains(p.estimate), "{p:?}");
        assert!(r.contains(r.estimate), "{r:?}");
        assert!((p.estimate - 0.8).abs() < 1e-9);
    }

    #[test]
    fn more_data_tighter_interval() {
        let small = sample(50, 0.8);
        let large = sample(2_000, 0.8);
        let cfg = BootstrapConfig::default();
        let (p_small, _) = precision_recall_interval(&small, 0.5, &cfg);
        let (p_large, _) = precision_recall_interval(&large, 0.5, &cfg);
        assert!(
            p_large.width() < p_small.width(),
            "large {} vs small {}",
            p_large.width(),
            p_small.width()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let labeled = sample(100, 0.7);
        let cfg = BootstrapConfig::default();
        let a = precision_recall_interval(&labeled, 0.5, &cfg);
        let b = precision_recall_interval(&labeled, 0.5, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn perfect_sample_degenerate_interval() {
        let labeled = sample(100, 1.0);
        let (p, r) = precision_recall_interval(&labeled, 0.5, &BootstrapConfig::default());
        assert_eq!((p.lower, p.upper), (1.0, 1.0));
        assert_eq!((r.lower, r.upper), (1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_rejected() {
        precision_recall_interval(&[], 0.5, &BootstrapConfig::default());
    }

    #[test]
    #[should_panic(expected = "coverage")]
    fn bad_coverage_rejected() {
        let labeled = sample(10, 0.5);
        precision_recall_interval(
            &labeled,
            0.5,
            &BootstrapConfig {
                coverage: 1.5,
                ..BootstrapConfig::default()
            },
        );
    }

    #[test]
    fn interval_accessors() {
        let i = Interval {
            estimate: 0.5,
            lower: 0.4,
            upper: 0.7,
        };
        assert!((i.width() - 0.3).abs() < 1e-12);
        assert!(i.contains(0.4));
        assert!(!i.contains(0.39));
    }
}
