//! Plain-text table rendering for the experiment harness.
//!
//! The `repro` binary regenerates the paper's tables; this module renders
//! them as aligned monospace/markdown tables so `EXPERIMENTS.md` and the
//! console output read like the paper's.

use std::fmt::Write as _;

/// A simple column-aligned table with a markdown-compatible layout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded; longer rows
    /// are truncated.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a markdown table with aligned pipes.
    pub fn to_markdown(&self) -> String {
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].chars().count())
                    .chain(std::iter::once(h.chars().count()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            out.push('|');
            for (cell, w) in cells.iter().zip(&widths) {
                let _ = write!(out, " {cell:<w$} |");
            }
            out.push('\n');
        };
        render_row(&self.headers, &mut out);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

/// Formats a ratio as a percentage with one decimal (`0.937` → `93.7%`).
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with the given number of decimals.
pub fn num(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]).row(["b", "22222"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| name "));
        assert!(lines[1].starts_with("|--"));
        // All lines have equal width.
        assert!(lines
            .iter()
            .all(|l| l.chars().count() == lines[0].chars().count()));
    }

    #[test]
    fn rows_padded_and_truncated() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        t.row(["1", "2", "3", "4"]);
        assert_eq!(t.len(), 2);
        let md = t.to_markdown();
        assert!(!md.contains('4'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.937), "93.7%");
        assert_eq!(pct(1.0), "100.0%");
        assert_eq!(num(0.41904, 4), "0.4190");
    }

    #[test]
    fn empty_table() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.to_markdown().lines().count(), 2);
    }
}
