//! ROC curves and the equal error rate.
//!
//! The paper evaluates with precision-recall curves; related work it
//! compares against (Brocardo et al.) reports Equal Error Rate instead.
//! This module provides the ROC view over the same labeled best-match
//! scores so results can be compared against the verification literature.

use crate::metrics::LabeledScore;

/// One ROC point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// The threshold producing this point.
    pub threshold: f64,
    /// True-positive rate (recall over correct pairs).
    pub tpr: f64,
    /// False-positive rate (accepted wrong pairs over all wrong pairs).
    pub fpr: f64,
}

/// A ROC curve over labeled best-match scores: *positive* instances are
/// correct pairs, *negative* instances are wrong best-matches.
#[derive(Debug, Clone, PartialEq)]
pub struct RocCurve {
    points: Vec<RocPoint>,
    positives: usize,
    negatives: usize,
}

impl RocCurve {
    /// Builds the curve by sweeping all distinct scores (highest first).
    pub fn from_labeled(labeled: &[LabeledScore]) -> RocCurve {
        let positives = labeled.iter().filter(|l| l.correct).count();
        let negatives = labeled.len() - positives;
        let mut sorted: Vec<&LabeledScore> = labeled.iter().collect();
        sorted.sort_by(|a, b| darklight_order::cmp_f64_desc(a.score, b.score));
        let mut points = Vec::new();
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut i = 0;
        while i < sorted.len() {
            let t = sorted[i].score;
            if t.is_nan() {
                // NaN sorts last and can never clear a real threshold;
                // stop — `score == t` would never consume it (NaN != NaN).
                break;
            }
            while i < sorted.len() && sorted[i].score == t {
                if sorted[i].correct {
                    tp += 1;
                } else {
                    fp += 1;
                }
                i += 1;
            }
            points.push(RocPoint {
                threshold: t,
                tpr: ratio(tp, positives),
                fpr: ratio(fp, negatives),
            });
        }
        RocCurve {
            points,
            positives,
            negatives,
        }
    }

    /// The curve points, highest threshold first.
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Number of positive (correct-pair) instances.
    pub fn positives(&self) -> usize {
        self.positives
    }

    /// Number of negative instances.
    pub fn negatives(&self) -> usize {
        self.negatives
    }

    /// Area under the ROC curve via trapezoidal integration. 0.5 is chance
    /// level; degenerate curves (no positives or no negatives) return 0.
    pub fn auc(&self) -> f64 {
        if self.positives == 0 || self.negatives == 0 {
            return 0.0;
        }
        let mut auc = 0.0;
        let mut prev = RocPoint {
            threshold: f64::INFINITY,
            tpr: 0.0,
            fpr: 0.0,
        };
        for p in &self.points {
            auc += (p.fpr - prev.fpr) * (p.tpr + prev.tpr) / 2.0;
            prev = *p;
        }
        // Close the curve at (1, 1).
        auc += (1.0 - prev.fpr) * (1.0 + prev.tpr) / 2.0;
        auc
    }

    /// The equal error rate: the point where false-positive rate equals
    /// false-negative rate (1 − TPR). Returns the rate and the threshold
    /// where the two cross. `None` for degenerate curves.
    pub fn equal_error_rate(&self) -> Option<(f64, f64)> {
        if self.positives == 0 || self.negatives == 0 {
            return None;
        }
        let mut best: Option<(f64, f64, f64)> = None; // (gap, eer, threshold)
        for p in &self.points {
            let fnr = 1.0 - p.tpr;
            let gap = (p.fpr - fnr).abs();
            let eer = (p.fpr + fnr) / 2.0;
            if best.is_none_or(|(g, _, _)| gap < g) {
                best = Some((gap, eer, p.threshold));
            }
        }
        best.map(|(_, eer, t)| (eer, t))
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(score: f64, correct: bool) -> LabeledScore {
        LabeledScore {
            score,
            correct,
            has_truth: true,
        }
    }

    #[test]
    fn nan_scores_do_not_panic_and_sort_last() {
        // Regression: from_labeled used partial_cmp().expect() and
        // panicked on a NaN score; NaN now sweeps after every real one.
        let labeled = vec![l(f64::NAN, false), l(0.9, true), l(0.1, false)];
        let c = RocCurve::from_labeled(&labeled);
        assert_eq!(c.points().first().map(|p| p.threshold), Some(0.9));
    }

    #[test]
    fn perfect_separation_auc_one() {
        let labeled = vec![l(0.9, true), l(0.8, true), l(0.2, false), l(0.1, false)];
        let c = RocCurve::from_labeled(&labeled);
        assert!((c.auc() - 1.0).abs() < 1e-12, "auc {}", c.auc());
        let (eer, _) = c.equal_error_rate().unwrap();
        assert!(eer < 1e-12);
    }

    #[test]
    fn reversed_separation_auc_zero() {
        let labeled = vec![l(0.9, false), l(0.8, false), l(0.2, true), l(0.1, true)];
        let c = RocCurve::from_labeled(&labeled);
        assert!(c.auc() < 1e-12, "auc {}", c.auc());
    }

    #[test]
    fn random_interleaving_auc_half() {
        let labeled = vec![
            l(0.8, true),
            l(0.7, false),
            l(0.6, true),
            l(0.5, false),
            l(0.4, true),
            l(0.3, false),
        ];
        let c = RocCurve::from_labeled(&labeled);
        assert!((c.auc() - 0.5).abs() < 0.2, "auc {}", c.auc());
    }

    #[test]
    fn tpr_fpr_monotone() {
        let labeled = vec![
            l(0.9, true),
            l(0.7, false),
            l(0.5, true),
            l(0.4, false),
            l(0.2, true),
        ];
        let c = RocCurve::from_labeled(&labeled);
        for w in c.points().windows(2) {
            assert!(w[0].tpr <= w[1].tpr);
            assert!(w[0].fpr <= w[1].fpr);
        }
        let last = c.points().last().unwrap();
        assert!((last.tpr - 1.0).abs() < 1e-12);
        assert!((last.fpr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eer_balanced_point() {
        // Symmetric mix: EER should be around 1/3.
        let labeled = vec![
            l(0.9, true),
            l(0.8, false),
            l(0.7, true),
            l(0.6, false),
            l(0.5, true),
            l(0.4, false),
        ];
        let c = RocCurve::from_labeled(&labeled);
        let (eer, t) = c.equal_error_rate().unwrap();
        assert!((0.0..=0.5).contains(&eer), "eer {eer}");
        assert!(t > 0.3 && t < 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        let all_pos = vec![l(0.9, true), l(0.3, true)];
        let c = RocCurve::from_labeled(&all_pos);
        assert_eq!(c.auc(), 0.0);
        assert!(c.equal_error_rate().is_none());
        let empty = RocCurve::from_labeled(&[]);
        assert_eq!(empty.auc(), 0.0);
        assert_eq!(empty.positives(), 0);
        assert_eq!(empty.negatives(), 0);
    }
}
