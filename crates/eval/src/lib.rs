//! Evaluation layer: everything needed to score the pipeline the way the
//! paper does.
//!
//! * [`metrics`] — labeled match scores, accuracy@k (Table III, Fig. 4),
//!   precision/recall at a threshold;
//! * [`curve`] — precision-recall curves, AUC, and threshold calibration
//!   (§IV-E, Figs. 2/3/5, Tables V/VI);
//! * [`verdict`] — the simulated manual verification of §V-A: judging a
//!   matched pair True / Probably True / Unclear / False from the identity
//!   facts each alias leaked;
//! * [`profiler`] — the "John Doe" personal-profile aggregation of §V-D;
//! * [`report`] — plain-text/markdown table rendering for the experiment
//!   harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod curve;
pub mod metrics;
pub mod plot;
pub mod profiler;
pub mod ranks;
pub mod report;
pub mod roc;
pub mod verdict;

pub use bootstrap::{precision_recall_interval, BootstrapConfig, Interval};
pub use curve::PrCurve;
pub use metrics::{accuracy_at_k, labeled_best_matches, LabeledScore};
pub use ranks::RankHistogram;
pub use roc::RocCurve;
pub use verdict::{judge_pair, Verdict};
