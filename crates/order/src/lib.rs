//! # darklight-order — NaN-tolerant total orders over floats
//!
//! `f64::partial_cmp` is a trap in ranking code: one NaN score and the
//! comparator panics (or, with `sort_by` + `unwrap_or(Equal)`, silently
//! produces an implementation-defined order). Every ranking the pipeline
//! emits must instead go through the total orders defined here, which
//! agree with `partial_cmp` on real numbers and deterministically sort
//! NaN *after* every real value — a NaN score is a failed measurement
//! and must never beat a real one.
//!
//! This crate is the single blessed home for `partial_cmp` on floats;
//! the `nan-safe-ordering` rule in `darklight-audit` rejects any other
//! call site in the workspace.
//!
//! ## Idioms
//!
//! ```
//! use darklight_order::{cmp_f64_asc, cmp_f64_desc};
//!
//! // Best-first ranking: highest score first, NaN last.
//! let mut scores = vec![0.2, f64::NAN, 0.9];
//! scores.sort_by(|a, b| cmp_f64_desc(*a, *b));
//! assert_eq!(scores[0], 0.9);
//! assert!(scores[2].is_nan());
//!
//! // Ascending (quantiles, thresholds): NaN still last.
//! scores.sort_by(|a, b| cmp_f64_asc(*a, *b));
//! assert_eq!(scores[0], 0.2);
//!
//! // Max selection where NaN must lose: reverse the descending order,
//! // which puts NaN *below* every real value.
//! let best = [0.4, f64::NAN, 0.7]
//!     .into_iter()
//!     .max_by(|a, b| cmp_f64_desc(*b, *a));
//! assert_eq!(best, Some(0.7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Ordering;

/// Descending total order: higher values first, NaN after every real
/// value, `-0.0 == 0.0`. Agrees with `b.partial_cmp(&a)` whenever both
/// sides are real numbers.
pub fn cmp_f64_desc(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        // Both operands proven non-NaN by the match arm; this crate is
        // the blessed home of partial_cmp, so no allow is needed.
        (false, false) => b.partial_cmp(&a).expect("both values are non-NaN"),
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
    }
}

/// Ascending total order: lower values first, NaN after every real
/// value, `-0.0 == 0.0`. Agrees with `a.partial_cmp(&b)` whenever both
/// sides are real numbers.
pub fn cmp_f64_asc(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        // Both operands proven non-NaN by the match arm; this crate is
        // the blessed home of partial_cmp, so no allow is needed.
        (false, false) => a.partial_cmp(&b).expect("both values are non-NaN"),
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
    }
}

/// Descending order over `(score, index)` pairs: higher scores first,
/// NaN after every real score, ties (including NaN–NaN) broken toward
/// the lower index. This is the ranking order shared by stage-1
/// attribution, stage-2 rescoring, and every top-k the pipeline emits.
pub fn cmp_desc_indexed(a: (f64, usize), b: (f64, usize)) -> Ordering {
    cmp_f64_desc(a.0, b.0).then_with(|| a.1.cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desc_orders_reals_descending() {
        let mut v = vec![0.1, 0.9, 0.5];
        v.sort_by(|a, b| cmp_f64_desc(*a, *b));
        assert_eq!(v, vec![0.9, 0.5, 0.1]);
    }

    #[test]
    fn asc_orders_reals_ascending() {
        let mut v = vec![0.9, 0.1, 0.5];
        v.sort_by(|a, b| cmp_f64_asc(*a, *b));
        assert_eq!(v, vec![0.1, 0.5, 0.9]);
    }

    #[test]
    fn nan_sorts_last_in_both_directions() {
        let mut v = [f64::NAN, 0.5, f64::NAN, 0.9];
        v.sort_by(|a, b| cmp_f64_desc(*a, *b));
        assert_eq!(&v[..2], &[0.9, 0.5]);
        assert!(v[2].is_nan() && v[3].is_nan());

        let mut v = [f64::NAN, 0.5, f64::NAN, 0.9];
        v.sort_by(|a, b| cmp_f64_asc(*a, *b));
        assert_eq!(&v[..2], &[0.5, 0.9]);
        assert!(v[2].is_nan() && v[3].is_nan());
    }

    #[test]
    fn infinities_are_real_values() {
        let mut v = [0.0, f64::NEG_INFINITY, f64::INFINITY, f64::NAN];
        v.sort_by(|a, b| cmp_f64_desc(*a, *b));
        assert_eq!(v[0], f64::INFINITY);
        assert_eq!(v[1], 0.0);
        assert_eq!(v[2], f64::NEG_INFINITY);
        assert!(v[3].is_nan());
    }

    #[test]
    fn both_orders_are_total_and_antisymmetric() {
        let vals = [
            f64::NEG_INFINITY,
            -1.0,
            -0.0,
            0.0,
            2.5,
            f64::INFINITY,
            f64::NAN,
        ];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(cmp_f64_desc(a, b), cmp_f64_desc(b, a).reverse());
                assert_eq!(cmp_f64_asc(a, b), cmp_f64_asc(b, a).reverse());
                // Transitivity spot check via sort not panicking is covered
                // above; here pin that desc is the reverse of asc on reals.
                if !a.is_nan() && !b.is_nan() {
                    assert_eq!(cmp_f64_asc(a, b), cmp_f64_desc(a, b).reverse());
                }
            }
        }
    }

    #[test]
    fn negative_zero_compares_equal_to_zero() {
        // partial_cmp semantics, preserved so stable sorts keep the
        // incoming order of -0.0 and 0.0 and existing outputs don't move.
        assert_eq!(cmp_f64_desc(-0.0, 0.0), Ordering::Equal);
        assert_eq!(cmp_f64_asc(-0.0, 0.0), Ordering::Equal);
    }

    #[test]
    fn indexed_breaks_ties_toward_lower_index() {
        assert_eq!(cmp_desc_indexed((0.5, 1), (0.5, 2)), Ordering::Less);
        assert_eq!(cmp_desc_indexed((0.5, 2), (0.5, 1)), Ordering::Greater);
        assert_eq!(
            cmp_desc_indexed((f64::NAN, 0), (f64::NAN, 1)),
            Ordering::Less
        );
        assert_eq!(cmp_desc_indexed((f64::NAN, 0), (0.0, 9)), Ordering::Greater);
    }

    #[test]
    fn max_by_reversed_desc_makes_nan_lose() {
        let best = [f64::NAN, 0.3, 0.8, f64::NAN]
            .into_iter()
            .max_by(|a, b| cmp_f64_desc(*b, *a));
        assert_eq!(best, Some(0.8));
        // All-NaN input still yields a deterministic Some(NaN).
        let only = [f64::NAN].into_iter().max_by(|a, b| cmp_f64_desc(*b, *a));
        assert!(only.is_some_and(f64::is_nan));
    }
}
