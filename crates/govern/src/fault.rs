//! Deterministic I/O fault injection (`DARKLIGHT_FAULT_IO`).
//!
//! Mirrors the `DARKLIGHT_FAULT_PANICS` hook in `darklight-par`: the
//! environment variable is parsed once per process, and instrumented
//! I/O call sites ask [`maybe_fail_io`] before touching the filesystem.
//! Where the panic hook fires on a `(site, item index)` pair, the I/O
//! hook is a **countdown**: `DARKLIGHT_FAULT_IO=checkpoint.save:2`
//! makes the first two calls at `checkpoint.save` fail with a synthetic
//! [`std::io::Error`] and every later call succeed — exactly the shape
//! a transient-outage regression test needs (set the count below the
//! retry budget and the run must recover; above it and the run must
//! surface a typed error).
//!
//! Beyond the fail-count mode, two **write-corruption** modes model the
//! crashes a durable store must survive. Both are one-shot (they fire on
//! the first write at the site and never again) and are consumed via
//! [`take_write_fault`] by call sites that buffer their output bytes:
//!
//! * `trunc:<site>:<bytes>` — the write is torn: only the first
//!   `<bytes>` bytes reach the file (a crash mid-`write`).
//! * `flip:<site>:<byte-offset>` — the byte at `<byte-offset>` is
//!   XOR-ed with `0xff` before hitting the disk (a torn sector or
//!   bit-rot that the rename discipline alone cannot catch).
//!
//! Entries of all three modes mix freely in one comma-separated
//! variable: `DARKLIGHT_FAULT_IO=trunc:store.write:64,corpus.read:1`.
//! Injection stays deterministic — the spec is latched once per process
//! and each corruption entry fires exactly once at a fixed call.
//!
//! Sites instrumented today: `checkpoint.save`, `checkpoint.load`
//! (`darklight-core`), `corpus.read` (the CLI ingestion path), and the
//! `store.*` sites of `darklight-store` (`store.write_artifact`,
//! `store.publish_rename`, `store.current_swap`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable holding comma-separated fault entries: either
/// `site:count` (fail-count mode), `trunc:site:bytes`, or
/// `flip:site:byte-offset`.
pub const FAULT_IO_ENV: &str = "DARKLIGHT_FAULT_IO";

/// A one-shot corruption to apply to a buffered write at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Keep only the first `n` bytes of the write (torn write).
    Truncate(usize),
    /// XOR the byte at this offset with `0xff` (bit rot). Offsets past
    /// the end of the buffer leave it untouched.
    FlipByte(usize),
}

impl WriteFault {
    /// Applies this corruption to a byte buffer about to be written.
    pub fn corrupt(self, bytes: &mut Vec<u8>) {
        match self {
            WriteFault::Truncate(n) => bytes.truncate(n),
            WriteFault::FlipByte(off) => {
                if let Some(b) = bytes.get_mut(off) {
                    *b ^= 0xff;
                }
            }
        }
    }
}

struct Slot {
    site: String,
    remaining: AtomicU64,
}

struct CorruptSlot {
    site: String,
    fault: WriteFault,
    armed: AtomicBool,
}

struct Spec {
    counts: Vec<Slot>,
    corruptions: Vec<CorruptSlot>,
}

fn parse_entry(entry: &str, spec: &mut Spec) {
    let entry = entry.trim();
    if let Some(rest) = entry.strip_prefix("trunc:") {
        if let Some((site, bytes)) = rest.rsplit_once(':') {
            if let Ok(n) = bytes.trim().parse::<usize>() {
                spec.corruptions.push(CorruptSlot {
                    site: site.trim().to_string(),
                    fault: WriteFault::Truncate(n),
                    armed: AtomicBool::new(true),
                });
            }
        }
        return;
    }
    if let Some(rest) = entry.strip_prefix("flip:") {
        if let Some((site, off)) = rest.rsplit_once(':') {
            if let Ok(n) = off.trim().parse::<usize>() {
                spec.corruptions.push(CorruptSlot {
                    site: site.trim().to_string(),
                    fault: WriteFault::FlipByte(n),
                    armed: AtomicBool::new(true),
                });
            }
        }
        return;
    }
    if let Some((site, count)) = entry.rsplit_once(':') {
        if let Ok(count) = count.trim().parse::<u64>() {
            spec.counts.push(Slot {
                site: site.trim().to_string(),
                remaining: AtomicU64::new(count),
            });
        }
    }
}

fn spec() -> &'static Spec {
    static SPEC: OnceLock<Spec> = OnceLock::new();
    SPEC.get_or_init(|| {
        let mut spec = Spec {
            counts: Vec::new(),
            corruptions: Vec::new(),
        };
        if let Ok(raw) = std::env::var(FAULT_IO_ENV) {
            for entry in raw.split(',') {
                parse_entry(entry, &mut spec);
            }
        }
        spec
    })
}

/// True when a fault should fire for this call at `site` (consumes one
/// unit of the site's countdown).
pub fn take(site: &str) -> bool {
    for slot in &spec().counts {
        if slot.site == site {
            // Decrement-if-positive: the first `count` calls fault.
            return slot
                .remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok();
        }
    }
    false
}

/// Takes the one-shot write corruption armed for `site`, if any. The
/// first call at the site consumes it; later calls see `None`, so a
/// retry after the injected corruption writes clean bytes — exactly the
/// "transient torn write" shape a recovery test needs.
pub fn take_write_fault(site: &str) -> Option<WriteFault> {
    for slot in &spec().corruptions {
        if slot.site == site && slot.armed.swap(false, Ordering::Relaxed) {
            return Some(slot.fault);
        }
    }
    None
}

/// Fails with a synthetic, retry-classifiable [`std::io::Error`] while
/// the site's fault countdown is positive.
///
/// # Errors
///
/// An [`std::io::ErrorKind::Interrupted`] error naming the site — the
/// kind every retry classifier treats as transient.
pub fn maybe_fail_io(site: &str) -> std::io::Result<()> {
    if take(site) {
        Err(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            format!("injected i/o fault at {site} ({FAULT_IO_ENV})"),
        ))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // `spec()` latches the environment once per process, so these tests
    // exercise the parser indirectly: with the variable unset (the
    // normal `cargo test` environment) every site must pass. The
    // count-down behaviour itself is pinned end-to-end by
    // `tests/govern_soak.rs` and the CLI fault tests, which own their
    // process environment.
    #[test]
    fn unset_environment_injects_nothing() {
        assert!(!take("checkpoint.save"));
        assert!(maybe_fail_io("checkpoint.save").is_ok());
        assert!(maybe_fail_io("no.such.site").is_ok());
        assert!(take_write_fault("store.write_artifact").is_none());
    }

    // The parser itself is pure, so it can be pinned directly without
    // touching the process environment.
    #[test]
    fn parser_understands_all_three_modes() {
        let mut spec = Spec {
            counts: Vec::new(),
            corruptions: Vec::new(),
        };
        for entry in "checkpoint.save:2, trunc:store.write_artifact:64 ,flip:store.write_artifact:9"
            .split(',')
        {
            parse_entry(entry, &mut spec);
        }
        assert_eq!(spec.counts.len(), 1);
        assert_eq!(spec.counts[0].site, "checkpoint.save");
        assert_eq!(spec.counts[0].remaining.load(Ordering::Relaxed), 2);
        assert_eq!(spec.corruptions.len(), 2);
        assert_eq!(spec.corruptions[0].site, "store.write_artifact");
        assert_eq!(spec.corruptions[0].fault, WriteFault::Truncate(64));
        assert_eq!(spec.corruptions[1].fault, WriteFault::FlipByte(9));
    }

    #[test]
    fn parser_skips_malformed_entries() {
        let mut spec = Spec {
            counts: Vec::new(),
            corruptions: Vec::new(),
        };
        for entry in "trunc:nobytes,flip:site:notanumber,bare,site:3".split(',') {
            parse_entry(entry, &mut spec);
        }
        assert_eq!(spec.counts.len(), 1);
        assert!(spec.corruptions.is_empty());
    }

    #[test]
    fn corruptions_apply_deterministically() {
        let mut bytes = vec![1u8, 2, 3, 4];
        WriteFault::Truncate(2).corrupt(&mut bytes);
        assert_eq!(bytes, [1, 2]);
        let mut bytes = vec![0u8, 0, 0];
        WriteFault::FlipByte(1).corrupt(&mut bytes);
        assert_eq!(bytes, [0, 0xff, 0]);
        // Past-the-end flip is a no-op, not a panic.
        WriteFault::FlipByte(99).corrupt(&mut bytes);
        assert_eq!(bytes, [0, 0xff, 0]);
    }
}
