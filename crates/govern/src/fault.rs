//! Deterministic I/O fault injection (`DARKLIGHT_FAULT_IO`).
//!
//! Mirrors the `DARKLIGHT_FAULT_PANICS` hook in `darklight-par`: the
//! environment variable is parsed once per process, and instrumented
//! I/O call sites ask [`maybe_fail_io`] before touching the filesystem.
//! Where the panic hook fires on a `(site, item index)` pair, the I/O
//! hook is a **countdown**: `DARKLIGHT_FAULT_IO=checkpoint.save:2`
//! makes the first two calls at `checkpoint.save` fail with a synthetic
//! [`std::io::Error`] and every later call succeed — exactly the shape
//! a transient-outage regression test needs (set the count below the
//! retry budget and the run must recover; above it and the run must
//! surface a typed error).
//!
//! Sites instrumented today: `checkpoint.save`, `checkpoint.load`
//! (`darklight-core`), and `corpus.read` (the CLI ingestion path).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable holding comma-separated `site:count` pairs.
pub const FAULT_IO_ENV: &str = "DARKLIGHT_FAULT_IO";

struct Slot {
    site: String,
    remaining: AtomicU64,
}

fn spec() -> &'static [Slot] {
    static SPEC: OnceLock<Vec<Slot>> = OnceLock::new();
    SPEC.get_or_init(|| {
        let Ok(raw) = std::env::var(FAULT_IO_ENV) else {
            return Vec::new();
        };
        raw.split(',')
            .filter_map(|entry| {
                let entry = entry.trim();
                let (site, count) = entry.rsplit_once(':')?;
                let count: u64 = count.trim().parse().ok()?;
                Some(Slot {
                    site: site.trim().to_string(),
                    remaining: AtomicU64::new(count),
                })
            })
            .collect()
    })
}

/// True when a fault should fire for this call at `site` (consumes one
/// unit of the site's countdown).
pub fn take(site: &str) -> bool {
    for slot in spec() {
        if slot.site == site {
            // Decrement-if-positive: the first `count` calls fault.
            return slot
                .remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok();
        }
    }
    false
}

/// Fails with a synthetic, retry-classifiable [`std::io::Error`] while
/// the site's fault countdown is positive.
///
/// # Errors
///
/// An [`std::io::ErrorKind::Interrupted`] error naming the site — the
/// kind every retry classifier treats as transient.
pub fn maybe_fail_io(site: &str) -> std::io::Result<()> {
    if take(site) {
        Err(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            format!("injected i/o fault at {site} ({FAULT_IO_ENV})"),
        ))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // `spec()` latches the environment once per process, so these tests
    // exercise the parser indirectly: with the variable unset (the
    // normal `cargo test` environment) every site must pass. The
    // count-down behaviour itself is pinned end-to-end by
    // `tests/govern_soak.rs` and the CLI fault tests, which own their
    // process environment.
    #[test]
    fn unset_environment_injects_nothing() {
        assert!(!take("checkpoint.save"));
        assert!(maybe_fail_io("checkpoint.save").is_ok());
        assert!(maybe_fail_io("no.such.site").is_ok());
    }
}
