//! Deterministic jittered-backoff retries for transient I/O.
//!
//! Long batch runs die disproportionately to *transient* failures — an
//! NFS hiccup during a checkpoint save, a corpus file briefly locked by
//! a log shipper. [`with_retry`] wraps such call sites: transient errors
//! are retried a bounded number of times with exponential backoff, and
//! anything else (or exhaustion) propagates unchanged so callers keep
//! their typed error taxonomy.
//!
//! The backoff jitter is derived purely from `(seed, site, attempt)`
//! with a SplitMix64 mix — no ambient RNG — so a retried run sleeps the
//! exact same schedule every time. Callers pass the run fingerprint as
//! the seed, which keeps the whole failure model reproducible and the
//! `no-ambient-time-or-rand` audit rule intact.

use darklight_obs::PipelineMetrics;
use std::time::Duration;

/// Backoff policy for [`with_retry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (so `3` means up to 4 tries).
    pub max_retries: u32,
    /// Delay before the first retry; doubles each further retry.
    pub base_delay_ms: u64,
    /// Upper clamp on any single delay, pre-jitter.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_delay_ms: 10,
            max_delay_ms: 200,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (the pre-governor behaviour).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_delay_ms: 0,
            max_delay_ms: 0,
        }
    }

    /// Total attempts this policy implies (initial try + retries), for
    /// error messages.
    pub fn attempts(&self) -> u32 {
        self.max_retries + 1
    }

    /// The delay before retry number `attempt` (0-based) at `site`:
    /// exponential in `attempt`, clamped to `max_delay_ms`, then jittered
    /// to 50–100% of that value using only `(seed, site, attempt)`.
    pub fn delay(&self, site: &str, seed: u64, attempt: u32) -> Duration {
        if self.base_delay_ms == 0 {
            return Duration::ZERO;
        }
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_delay_ms.max(self.base_delay_ms));
        let jitter = splitmix64(seed ^ fnv64(site.as_bytes()) ^ u64::from(attempt));
        // Map the mix onto [exp/2, exp]: full-range jitter desynchronizes
        // concurrent retries without ever collapsing the wait to zero.
        let half = exp / 2;
        Duration::from_millis(half + jitter % (exp - half + 1))
    }
}

/// Derives a deterministic retry seed from arbitrary bytes (FNV-1a).
/// Call sites without a run fingerprint — e.g. corpus reads keyed only
/// by path — use this so their jitter schedule is still reproducible.
pub fn seed_from(bytes: &[u8]) -> u64 {
    fnv64(bytes)
}

/// FNV-1a over `bytes`; used only to fold the site name into the seed.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer — a tiny, well-mixed pure function of its input.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Runs `op`, retrying transient failures per `policy`.
///
/// `classify` decides whether an error is transient (retryable); errors
/// it rejects propagate immediately, preserving fail-fast semantics for
/// corruption-class failures (a malformed checkpoint will never succeed
/// on retry, a timed-out NFS write might). Each performed retry
/// increments the `govern.io_retries` counter. The final error after
/// exhaustion is returned unchanged so callers keep their error type;
/// use [`crate::GovernError::IoExhausted`] at the edge if a govern-typed
/// error is wanted.
///
/// # Errors
///
/// The last error from `op` once retries are exhausted, or the first
/// non-transient error.
pub fn with_retry<T, E>(
    site: &str,
    policy: &RetryPolicy,
    seed: u64,
    metrics: &PipelineMetrics,
    classify: impl Fn(&E) -> bool,
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    let mut attempt: u32 = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if attempt < policy.max_retries && classify(&e) => {
                metrics.counter("govern.io_retries").incr();
                let delay = policy.delay(site, seed, attempt);
                if !delay.is_zero() {
                    // audit:allow(spawn-through-par) -- backoff sleep on the calling thread, not a thread spawn
                    std::thread::sleep(delay);
                }
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn metrics() -> PipelineMetrics {
        PipelineMetrics::enabled()
    }

    #[test]
    fn first_success_needs_no_retry() {
        let m = metrics();
        let out: Result<i32, String> =
            with_retry("t.ok", &RetryPolicy::default(), 7, &m, |_| true, || Ok(42));
        assert_eq!(out.unwrap(), 42);
        assert_eq!(m.counter("govern.io_retries").get(), 0);
    }

    #[test]
    fn transient_failures_below_budget_recover() {
        let m = metrics();
        let calls = Cell::new(0u32);
        let fast = RetryPolicy {
            base_delay_ms: 0,
            ..RetryPolicy::default()
        };
        let out: Result<&str, String> = with_retry(
            "t.flaky",
            &fast,
            7,
            &m,
            |_| true,
            || {
                calls.set(calls.get() + 1);
                if calls.get() <= 2 {
                    Err("transient".to_string())
                } else {
                    Ok("recovered")
                }
            },
        );
        assert_eq!(out.unwrap(), "recovered");
        assert_eq!(calls.get(), 3);
        assert_eq!(m.counter("govern.io_retries").get(), 2);
    }

    #[test]
    fn exhaustion_returns_the_last_error() {
        let m = metrics();
        let fast = RetryPolicy {
            max_retries: 2,
            base_delay_ms: 0,
            max_delay_ms: 0,
        };
        let calls = Cell::new(0u32);
        let out: Result<(), String> = with_retry(
            "t.dead",
            &fast,
            7,
            &m,
            |_| true,
            || {
                calls.set(calls.get() + 1);
                Err(format!("fail #{}", calls.get()))
            },
        );
        assert_eq!(out.unwrap_err(), "fail #3");
        assert_eq!(calls.get(), 3, "1 try + 2 retries");
        assert_eq!(m.counter("govern.io_retries").get(), 2);
        assert_eq!(fast.attempts(), 3);
    }

    #[test]
    fn non_transient_errors_fail_fast() {
        let m = metrics();
        let calls = Cell::new(0u32);
        let out: Result<(), &str> = with_retry(
            "t.fatal",
            &RetryPolicy::default(),
            7,
            &m,
            |_| false,
            || {
                calls.set(calls.get() + 1);
                Err("corrupt")
            },
        );
        assert_eq!(out.unwrap_err(), "corrupt");
        assert_eq!(calls.get(), 1);
        assert_eq!(m.counter("govern.io_retries").get(), 0);
    }

    #[test]
    fn delays_are_deterministic_in_seed_site_attempt() {
        let p = RetryPolicy::default();
        for attempt in 0..4 {
            assert_eq!(
                p.delay("checkpoint.save", 99, attempt),
                p.delay("checkpoint.save", 99, attempt)
            );
        }
        // Different sites and seeds jitter differently (with these
        // constants; not a universal guarantee, just a sanity probe).
        assert_ne!(
            p.delay("checkpoint.save", 99, 1),
            p.delay("corpus.read", 99, 1)
        );
        let d = p.delay("s", 1, 0);
        assert!(d >= Duration::from_millis(5) && d <= Duration::from_millis(10));
        assert_eq!(RetryPolicy::none().delay("s", 1, 0), Duration::ZERO);
    }
}
