//! Resource governor for long-running attribution jobs.
//!
//! The paper's batch mode (§IV-J) exists to fit the attribution pipeline
//! into bounded RAM, but a fixed `batch_size` knob is blind: it neither
//! measures what a round actually costs nor reacts when the estimate was
//! wrong, and an hours-long run dies to the first transient I/O error or
//! overrun wall-clock. This crate supplies the missing pieces as small,
//! dependency-free primitives that the core batch driver composes:
//!
//! - [`MemoryBudget`] — a parsed byte budget (`512MiB`, env
//!   `DARKLIGHT_MEM_BUDGET`) from which the batch size is *derived*
//!   instead of guessed, via the [`EstimateBytes`] cost model.
//! - [`Deadline`] — a cooperative cancellation token checked between
//!   batch rounds and inside worker chunk loops; expiry is a typed
//!   [`GovernError::DeadlineExpired`] with a valid checkpoint on disk,
//!   never a torn run.
//! - [`RetryPolicy`] / [`with_retry`] — jittered exponential backoff
//!   around checkpoint and corpus I/O, with jitter derived purely from
//!   the run fingerprint so retried runs stay deterministic.
//! - [`fault`] — a `DARKLIGHT_FAULT_IO=site:count` injection hook
//!   mirroring `DARKLIGHT_FAULT_PANICS`, so every retry path has a
//!   deterministic regression test.
//!
//! Everything here is policy-free data plus pure functions: the actual
//! shrink-and-re-round ladder lives in `darklight-core::batch`, which
//! owns the round loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod deadline;
pub mod fault;
mod retry;

pub use budget::{EstimateBytes, MemoryBudget, MEM_BUDGET_ENV};
pub use deadline::{parse_duration, Deadline, Expired};
pub use retry::{seed_from, with_retry, RetryPolicy};

use std::fmt;

/// Typed failures raised by the resource governor.
#[derive(Debug)]
pub enum GovernError {
    /// A size string (`--mem-budget`, `DARKLIGHT_MEM_BUDGET`) did not
    /// parse; the message says what was wrong and what would be accepted.
    ParseSize(String),
    /// A duration string (`--deadline`) did not parse.
    ParseDuration(String),
    /// The budget cannot hold even the smallest possible round.
    BudgetTooSmall {
        /// The configured budget, in bytes.
        budget: u64,
        /// The minimum budget that would admit a one-record batch.
        required: u64,
    },
    /// The run's deadline expired; the last completed round is on disk
    /// when a checkpoint path was configured.
    DeadlineExpired {
        /// Rounds completed before expiry.
        rounds_done: u64,
    },
    /// An I/O site kept failing after the retry budget was spent.
    IoExhausted {
        /// The instrumented site name (e.g. `checkpoint.save`).
        site: String,
        /// Total attempts made (initial try + retries).
        attempts: u32,
        /// Display form of the last error.
        last: String,
    },
}

impl fmt::Display for GovernError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GovernError::ParseSize(why) => write!(f, "invalid memory size: {why}"),
            GovernError::ParseDuration(why) => write!(f, "invalid duration: {why}"),
            GovernError::BudgetTooSmall { budget, required } => write!(
                f,
                "memory budget of {budget} bytes cannot hold the query set plus a \
                 single-record batch (~{required} bytes needed); raise --mem-budget \
                 to at least {required}B or shrink the corpus"
            ),
            GovernError::DeadlineExpired { rounds_done } => write!(
                f,
                "deadline expired after {rounds_done} completed round(s); progress up to \
                 the last completed round is checkpointed — rerun with the same \
                 --checkpoint path (and no or a longer --deadline) to resume"
            ),
            GovernError::IoExhausted {
                site,
                attempts,
                last,
            } => write!(
                f,
                "i/o at {site} still failing after {attempts} attempts: {last}"
            ),
        }
    }
}

impl std::error::Error for GovernError {}

/// Everything the governor needs to supervise one batched run.
///
/// Default is fully inert: no budget, no deadline, and the default retry
/// policy (which only matters once an I/O error actually occurs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GovernConfig {
    /// Byte budget the pressure ladder enforces; `None` disables
    /// memory governance entirely.
    pub budget: Option<MemoryBudget>,
    /// Cooperative cancellation token; [`Deadline::none`] never expires.
    pub deadline: Deadline,
    /// Backoff policy for checkpoint/corpus I/O retries.
    pub retry: RetryPolicy,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inert() {
        let cfg = GovernConfig::default();
        assert!(cfg.budget.is_none());
        assert!(!cfg.deadline.is_expired());
        assert_eq!(cfg, GovernConfig::default());
    }

    #[test]
    fn errors_render_actionable_messages() {
        let e = GovernError::BudgetTooSmall {
            budget: 10,
            required: 999,
        };
        assert!(e.to_string().contains("999"), "{e}");
        let e = GovernError::DeadlineExpired { rounds_done: 4 };
        assert!(e.to_string().contains("4 completed round"), "{e}");
        let e = GovernError::IoExhausted {
            site: "checkpoint.save".to_string(),
            attempts: 4,
            last: "disk on fire".to_string(),
        };
        assert!(e.to_string().contains("checkpoint.save"), "{e}");
        assert!(e.to_string().contains("disk on fire"), "{e}");
    }
}
