//! Cooperative deadlines for long-running stages.
//!
//! A [`Deadline`] is a cheap cloneable token that worker loops poll
//! between items and the batch driver polls between rounds. It never
//! preempts anything: a run that observes expiry abandons the current
//! round's partial work (which was never visible outside the worker) and
//! surfaces a typed error, leaving the last completed round's checkpoint
//! on disk. Because partial work is discarded wholesale, a deadline can
//! change *when* a run stops but never *what bytes* it produces — the
//! thread-parity suite pins this.

use crate::GovernError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Marker error returned by deadline-aware parallel maps: the token
/// expired and the map's partial results were discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expired;

impl std::fmt::Display for Expired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline expired")
    }
}

impl std::error::Error for Expired {}

#[derive(Debug)]
enum Inner {
    /// Wall-clock deadline for operators (`--deadline 30m`).
    Timer {
        start: Instant,
        limit: Duration,
        tripped: AtomicBool,
    },
    /// Deterministic round-counted deadline for tests and ops drills:
    /// expires once [`Deadline::tick_round`] has been called `n` times.
    Rounds {
        remaining: AtomicU64,
        tripped: AtomicBool,
    },
}

/// A cooperative cancellation token; see the module docs.
///
/// Clones share state: any clone observing expiry means every clone
/// does. The default token never expires.
#[derive(Debug, Clone, Default)]
pub struct Deadline {
    inner: Option<Arc<Inner>>,
}

/// Two deadlines are equal when they are the same shared token (or both
/// the never-expiring default) — a deadline is an identity, not a value.
impl PartialEq for Deadline {
    fn eq(&self, other: &Deadline) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Deadline {
    /// A token that never expires.
    pub fn none() -> Deadline {
        Deadline::default()
    }

    /// A wall-clock deadline `limit` from now.
    pub fn after(limit: Duration) -> Deadline {
        // The clock decides only when a run stops, never what it
        // outputs: expiry discards the round's partial work and resumes
        // from the checkpoint, so the result bytes are clock-independent
        // (pinned by thread_parity).
        // audit:allow(no-ambient-time-or-rand) -- stop-time only, output bytes never depend on the clock
        let start = Instant::now();
        Deadline {
            inner: Some(Arc::new(Inner::Timer {
                start,
                limit,
                tripped: AtomicBool::new(false),
            })),
        }
    }

    /// A deterministic deadline that expires after `rounds` completed
    /// batch rounds (each round boundary calls [`Deadline::tick_round`]).
    /// Zero expires before the first round.
    pub fn after_rounds(rounds: u64) -> Deadline {
        Deadline {
            inner: Some(Arc::new(Inner::Rounds {
                remaining: AtomicU64::new(rounds),
                tripped: AtomicBool::new(rounds == 0),
            })),
        }
    }

    /// True once the deadline has passed. Sticky: never un-expires.
    ///
    /// For round-counted deadlines this only reads the tripped flag, so
    /// worker threads polling mid-round all see the same answer no
    /// matter how items are divided — expiry can only flip at a round
    /// boundary, which keeps degraded runs thread-count-invariant.
    pub fn is_expired(&self) -> bool {
        match self.inner.as_deref() {
            None => false,
            Some(Inner::Timer {
                start,
                limit,
                tripped,
            }) => {
                if tripped.load(Ordering::Relaxed) {
                    return true;
                }
                // Same invariant as `after`: the clock gates stopping,
                // never output bytes.
                // audit:allow(no-ambient-time-or-rand) -- elapsed() gates stopping only; results are discarded wholesale on expiry
                let expired = start.elapsed() >= *limit;
                if expired {
                    tripped.store(true, Ordering::Relaxed);
                }
                expired
            }
            Some(Inner::Rounds { tripped, .. }) => tripped.load(Ordering::Relaxed),
        }
    }

    /// Records one completed batch round (round-counted deadlines only;
    /// a no-op for timer and never-expiring tokens).
    pub fn tick_round(&self) {
        if let Some(Inner::Rounds { remaining, tripped }) = self.inner.as_deref() {
            let before = remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                    Some(n.saturating_sub(1))
                })
                .unwrap_or(0);
            if before <= 1 {
                tripped.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Returns the typed expiry error when the deadline has passed.
    ///
    /// # Errors
    ///
    /// [`GovernError::DeadlineExpired`] carrying `rounds_done` so the
    /// message can tell the operator how much progress is checkpointed.
    pub fn check(&self, rounds_done: u64) -> Result<(), GovernError> {
        if self.is_expired() {
            Err(GovernError::DeadlineExpired { rounds_done })
        } else {
            Ok(())
        }
    }
}

/// Parses a human-readable duration: a non-negative integer followed by
/// `ms`, `s`, `m`, or `h` (e.g. `30m`, `90s`, `500ms`).
///
/// # Errors
///
/// Rejects missing numbers, unknown units, bare numbers (the unit is
/// mandatory — `30` alone is ambiguous), and overflow.
pub fn parse_duration(input: &str) -> Result<Duration, GovernError> {
    let s = input.trim();
    if s.is_empty() {
        return Err(GovernError::ParseDuration(
            "empty duration; expected e.g. \"30m\" or \"90s\"".to_string(),
        ));
    }
    let digits_end = s
        .char_indices()
        .find(|(_, c)| !c.is_ascii_digit())
        .map_or(s.len(), |(i, _)| i);
    let (digits, unit) = s.split_at(digits_end);
    if digits.is_empty() {
        return Err(GovernError::ParseDuration(format!(
            "{s:?} has no leading number; expected e.g. \"30m\""
        )));
    }
    let value: u64 = digits
        .parse()
        .map_err(|_| GovernError::ParseDuration(format!("{digits:?} overflows a 64-bit count")))?;
    let millis = match unit.trim() {
        "ms" => Some(value),
        "s" => value.checked_mul(1_000),
        "m" => value.checked_mul(60_000),
        "h" => value.checked_mul(3_600_000),
        "" => {
            return Err(GovernError::ParseDuration(format!(
                "{s:?} has no unit; write \"{digits}s\", \"{digits}m\", or \"{digits}h\""
            )));
        }
        other => {
            return Err(GovernError::ParseDuration(format!(
                "unknown unit {other:?} in {s:?}; accepted units: ms, s, m, h"
            )));
        }
    };
    millis
        .map(Duration::from_millis)
        .ok_or_else(|| GovernError::ParseDuration(format!("{s:?} overflows")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_never_expires() {
        let d = Deadline::none();
        assert!(!d.is_expired());
        d.tick_round();
        assert!(!d.is_expired());
        assert!(d.check(7).is_ok());
    }

    #[test]
    fn round_deadline_trips_exactly_on_schedule() {
        let d = Deadline::after_rounds(2);
        assert!(!d.is_expired());
        d.tick_round();
        assert!(!d.is_expired(), "one round left");
        d.tick_round();
        assert!(d.is_expired(), "budget spent");
        d.tick_round();
        assert!(d.is_expired(), "expiry is sticky");
        let err = d.check(2).unwrap_err();
        assert!(matches!(
            err,
            GovernError::DeadlineExpired { rounds_done: 2 }
        ));
    }

    #[test]
    fn zero_round_deadline_is_born_expired() {
        assert!(Deadline::after_rounds(0).is_expired());
    }

    #[test]
    fn clones_share_expiry() {
        let d = Deadline::after_rounds(1);
        let clone = d.clone();
        d.tick_round();
        assert!(clone.is_expired());
        assert_eq!(d, clone);
        assert_ne!(d, Deadline::after_rounds(1));
        assert_eq!(Deadline::none(), Deadline::none());
    }

    #[test]
    fn timer_deadline_expires_and_sticks() {
        let d = Deadline::after(Duration::from_millis(0));
        assert!(d.is_expired());
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.is_expired());
    }

    #[test]
    fn durations_parse_and_reject() {
        assert_eq!(parse_duration("30m").unwrap(), Duration::from_secs(1800));
        assert_eq!(parse_duration("90s").unwrap(), Duration::from_secs(90));
        assert_eq!(parse_duration("500ms").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_duration("2h").unwrap(), Duration::from_secs(7200));
        assert!(parse_duration("30").is_err(), "unit is mandatory");
        assert!(parse_duration("m").is_err());
        assert!(parse_duration("30 parsecs").is_err());
        assert!(parse_duration("").is_err());
        assert!(parse_duration("99999999999999999999h").is_err());
    }
}
