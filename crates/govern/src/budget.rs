//! Memory budgets and the byte-estimation cost model behind them.

use crate::GovernError;

/// Environment variable consulted when no `--mem-budget` flag is given.
pub const MEM_BUDGET_ENV: &str = "DARKLIGHT_MEM_BUDGET";

/// A rough, deterministic estimate of a value's resident size in bytes.
///
/// The point is not allocator-accurate accounting — it is a *stable*
/// cost model shared by [`crate::MemoryBudget`] derivation and the
/// in-run pressure ladder, so that "derive the batch size from the
/// budget" and "measure what this round will cost" can never disagree
/// about units. Implementations must be pure functions of the value's
/// logical content (no pointers, no capacity), so estimates are
/// identical across runs and platforms.
pub trait EstimateBytes {
    /// Estimated resident bytes of `self`.
    fn estimate_bytes(&self) -> u64;
}

impl EstimateBytes for String {
    fn estimate_bytes(&self) -> u64 {
        // Heap payload plus the ptr/len/cap header.
        self.len() as u64 + 24
    }
}

impl EstimateBytes for str {
    fn estimate_bytes(&self) -> u64 {
        self.len() as u64 + 16
    }
}

impl<T: EstimateBytes> EstimateBytes for Vec<T> {
    fn estimate_bytes(&self) -> u64 {
        24 + self.iter().map(EstimateBytes::estimate_bytes).sum::<u64>()
    }
}

impl<T: EstimateBytes> EstimateBytes for Option<T> {
    fn estimate_bytes(&self) -> u64 {
        self.as_ref().map_or(0, EstimateBytes::estimate_bytes)
    }
}

/// A byte budget for one attribution run, parsed from `512MiB`-style
/// strings (CLI `--mem-budget`, env [`MEM_BUDGET_ENV`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    bytes: u64,
}

impl MemoryBudget {
    /// A budget of exactly `bytes` bytes.
    ///
    /// # Errors
    ///
    /// Zero is rejected — a zero budget can never admit a round and is
    /// always a configuration mistake.
    pub fn from_bytes(bytes: u64) -> Result<MemoryBudget, GovernError> {
        if bytes == 0 {
            return Err(GovernError::ParseSize(
                "budget must be positive (got 0)".to_string(),
            ));
        }
        Ok(MemoryBudget { bytes })
    }

    /// The budget in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Parses a human-readable size: a non-negative integer followed by
    /// an optional binary unit (`B`, `KiB`, `MiB`, `GiB`, `TiB`; bare
    /// numbers are bytes).
    ///
    /// # Errors
    ///
    /// Rejects decimal units (`512MB` — suggests `512MiB`), negative or
    /// fractional values, unknown suffixes, zero, and sizes that
    /// overflow `u64`, each with a message saying how to fix it.
    pub fn parse(input: &str) -> Result<MemoryBudget, GovernError> {
        let s = input.trim();
        if s.is_empty() {
            return Err(GovernError::ParseSize(
                "empty size; expected e.g. \"512MiB\" or a byte count".to_string(),
            ));
        }
        if s.starts_with('-') {
            return Err(GovernError::ParseSize(format!(
                "{s:?} is negative; a memory budget must be a positive size like \"512MiB\""
            )));
        }
        let digits_end = s
            .char_indices()
            .find(|(_, c)| !c.is_ascii_digit())
            .map_or(s.len(), |(i, _)| i);
        let (digits, unit) = s.split_at(digits_end);
        if digits.is_empty() {
            return Err(GovernError::ParseSize(format!(
                "{s:?} has no leading number; expected e.g. \"512MiB\""
            )));
        }
        if unit.starts_with('.') {
            return Err(GovernError::ParseSize(format!(
                "{s:?} is fractional; use a whole number of a smaller unit (e.g. \"1536MiB\" \
                 instead of \"1.5GiB\")"
            )));
        }
        let value: u64 = digits.parse().map_err(|_| {
            GovernError::ParseSize(format!("{digits:?} overflows a 64-bit byte count"))
        })?;
        let multiplier: u64 = match unit.trim() {
            "" | "B" => 1,
            "KiB" => 1 << 10,
            "MiB" => 1 << 20,
            "GiB" => 1 << 30,
            "TiB" => 1 << 40,
            "KB" | "kB" | "MB" | "GB" | "TB" | "K" | "k" | "M" | "G" | "T" => {
                let fixed = match unit.trim() {
                    "KB" | "kB" | "K" | "k" => "KiB",
                    "MB" | "M" => "MiB",
                    "GB" | "G" => "GiB",
                    _ => "TiB",
                };
                return Err(GovernError::ParseSize(format!(
                    "{s:?} uses a decimal unit; this tool only accepts binary units — \
                     write \"{digits}{fixed}\""
                )));
            }
            other => {
                return Err(GovernError::ParseSize(format!(
                    "unknown unit {other:?} in {s:?}; accepted units: B, KiB, MiB, GiB, TiB"
                )));
            }
        };
        let bytes = value.checked_mul(multiplier).ok_or_else(|| {
            GovernError::ParseSize(format!("{s:?} overflows a 64-bit byte count"))
        })?;
        MemoryBudget::from_bytes(bytes)
    }

    /// Reads [`MEM_BUDGET_ENV`]; `Ok(None)` when unset or empty.
    ///
    /// # Errors
    ///
    /// A set-but-malformed value is an error, not a silent fallback — an
    /// operator who exported a budget wants it enforced or rejected,
    /// never ignored.
    pub fn from_env() -> Result<Option<MemoryBudget>, GovernError> {
        match std::env::var(MEM_BUDGET_ENV) {
            Ok(v) if v.trim().is_empty() => Ok(None),
            Ok(v) => MemoryBudget::parse(&v)
                .map(Some)
                .map_err(|e| GovernError::ParseSize(format!("{MEM_BUDGET_ENV}: {e}"))),
            Err(_) => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_binary_units_and_bare_bytes() {
        assert_eq!(MemoryBudget::parse("1024").unwrap().bytes(), 1024);
        assert_eq!(MemoryBudget::parse("4KiB").unwrap().bytes(), 4096);
        assert_eq!(MemoryBudget::parse("512MiB").unwrap().bytes(), 512 << 20);
        assert_eq!(MemoryBudget::parse("2GiB").unwrap().bytes(), 2 << 30);
        assert_eq!(MemoryBudget::parse(" 8B ").unwrap().bytes(), 8);
    }

    #[test]
    fn decimal_units_are_rejected_with_the_binary_fix() {
        let err = MemoryBudget::parse("512MB").unwrap_err();
        assert!(err.to_string().contains("512MiB"), "{err}");
        let err = MemoryBudget::parse("1GB").unwrap_err();
        assert!(err.to_string().contains("1GiB"), "{err}");
    }

    #[test]
    fn negative_zero_fractional_and_overflow_are_rejected() {
        assert!(MemoryBudget::parse("-5MiB").is_err());
        assert!(MemoryBudget::parse("0").is_err());
        assert!(MemoryBudget::parse("0MiB").is_err());
        assert!(MemoryBudget::parse("1.5GiB").is_err());
        assert!(MemoryBudget::parse("99999999999999999999").is_err());
        let err = MemoryBudget::parse("999999999999TiB").unwrap_err();
        assert!(err.to_string().contains("overflow"), "{err}");
        assert!(MemoryBudget::parse("12XiB").is_err());
        assert!(MemoryBudget::parse("MiB").is_err());
        assert!(MemoryBudget::parse("").is_err());
    }

    #[test]
    fn estimate_bytes_is_content_deterministic() {
        let a = vec!["alpha".to_string(), "beta".to_string()];
        let b = vec!["alpha".to_string(), "beta".to_string()];
        assert_eq!(a.estimate_bytes(), b.estimate_bytes());
        let mut c = Vec::with_capacity(1000);
        c.push("alpha".to_string());
        c.push("beta".to_string());
        // Capacity must not leak into the estimate.
        assert_eq!(a.estimate_bytes(), c.estimate_bytes());
    }
}
