//! Property-based tests for the text substrate.

use darklight_text::lemma::Lemmatizer;
use darklight_text::normalize::{
    collapse_spaces, diversity_ratio, drop_long_words, normalize_urls_and_emails, remove_edit_tags,
    remove_pgp_blocks, remove_quotes, strip_emojis, MAX_WORD_LEN,
};
use darklight_text::token::{TokenKind, Tokenizer};
use proptest::prelude::*;

proptest! {
    /// Tokenization never panics and token spans are in-bounds, non-empty,
    /// monotonically increasing, and match the source text.
    #[test]
    fn tokenizer_spans_consistent(s in "\\PC{0,200}") {
        let mut prev_end = 0usize;
        for t in Tokenizer::new(&s) {
            prop_assert!(!t.text.is_empty());
            prop_assert!(t.start >= prev_end);
            prop_assert!(t.end() <= s.len());
            prop_assert_eq!(&s[t.start..t.end()], t.text);
            prev_end = t.end();
        }
    }

    /// Word tokens never contain whitespace or digits.
    #[test]
    fn word_tokens_are_wordlike(s in "\\PC{0,200}") {
        for t in Tokenizer::new(&s) {
            if t.kind == TokenKind::Word {
                prop_assert!(!t.text.chars().any(|c| c.is_whitespace()));
                prop_assert!(!t.text.chars().any(|c| c.is_ascii_digit()));
            }
        }
    }

    /// The lemmatizer is idempotent for plain ASCII words: lemma(lemma(w)) ==
    /// lemma(w).
    #[test]
    fn lemmatizer_idempotent(w in "[a-z]{1,15}") {
        let l = Lemmatizer::new();
        let once = l.lemma_owned(&w);
        prop_assert_eq!(l.lemma_owned(&once), once);
    }

    /// The lemma of a word is never longer than the word plus one character
    /// (the restored silent `e`).
    #[test]
    fn lemma_length_bounded(w in "[a-z]{1,15}") {
        let l = Lemmatizer::new();
        let lemma = l.lemma_owned(&w);
        prop_assert!(lemma.len() <= w.len() + 1);
        prop_assert!(!lemma.is_empty());
    }

    /// Normalization functions never panic and never grow text except for
    /// the bounded e-mail tag substitution.
    #[test]
    fn normalizers_total(s in "\\PC{0,300}") {
        let _ = normalize_urls_and_emails(&s);
        let _ = strip_emojis(&s);
        let _ = remove_quotes(&s);
        let _ = remove_edit_tags(&s);
        let _ = remove_pgp_blocks(&s);
        let _ = drop_long_words(&s);
        let _ = collapse_spaces(&s);
        let r = diversity_ratio(&s);
        prop_assert!((0.0..=1.0).contains(&r));
    }

    /// `strip_emojis` removes every emoji.
    #[test]
    fn strip_emojis_complete(s in "\\PC{0,200}") {
        let cleaned = strip_emojis(&s);
        prop_assert!(!cleaned.chars().any(darklight_text::token::is_emoji));
    }

    /// After `drop_long_words`, every whitespace-word is within the limit.
    #[test]
    fn long_words_really_dropped(s in "\\PC{0,300}") {
        let cleaned = drop_long_words(&s);
        for w in cleaned.split_whitespace() {
            prop_assert!(w.chars().count() <= MAX_WORD_LEN);
        }
    }

    /// `remove_quotes` output never contains a line starting with `>`.
    #[test]
    fn quotes_fully_removed(s in "\\PC{0,300}") {
        let cleaned = remove_quotes(&s);
        for line in cleaned.lines() {
            prop_assert!(!line.trim_start().starts_with('>'));
        }
    }

    /// `remove_pgp_blocks` output never contains PGP armor markers.
    #[test]
    fn pgp_fully_removed(s in "\\PC{0,300}") {
        let cleaned = remove_pgp_blocks(&s);
        prop_assert!(!cleaned.to_uppercase().contains("-----BEGIN PGP"));
        prop_assert!(!cleaned.to_uppercase().contains("-----END PGP"));
    }
}

use darklight_text::obfuscate::{ObfuscateConfig, Obfuscator};

proptest! {
    /// The obfuscator is total and idempotent on arbitrary input.
    #[test]
    fn obfuscator_idempotent(s in "\\PC{0,200}") {
        let o = Obfuscator::new(ObfuscateConfig::default());
        let once = o.apply(&s);
        prop_assert_eq!(o.apply(&once), once.clone());
        // Default config lowercases everything alphabetic that is ASCII.
        prop_assert!(!once.chars().any(|c| c.is_ascii_uppercase()), "{:?}", once);
    }

    /// Aggressive obfuscation leaves no digits other than the `0`
    /// placeholder and no emoji.
    #[test]
    fn aggressive_normalizes_digits(s in "\\PC{0,200}") {
        let o = Obfuscator::new(ObfuscateConfig::aggressive());
        let out = o.apply(&s);
        for tok in out.split_whitespace() {
            if tok.chars().all(|c| c.is_ascii_digit()) {
                prop_assert_eq!(tok, "0");
            }
        }
        prop_assert!(!out.chars().any(darklight_text::token::is_emoji));
    }
}
