//! Character-n-gram language identification.
//!
//! The paper keeps only English messages, using the Python `langdetect`
//! library (a port of Google's language-detection). We stand in for it with
//! the classic Cavnar–Trenkle approach: build a ranked profile of the most
//! frequent character 1–3-grams for each language from embedded seed text,
//! and classify a message by the *out-of-place* distance between its profile
//! and each language profile. Eight languages are built in; the detector is
//! extensible with custom seed text.
//!
//! Accuracy is far below the 99% the Java library reaches on 55 languages,
//! but on the generator's vocabulary (drawn from the same language stock)
//! the decision "English / not English" — the only decision the pipeline
//! needs — is reliable for messages of ten or more words.

use std::collections::HashMap;
use std::fmt;

/// Languages with built-in profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Lang {
    English,
    Spanish,
    French,
    German,
    Italian,
    Portuguese,
    Dutch,
    Russian,
}

impl Lang {
    /// All built-in languages.
    pub const ALL: [Lang; 8] = [
        Lang::English,
        Lang::Spanish,
        Lang::French,
        Lang::German,
        Lang::Italian,
        Lang::Portuguese,
        Lang::Dutch,
        Lang::Russian,
    ];

    /// ISO 639-1 code.
    pub fn code(self) -> &'static str {
        match self {
            Lang::English => "en",
            Lang::Spanish => "es",
            Lang::French => "fr",
            Lang::German => "de",
            Lang::Italian => "it",
            Lang::Portuguese => "pt",
            Lang::Dutch => "nl",
            Lang::Russian => "ru",
        }
    }

    fn seed(self) -> &'static str {
        match self {
            Lang::English => seeds::ENGLISH,
            Lang::Spanish => seeds::SPANISH,
            Lang::French => seeds::FRENCH,
            Lang::German => seeds::GERMAN,
            Lang::Italian => seeds::ITALIAN,
            Lang::Portuguese => seeds::PORTUGUESE,
            Lang::Dutch => seeds::DUTCH,
            Lang::Russian => seeds::RUSSIAN,
        }
    }
}

impl fmt::Display for Lang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Maximum number of ranked n-grams kept per profile (Cavnar–Trenkle used
/// 300; we keep more because profiles are cheap and accuracy improves).
const PROFILE_SIZE: usize = 400;

/// Out-of-place penalty for n-grams absent from the language profile.
const MISSING_PENALTY: usize = PROFILE_SIZE;

/// A ranked n-gram profile: n-gram → rank (0 = most frequent).
#[derive(Debug, Clone)]
struct Profile {
    ranks: HashMap<String, usize>,
}

impl Profile {
    fn from_text(text: &str) -> Profile {
        let counts = ngram_counts(text);
        let mut items: Vec<(String, u32)> = counts.into_iter().collect();
        // Sort by count desc, then lexicographically for determinism.
        items.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        items.truncate(PROFILE_SIZE);
        let ranks = items
            .into_iter()
            .enumerate()
            .map(|(rank, (gram, _))| (gram, rank))
            .collect();
        Profile { ranks }
    }

    /// Cavnar–Trenkle out-of-place distance, normalized per n-gram.
    fn distance(&self, other: &Profile) -> f64 {
        if other.ranks.is_empty() {
            return MISSING_PENALTY as f64;
        }
        let mut total = 0usize;
        for (gram, &rank) in &other.ranks {
            total += match self.ranks.get(gram) {
                Some(&r) => r.abs_diff(rank),
                None => MISSING_PENALTY,
            };
        }
        total as f64 / other.ranks.len() as f64
    }
}

/// Extracts 1–3-gram counts over the letters of `text`, with `_` marking
/// word boundaries (so `_th` and `he_` carry positional signal).
fn ngram_counts(text: &str) -> HashMap<String, u32> {
    let mut counts: HashMap<String, u32> = HashMap::new();
    for word in text.split(|c: char| !c.is_alphabetic()) {
        if word.is_empty() {
            continue;
        }
        let padded: Vec<char> = std::iter::once('_')
            .chain(word.chars().flat_map(|c| c.to_lowercase()))
            .chain(std::iter::once('_'))
            .collect();
        for n in 1..=3usize {
            if padded.len() < n {
                continue;
            }
            for window in padded.windows(n) {
                // Skip pure-boundary grams.
                if window.iter().all(|&c| c == '_') {
                    continue;
                }
                let gram: String = window.iter().collect();
                *counts.entry(gram).or_insert(0) += 1;
            }
        }
    }
    counts
}

/// The result of a detection: the winning language and a confidence score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// The most likely language.
    pub lang: Lang,
    /// Relative margin over the runner-up, in `[0, 1]`; near 0 means the
    /// top two languages were almost tied.
    pub confidence: f64,
}

/// A Cavnar–Trenkle language detector with built-in profiles.
///
/// ```
/// use darklight_text::langdetect::{Lang, LanguageDetector};
/// let det = LanguageDetector::new();
/// let d = det.detect("the quick brown fox jumps over the lazy dog and runs away")
///     .expect("enough text");
/// assert_eq!(d.lang, Lang::English);
/// assert!(det.is_english("I think this is definitely written in the english language"));
/// ```
#[derive(Debug, Clone)]
pub struct LanguageDetector {
    profiles: Vec<(Lang, Profile)>,
}

impl LanguageDetector {
    /// Builds the detector from the embedded seed corpora.
    pub fn new() -> LanguageDetector {
        let profiles = Lang::ALL
            .iter()
            .map(|&lang| (lang, Profile::from_text(lang.seed())))
            .collect();
        LanguageDetector { profiles }
    }

    /// Detects the language of `text`. Returns `None` when the text has no
    /// alphabetic content to classify.
    pub fn detect(&self, text: &str) -> Option<Detection> {
        let profile = Profile::from_text(text);
        if profile.ranks.is_empty() {
            return None;
        }
        let mut scored: Vec<(Lang, f64)> = self
            .profiles
            .iter()
            .map(|(lang, lp)| (*lang, lp.distance(&profile)))
            .collect();
        scored.sort_by(|a, b| darklight_order::cmp_f64_asc(a.1, b.1));
        let (best, best_d) = scored[0];
        let (_, second_d) = scored[1];
        let confidence = if second_d > 0.0 {
            ((second_d - best_d) / second_d).clamp(0.0, 1.0)
        } else {
            0.0
        };
        Some(Detection {
            lang: best,
            confidence,
        })
    }

    /// `true` when `text` is detected as English. Empty/wordless text is
    /// *not* English.
    pub fn is_english(&self, text: &str) -> bool {
        matches!(
            self.detect(text),
            Some(Detection {
                lang: Lang::English,
                ..
            })
        )
    }
}

impl Default for LanguageDetector {
    fn default() -> LanguageDetector {
        LanguageDetector::new()
    }
}

/// Embedded seed corpora: a few hundred words of plain prose per language,
/// written for this crate (function-word-dense, which is what the n-gram
/// profiles key on).
mod seeds {
    pub const ENGLISH: &str = "the people who live in the city said that they would not be able to come to the meeting because the weather was very bad and the roads were closed for most of the day. it is not always easy to know what the right thing to do is, but when you have to make a choice you should think about what will happen after and how the others will feel about it. there are many things that we can learn from the past, and one of them is that nothing stays the same for a long time. the children were playing in the garden while their parents were talking about the news and drinking coffee in the kitchen. i think that this is one of the best books i have ever read, and i would like to tell everyone about it. we should try to understand each other better and work together to find a good solution for this problem. when the sun goes down the streets become quiet and the lights of the houses start to shine through the windows. she told me that she had never seen anything like that before in her whole life. the question is not whether we can do it, but whether we should do it at all. most of the time the answer depends on who you ask and what they want to hear from you.";

    pub const SPANISH: &str = "la gente que vive en la ciudad dijo que no podría venir a la reunión porque el tiempo estaba muy malo y las carreteras estuvieron cerradas durante la mayor parte del día. no siempre es fácil saber qué es lo correcto, pero cuando tienes que tomar una decisión debes pensar en lo que pasará después y en cómo se sentirán los demás. hay muchas cosas que podemos aprender del pasado, y una de ellas es que nada permanece igual durante mucho tiempo. los niños jugaban en el jardín mientras sus padres hablaban de las noticias y tomaban café en la cocina. creo que este es uno de los mejores libros que he leído y me gustaría contárselo a todo el mundo. deberíamos tratar de entendernos mejor y trabajar juntos para encontrar una buena solución a este problema. cuando el sol se pone las calles se quedan tranquilas y las luces de las casas empiezan a brillar a través de las ventanas. ella me dijo que nunca había visto nada parecido en toda su vida. la pregunta no es si podemos hacerlo, sino si debemos hacerlo. la mayoría de las veces la respuesta depende de a quién preguntes y de lo que quieran escuchar de ti.";

    pub const FRENCH: &str = "les gens qui habitent dans la ville ont dit qu'ils ne pourraient pas venir à la réunion parce que le temps était très mauvais et que les routes étaient fermées pendant la plus grande partie de la journée. il n'est pas toujours facile de savoir quelle est la bonne chose à faire, mais quand on doit faire un choix il faut penser à ce qui va se passer ensuite et à ce que les autres vont ressentir. il y a beaucoup de choses que nous pouvons apprendre du passé, et l'une d'elles est que rien ne reste pareil très longtemps. les enfants jouaient dans le jardin pendant que leurs parents parlaient des nouvelles et buvaient du café dans la cuisine. je pense que c'est l'un des meilleurs livres que j'ai jamais lus et je voudrais en parler à tout le monde. nous devrions essayer de mieux nous comprendre et de travailler ensemble pour trouver une bonne solution à ce problème. quand le soleil se couche les rues deviennent calmes et les lumières des maisons commencent à briller à travers les fenêtres. elle m'a dit qu'elle n'avait jamais rien vu de semblable de toute sa vie. la question n'est pas de savoir si nous pouvons le faire, mais si nous devons le faire.";

    pub const GERMAN: &str = "die leute, die in der stadt wohnen, sagten, dass sie nicht zu dem treffen kommen könnten, weil das wetter sehr schlecht war und die straßen den größten teil des tages gesperrt waren. es ist nicht immer leicht zu wissen, was das richtige ist, aber wenn man eine entscheidung treffen muss, sollte man darüber nachdenken, was danach passieren wird und wie sich die anderen dabei fühlen werden. es gibt viele dinge, die wir aus der vergangenheit lernen können, und eines davon ist, dass nichts lange gleich bleibt. die kinder spielten im garten, während ihre eltern über die nachrichten sprachen und in der küche kaffee tranken. ich glaube, dass dies eines der besten bücher ist, die ich je gelesen habe, und ich möchte allen davon erzählen. wir sollten versuchen, einander besser zu verstehen und zusammenzuarbeiten, um eine gute lösung für dieses problem zu finden. wenn die sonne untergeht, werden die straßen ruhig und die lichter der häuser beginnen durch die fenster zu scheinen. sie sagte mir, dass sie so etwas noch nie in ihrem ganzen leben gesehen habe. die frage ist nicht, ob wir es tun können, sondern ob wir es überhaupt tun sollten.";

    pub const ITALIAN: &str = "le persone che vivono in città hanno detto che non sarebbero potute venire alla riunione perché il tempo era molto brutto e le strade sono rimaste chiuse per la maggior parte della giornata. non è sempre facile sapere quale sia la cosa giusta da fare, ma quando devi fare una scelta dovresti pensare a cosa succederà dopo e a come si sentiranno gli altri. ci sono molte cose che possiamo imparare dal passato, e una di queste è che niente rimane uguale a lungo. i bambini giocavano in giardino mentre i loro genitori parlavano delle notizie e bevevano il caffè in cucina. penso che questo sia uno dei migliori libri che abbia mai letto e vorrei parlarne a tutti. dovremmo cercare di capirci meglio e lavorare insieme per trovare una buona soluzione a questo problema. quando il sole tramonta le strade diventano tranquille e le luci delle case cominciano a brillare attraverso le finestre. lei mi ha detto che non aveva mai visto niente di simile in tutta la sua vita. la domanda non è se possiamo farlo, ma se dobbiamo farlo davvero.";

    pub const PORTUGUESE: &str = "as pessoas que moram na cidade disseram que não poderiam vir à reunião porque o tempo estava muito ruim e as estradas ficaram fechadas durante a maior parte do dia. nem sempre é fácil saber qual é a coisa certa a fazer, mas quando você tem que fazer uma escolha deve pensar no que vai acontecer depois e em como os outros vão se sentir. há muitas coisas que podemos aprender com o passado, e uma delas é que nada fica igual por muito tempo. as crianças brincavam no jardim enquanto os pais conversavam sobre as notícias e tomavam café na cozinha. acho que este é um dos melhores livros que já li e gostaria de contar a todos sobre ele. deveríamos tentar nos entender melhor e trabalhar juntos para encontrar uma boa solução para este problema. quando o sol se põe as ruas ficam tranquilas e as luzes das casas começam a brilhar através das janelas. ela me disse que nunca tinha visto nada parecido em toda a sua vida. a questão não é se podemos fazer, mas se devemos fazer isso afinal.";

    pub const DUTCH: &str = "de mensen die in de stad wonen zeiden dat ze niet naar de vergadering konden komen omdat het weer erg slecht was en de wegen het grootste deel van de dag gesloten waren. het is niet altijd gemakkelijk om te weten wat het juiste is om te doen, maar als je een keuze moet maken moet je nadenken over wat er daarna zal gebeuren en hoe de anderen zich daarbij zullen voelen. er zijn veel dingen die we van het verleden kunnen leren, en een daarvan is dat niets lang hetzelfde blijft. de kinderen speelden in de tuin terwijl hun ouders over het nieuws praatten en koffie dronken in de keuken. ik denk dat dit een van de beste boeken is die ik ooit heb gelezen en ik zou het iedereen willen vertellen. we zouden moeten proberen elkaar beter te begrijpen en samen te werken om een goede oplossing voor dit probleem te vinden. als de zon ondergaat worden de straten rustig en beginnen de lichten van de huizen door de ramen te schijnen. ze vertelde me dat ze nog nooit zoiets had gezien in haar hele leven. de vraag is niet of we het kunnen doen, maar of we het wel zouden moeten doen.";

    pub const RUSSIAN: &str = "люди, которые живут в городе, сказали, что не смогут прийти на встречу, потому что погода была очень плохая и дороги были закрыты большую часть дня. не всегда легко знать, что правильно делать, но когда нужно сделать выбор, следует подумать о том, что будет потом и как это почувствуют другие. есть много вещей, которым мы можем научиться у прошлого, и одна из них состоит в том, что ничто не остаётся прежним надолго. дети играли в саду, пока их родители говорили о новостях и пили кофе на кухне. я думаю, что это одна из лучших книг, которые я когда-либо читал, и я хотел бы рассказать о ней всем. мы должны постараться лучше понимать друг друга и работать вместе, чтобы найти хорошее решение этой проблемы. когда солнце садится, улицы становятся тихими, и огни домов начинают светить через окна. она сказала мне, что никогда в жизни не видела ничего подобного. вопрос не в том, можем ли мы это сделать, а в том, должны ли мы это делать вообще.";
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det() -> LanguageDetector {
        LanguageDetector::new()
    }

    #[test]
    fn detects_each_seed_language() {
        let d = det();
        for lang in Lang::ALL {
            let detection = d.detect(lang.seed()).unwrap();
            assert_eq!(detection.lang, lang, "seed for {lang} misdetected");
        }
    }

    #[test]
    fn detects_fresh_english() {
        let d = det();
        let samples = [
            "I really enjoyed the package, shipping was fast and the quality is great, will order again from this vendor soon",
            "does anyone know whether the market is down again today or is it just my connection acting up once more",
            "we went to the mountains last weekend and the views were absolutely beautiful even though it rained",
        ];
        for s in samples {
            assert!(d.is_english(s), "misdetected: {s}");
        }
    }

    #[test]
    fn rejects_fresh_non_english() {
        let d = det();
        let samples = [
            "me gustaría saber si alguien puede ayudarme con este problema porque no encuentro ninguna solución",
            "ich habe gestern ein neues buch gekauft und möchte es am wochenende in ruhe lesen",
            "je ne sais pas encore si je vais venir demain parce que j'ai beaucoup de travail cette semaine",
            "я вчера купил новую книгу и хочу спокойно почитать её на выходных дома",
        ];
        for s in samples {
            assert!(!d.is_english(s), "misdetected as english: {s}");
        }
    }

    #[test]
    fn empty_and_symbol_text_undetected() {
        let d = det();
        assert!(d.detect("").is_none());
        assert!(d.detect("12345 !!! ???").is_none());
        assert!(!d.is_english("###"));
    }

    #[test]
    fn confidence_reported() {
        let d = det();
        let long_en = Lang::English.seed();
        let det_long = d.detect(long_en).unwrap();
        assert!(
            det_long.confidence > 0.1,
            "confidence {}",
            det_long.confidence
        );
    }

    #[test]
    fn cyrillic_never_english() {
        let d = det();
        assert_eq!(
            d.detect("привет как дела сегодня").unwrap().lang,
            Lang::Russian
        );
    }

    #[test]
    fn profile_deterministic() {
        let a = Profile::from_text("some repeated text some repeated text");
        let b = Profile::from_text("some repeated text some repeated text");
        assert_eq!(a.ranks, b.ranks);
    }

    #[test]
    fn short_english_with_common_words() {
        let d = det();
        // Ten-word messages are the paper's minimum; they should mostly work.
        assert!(d.is_english("this is what happens when you leave the door open"));
    }
}
