//! A rule-based English lemmatizer.
//!
//! Reduces inflected forms to their lemma (`am`, `are`, `is` → `be`;
//! `wolves` → `wolf`; `running` → `run`), as the paper does before feature
//! extraction so that "words with different inflections" count "as a single
//! item" (§IV-A). The implementation is a lookup in irregular-form tables
//! followed by Porter-style suffix rules (plural, past, progressive) with
//! consonant-doubling undo and silent-`e` restoration.
//!
//! This is a *lemmatizer of stemmer strength*: like all dictionary-free
//! systems it occasionally under- or over-strips (e.g. `danced` → `danc`),
//! but it is deterministic and — crucially for the pipeline — maps all
//! inflections produced by the corpus generator's morphology back to the
//! same base form.

use std::borrow::Cow;
use std::collections::HashMap;

/// Irregular verb forms: inflected → base.
const IRREGULAR_VERBS: &[(&str, &str)] = &[
    ("am", "be"),
    ("is", "be"),
    ("are", "be"),
    ("was", "be"),
    ("were", "be"),
    ("been", "be"),
    ("being", "be"),
    ("has", "have"),
    ("had", "have"),
    ("having", "have"),
    ("does", "do"),
    ("did", "do"),
    ("done", "do"),
    ("doing", "do"),
    ("goes", "go"),
    ("went", "go"),
    ("gone", "go"),
    ("going", "go"),
    ("said", "say"),
    ("says", "say"),
    ("got", "get"),
    ("gotten", "get"),
    ("made", "make"),
    ("knew", "know"),
    ("known", "know"),
    ("thought", "think"),
    ("took", "take"),
    ("taken", "take"),
    ("came", "come"),
    ("saw", "see"),
    ("seen", "see"),
    ("ran", "run"),
    ("gave", "give"),
    ("given", "give"),
    ("found", "find"),
    ("told", "tell"),
    ("felt", "feel"),
    ("left", "leave"),
    ("kept", "keep"),
    ("began", "begin"),
    ("begun", "begin"),
    ("brought", "bring"),
    ("bought", "buy"),
    ("wrote", "write"),
    ("written", "write"),
    ("stood", "stand"),
    ("heard", "hear"),
    ("meant", "mean"),
    ("met", "meet"),
    ("paid", "pay"),
    ("sat", "sit"),
    ("spoke", "speak"),
    ("spoken", "speak"),
    ("lost", "lose"),
    ("sent", "send"),
    ("built", "build"),
    ("understood", "understand"),
    ("drew", "draw"),
    ("drawn", "draw"),
    ("broke", "break"),
    ("broken", "break"),
    ("spent", "spend"),
    ("grew", "grow"),
    ("grown", "grow"),
    ("fell", "fall"),
    ("fallen", "fall"),
    ("sold", "sell"),
    ("sought", "seek"),
    ("threw", "throw"),
    ("thrown", "throw"),
    ("caught", "catch"),
    ("dealt", "deal"),
    ("won", "win"),
    ("forgot", "forget"),
    ("forgotten", "forget"),
    ("slept", "sleep"),
    ("chose", "choose"),
    ("chosen", "choose"),
    ("drank", "drink"),
    ("drunk", "drink"),
    ("drove", "drive"),
    ("driven", "drive"),
    ("ate", "eat"),
    ("eaten", "eat"),
    ("flew", "fly"),
    ("flown", "fly"),
    ("led", "lead"),
    ("rode", "ride"),
    ("ridden", "ride"),
    ("rose", "rise"),
    ("risen", "rise"),
    ("sang", "sing"),
    ("sung", "sing"),
    ("swam", "swim"),
    ("swum", "swim"),
    ("wore", "wear"),
    ("worn", "wear"),
    ("woke", "wake"),
    ("woken", "wake"),
    ("shook", "shake"),
    ("shaken", "shake"),
    ("held", "hold"),
    ("became", "become"),
    ("showed", "show"),
    ("shown", "show"),
    ("bit", "bite"),
    ("bitten", "bite"),
    ("hid", "hide"),
    ("hidden", "hide"),
    ("stole", "steal"),
    ("stolen", "steal"),
    ("struck", "strike"),
    ("swore", "swear"),
    ("sworn", "swear"),
    ("tore", "tear"),
    ("torn", "tear"),
    ("froze", "freeze"),
    ("frozen", "freeze"),
];

/// Irregular noun plurals: plural → singular.
const IRREGULAR_NOUNS: &[(&str, &str)] = &[
    ("men", "man"),
    ("women", "woman"),
    ("children", "child"),
    ("teeth", "tooth"),
    ("feet", "foot"),
    ("mice", "mouse"),
    ("geese", "goose"),
    ("lives", "life"),
    ("knives", "knife"),
    ("wives", "wife"),
    ("wolves", "wolf"),
    ("leaves", "leaf"),
    ("shelves", "shelf"),
    ("thieves", "thief"),
    ("loaves", "loaf"),
    ("halves", "half"),
    ("selves", "self"),
    ("calves", "calf"),
    ("scarves", "scarf"),
    ("elves", "elf"),
    ("oxen", "ox"),
    ("dice", "die"),
];

/// Forms that look inflected but are not (protected from suffix rules).
const PROTECTED: &[&str] = &[
    "this",
    "his",
    "hers",
    "its",
    "thus",
    "yes",
    "less",
    "unless",
    "during",
    "nothing",
    "something",
    "anything",
    "everything",
    "morning",
    "evening",
    "spring",
    "string",
    "thing",
    "king",
    "ring",
    "sing",
    "bring",
    "wing",
    "always",
    "perhaps",
    "besides",
    "whereas",
    "news",
    "series",
    "species",
    "analysis",
    "basis",
    "crisis",
    "bus",
    "gas",
    "plus",
    "status",
    "virus",
    "bonus",
    "focus",
    "census",
    "versus",
    "christmas",
    "bed",
    "red",
    "need",
    "feed",
    "seed",
    "speed",
    "indeed",
    "used",
    "based",
];

fn is_vowel(b: u8) -> bool {
    matches!(b, b'a' | b'e' | b'i' | b'o' | b'u')
}

/// Porter-style CVC test on the stem end: consonant-vowel-consonant where
/// the final consonant is not `w`, `x`, or `y`. Words ending like this
/// usually dropped a silent `e` before `-ed`/`-ing` (`mak(e)`, `lov(e)`).
fn ends_cvc(stem: &[u8]) -> bool {
    let n = stem.len();
    if n < 3 {
        return false;
    }
    let (c1, v, c2) = (stem[n - 3], stem[n - 2], stem[n - 1]);
    !is_vowel(c1) && is_vowel(v) && !is_vowel(c2) && !matches!(c2, b'w' | b'x' | b'y')
}

/// Returns `true` when the stem ends in a doubled consonant we undo
/// (`stopp` → `stop`). `l`, `s`, `z` doublings are kept (`fell`, `miss`).
fn ends_undoable_double(stem: &[u8]) -> bool {
    let n = stem.len();
    n >= 2
        && stem[n - 1] == stem[n - 2]
        && !is_vowel(stem[n - 1])
        && !matches!(stem[n - 1], b'l' | b's' | b'z')
}

/// Fix up a stem after removing `-ed`/`-ing`: undo consonant doubling or
/// restore a silent `e`.
fn fix_stem(mut stem: String) -> String {
    if ends_undoable_double(stem.as_bytes()) {
        stem.pop();
    } else if ends_cvc(stem.as_bytes()) {
        stem.push('e');
    }
    stem
}

/// A rule-based English lemmatizer. Construction builds the irregular-form
/// tables once; [`lemma`](Lemmatizer::lemma) is then allocation-free for
/// words that are already base forms.
#[derive(Debug, Clone)]
pub struct Lemmatizer {
    irregular: HashMap<&'static str, &'static str>,
    protected: HashMap<&'static str, ()>,
}

impl Lemmatizer {
    /// Builds the lemmatizer tables.
    pub fn new() -> Lemmatizer {
        let mut irregular = HashMap::with_capacity(IRREGULAR_VERBS.len() + IRREGULAR_NOUNS.len());
        for &(from, to) in IRREGULAR_VERBS.iter().chain(IRREGULAR_NOUNS) {
            irregular.insert(from, to);
        }
        let protected = PROTECTED.iter().map(|&w| (w, ())).collect();
        Lemmatizer {
            irregular,
            protected,
        }
    }

    /// Lemmatizes a single lowercase word. Uppercase input is lowercased
    /// first (allocating). Words that are already lemmas are returned
    /// borrowed.
    ///
    /// ```
    /// use darklight_text::lemma::Lemmatizer;
    /// let l = Lemmatizer::new();
    /// assert_eq!(l.lemma("cities"), "city");
    /// assert_eq!(l.lemma("stopped"), "stop");
    /// assert_eq!(l.lemma("making"), "make");
    /// assert_eq!(l.lemma("table"), "table"); // unchanged, no allocation
    /// ```
    pub fn lemma<'a>(&self, word: &'a str) -> Cow<'a, str> {
        if word.chars().any(|c| c.is_uppercase()) {
            return Cow::Owned(self.lemma_owned(&word.to_lowercase()));
        }
        if let Some(&base) = self.irregular.get(word) {
            return Cow::Borrowed(base);
        }
        if self.protected.contains_key(word) || !word.is_ascii() || word.len() < 4 {
            return Cow::Borrowed(word);
        }
        match self.strip_suffix(word) {
            Some(owned) => Cow::Owned(owned),
            None => Cow::Borrowed(word),
        }
    }

    /// Like [`lemma`](Lemmatizer::lemma) but always returns an owned string.
    pub fn lemma_owned(&self, word: &str) -> String {
        self.lemma(word).into_owned()
    }

    /// Applies the suffix rules; `None` means the word is unchanged.
    fn strip_suffix(&self, w: &str) -> Option<String> {
        let n = w.len();
        // Plural rules.
        if let Some(stem) = w.strip_suffix("ies") {
            if n > 4 {
                return Some(format!("{stem}y"));
            }
        }
        if w.ends_with("sses") {
            return Some(w[..n - 2].to_string());
        }
        for es in ["xes", "ches", "shes", "zes", "oes"] {
            if w.ends_with(es) && n > es.len() + 1 {
                return Some(w[..n - 2].to_string());
            }
        }
        if w.ends_with('s')
            && !w.ends_with("ss")
            && !w.ends_with("us")
            && !w.ends_with("is")
            && n > 3
        {
            return Some(w[..n - 1].to_string());
        }
        // Past tense.
        if let Some(stem) = w.strip_suffix("ied") {
            if n > 4 {
                return Some(format!("{stem}y"));
            }
        }
        if let Some(stem) = w.strip_suffix("ed") {
            if stem.len() >= 3 && stem.bytes().any(is_vowel) {
                return Some(fix_stem(stem.to_string()));
            }
        }
        // Progressive.
        if let Some(stem) = w.strip_suffix("ing") {
            if stem.len() >= 3 && stem.bytes().any(is_vowel) {
                return Some(fix_stem(stem.to_string()));
            }
        }
        None
    }
}

impl Default for Lemmatizer {
    fn default() -> Lemmatizer {
        Lemmatizer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l() -> Lemmatizer {
        Lemmatizer::new()
    }

    #[test]
    fn irregular_verbs() {
        let lem = l();
        for (inflected, base) in [
            ("am", "be"),
            ("were", "be"),
            ("went", "go"),
            ("thought", "think"),
            ("bought", "buy"),
            ("written", "write"),
            ("frozen", "freeze"),
        ] {
            assert_eq!(lem.lemma(inflected), base, "{inflected}");
        }
    }

    #[test]
    fn irregular_nouns() {
        let lem = l();
        assert_eq!(lem.lemma("children"), "child");
        assert_eq!(lem.lemma("wolves"), "wolf");
        assert_eq!(lem.lemma("mice"), "mouse");
        assert_eq!(lem.lemma("knives"), "knife");
    }

    #[test]
    fn regular_plurals() {
        let lem = l();
        assert_eq!(lem.lemma("cats"), "cat");
        assert_eq!(lem.lemma("cities"), "city");
        assert_eq!(lem.lemma("boxes"), "box");
        assert_eq!(lem.lemma("watches"), "watch");
        assert_eq!(lem.lemma("classes"), "class");
        assert_eq!(lem.lemma("heroes"), "hero");
        assert_eq!(lem.lemma("dishes"), "dish");
    }

    #[test]
    fn plural_guards() {
        let lem = l();
        // -ss, -us, -is endings are not plurals.
        assert_eq!(lem.lemma("glass"), "glass");
        assert_eq!(lem.lemma("status"), "status");
        assert_eq!(lem.lemma("analysis"), "analysis");
        // Three-letter words are left alone.
        assert_eq!(lem.lemma("gas"), "gas");
        assert_eq!(lem.lemma("its"), "its");
    }

    #[test]
    fn past_tense_rules() {
        let lem = l();
        assert_eq!(lem.lemma("jumped"), "jump");
        assert_eq!(lem.lemma("stopped"), "stop");
        assert_eq!(lem.lemma("loved"), "love");
        assert_eq!(lem.lemma("tried"), "try");
        assert_eq!(lem.lemma("hoped"), "hope");
    }

    #[test]
    fn progressive_rules() {
        let lem = l();
        assert_eq!(lem.lemma("running"), "run");
        assert_eq!(lem.lemma("making"), "make");
        assert_eq!(lem.lemma("jumping"), "jump");
        assert_eq!(lem.lemma("selling"), "sell"); // 'll' doubling kept
        assert_eq!(lem.lemma("missing"), "miss"); // 'ss' kept
    }

    #[test]
    fn protected_words_untouched() {
        let lem = l();
        for w in [
            "this", "during", "thing", "morning", "news", "species", "always", "need",
        ] {
            assert_eq!(lem.lemma(w), w, "{w}");
        }
    }

    #[test]
    fn uppercase_input_lowercased() {
        let lem = l();
        assert_eq!(lem.lemma("Wolves"), "wolf");
        assert_eq!(lem.lemma("RUNNING"), "run");
    }

    #[test]
    fn non_ascii_left_alone() {
        let lem = l();
        assert_eq!(lem.lemma("café"), "café");
        assert_eq!(lem.lemma("straße"), "straße");
    }

    #[test]
    fn base_forms_are_borrowed() {
        let lem = l();
        assert!(matches!(lem.lemma("table"), Cow::Borrowed(_)));
        assert!(matches!(lem.lemma("cats"), Cow::Owned(_)));
    }

    #[test]
    fn words_without_vowels_untouched() {
        let lem = l();
        // ASCII-art junk: no vowel before the suffix means no stripping.
        assert_eq!(lem.lemma("grrred"), "grrred");
        assert_eq!(lem.lemma("xyzzed"), "xyzzed");
    }

    #[test]
    fn idempotent_on_own_output() {
        let lem = l();
        for w in [
            "cats", "running", "cities", "stopped", "wolves", "went", "boxes",
        ] {
            let once = lem.lemma_owned(w);
            let twice = lem.lemma_owned(&once);
            assert_eq!(once, twice, "{w}: {once} vs {twice}");
        }
    }
}
