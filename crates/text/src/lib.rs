//! Text-processing substrate for the `darklight` alias-linking pipeline.
//!
//! The paper's stylometric features are computed over *polished, tokenized,
//! lemmatized* forum text. This crate provides that entire layer from
//! scratch:
//!
//! * [`token`] — a forum-aware tokenizer that classifies words, numbers,
//!   punctuation, symbols, emoji, URLs, and e-mail addresses while keeping
//!   byte offsets into the source;
//! * [`lemma`] — a rule-based English lemmatizer (irregular-form tables plus
//!   suffix rules with consonant-doubling and silent-`e` restoration),
//!   standing in for the paper's NLTK-style lemmatization;
//! * [`normalize`] — the text-level cleaning primitives behind the paper's
//!   twelve polishing steps (§III-C): URL→hostname reduction, e-mail
//!   masking, emoji stripping, quote and edit-tag removal, PGP-block
//!   removal, over-long-word removal, and the vocabulary-diversity spam
//!   ratio;
//! * [`langdetect`] — a Cavnar–Trenkle character-n-gram language detector
//!   with embedded profiles for eight languages, standing in for the Python
//!   `langdetect` library used by the authors.
//!
//! # Example
//!
//! ```
//! use darklight_text::token::{Tokenizer, TokenKind};
//! use darklight_text::lemma::Lemmatizer;
//!
//! let tokens: Vec<_> = Tokenizer::new("The wolves were running!").collect();
//! assert_eq!(tokens.iter().filter(|t| t.kind == TokenKind::Word).count(), 4);
//!
//! let lemmatizer = Lemmatizer::new();
//! assert_eq!(lemmatizer.lemma("wolves"), "wolf");
//! assert_eq!(lemmatizer.lemma("were"), "be");
//! assert_eq!(lemmatizer.lemma("running"), "run");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod langdetect;
pub mod lemma;
pub mod normalize;
pub mod obfuscate;
pub mod token;

pub use langdetect::{Lang, LanguageDetector};
pub use lemma::Lemmatizer;
pub use obfuscate::{ObfuscateConfig, Obfuscator};
pub use token::{Token, TokenKind, Tokenizer};
