//! Adversarial stylometry: writing-style obfuscation.
//!
//! The paper's defence discussion (§VI) notes that evading the attack
//! requires "adversarial stylometry tools … constant effort on behalf of
//! the user", citing Anonymouth, and its conclusion calls for "more work on
//! software that is able to anonymize writing patterns". This module is
//! that tool for the feature families the pipeline measures: it
//! canonicalizes exactly the idiosyncrasies the features key on —
//! spelling variants, contractions, slang, casing, punctuation habits,
//! emoji, digits — pushing every author toward one neutral register.
//!
//! Obfuscation is *lossy on style, conservative on content*: words are
//! only ever replaced by standard-register equivalents of the same
//! meaning, never dropped or paraphrased.

use crate::token::{is_emoji, Token, TokenKind, Tokenizer};
use std::collections::HashMap;

/// Which style channels to scrub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObfuscateConfig {
    /// Lowercase everything (kills casing habits).
    pub normalize_case: bool,
    /// Expand contractions and normalize spelling variants
    /// (`don't`/`dont` → `do not`, `u` → `you`, `tho` → `though`).
    pub normalize_variants: bool,
    /// Replace slang tokens with standard equivalents (`lol` → removed,
    /// `gonna` → `going to`).
    pub normalize_slang: bool,
    /// Flatten punctuation: every sentence ends with a single `.`, runs of
    /// `!`/`?`/`.` collapse, commas survive (kills terminal-punct habits).
    pub normalize_punctuation: bool,
    /// Replace digit runs with `0` (kills digit-frequency fingerprints).
    pub normalize_numbers: bool,
    /// Strip emoji.
    pub strip_emoji: bool,
}

impl Default for ObfuscateConfig {
    fn default() -> ObfuscateConfig {
        ObfuscateConfig {
            normalize_case: true,
            normalize_variants: true,
            normalize_slang: true,
            normalize_punctuation: true,
            normalize_numbers: false,
            strip_emoji: true,
        }
    }
}

impl ObfuscateConfig {
    /// Everything on — maximum scrubbing.
    pub fn aggressive() -> ObfuscateConfig {
        ObfuscateConfig {
            normalize_numbers: true,
            ..ObfuscateConfig::default()
        }
    }
}

/// Variant/contraction/slang → canonical replacement (possibly multi-word,
/// possibly empty for pure fillers).
const CANONICAL: &[(&str, &str)] = &[
    // Contractions.
    ("don't", "do not"),
    ("dont", "do not"),
    ("can't", "cannot"),
    ("cant", "cannot"),
    ("won't", "will not"),
    ("wont", "will not"),
    ("i'm", "i am"),
    ("im", "i am"),
    ("it's", "it is"),
    ("that's", "that is"),
    ("thats", "that is"),
    ("what's", "what is"),
    ("whats", "what is"),
    ("isn't", "is not"),
    ("isnt", "is not"),
    ("didn't", "did not"),
    ("didnt", "did not"),
    ("doesn't", "does not"),
    ("doesnt", "does not"),
    ("i've", "i have"),
    ("ive", "i have"),
    ("i'll", "i will"),
    ("you're", "you are"),
    ("youre", "you are"),
    ("they're", "they are"),
    ("we're", "we are"),
    ("ain't", "is not"),
    // Shorthand spellings.
    ("u", "you"),
    ("ur", "your"),
    ("ppl", "people"),
    ("abt", "about"),
    ("tho", "though"),
    ("cuz", "because"),
    ("bc", "because"),
    ("prob", "probably"),
    ("probs", "probably"),
    ("rly", "really"),
    ("def", "definitely"),
    ("smth", "something"),
    ("w/o", "without"),
    ("thx", "thanks"),
    ("ty", "thanks"),
    ("pls", "please"),
    ("plz", "please"),
    ("ok", "okay"),
    ("k", "okay"),
    ("cya", "see you"),
    // Casual verb forms.
    ("gonna", "going to"),
    ("wanna", "want to"),
    ("gotta", "got to"),
    ("kinda", "kind of"),
    ("sorta", "sort of"),
    ("dunno", "do not know"),
    ("y'all", "you all"),
    ("yall", "you all"),
    // Pure filler slang: removed entirely.
    ("lol", ""),
    ("lmao", ""),
    ("smh", ""),
    ("ngl", ""),
    ("fr", ""),
    ("tbh", ""),
    ("imo", ""),
    ("imho", ""),
    ("idk", ""),
    ("btw", ""),
    ("afaik", ""),
    ("iirc", ""),
    ("fwiw", ""),
    ("bruh", ""),
    ("fam", ""),
    ("deadass", ""),
    ("lowkey", ""),
    ("highkey", ""),
    ("welp", ""),
    ("oof", ""),
    ("yikes", ""),
    ("bet", ""),
    ("based", ""),
    ("sus", ""),
    ("meh", ""),
    ("nah", "no"),
    ("yeah", "yes"),
    ("yep", "yes"),
    ("hella", "very"),
    ("super", "very"),
];

/// A writing-style scrubber. Construction builds the replacement table;
/// [`apply`](Obfuscator::apply) is then reusable across messages.
#[derive(Debug, Clone)]
pub struct Obfuscator {
    config: ObfuscateConfig,
    table: HashMap<&'static str, &'static str>,
}

impl Obfuscator {
    /// Creates an obfuscator.
    pub fn new(config: ObfuscateConfig) -> Obfuscator {
        Obfuscator {
            config,
            table: CANONICAL.iter().copied().collect(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ObfuscateConfig {
        &self.config
    }

    /// Scrubs one message.
    ///
    /// ```
    /// use darklight_text::obfuscate::{ObfuscateConfig, Obfuscator};
    /// let o = Obfuscator::new(ObfuscateConfig::default());
    /// assert_eq!(
    ///     o.apply("NGL u gotta try this!!! it's hella good 😀"),
    ///     "you got to try this. it is very good"
    /// );
    /// ```
    pub fn apply(&self, text: &str) -> String {
        let mut out = String::with_capacity(text.len());
        let mut pending_terminal = false;
        let mut emitted_anything = false;
        for token in Tokenizer::new(text) {
            match token.kind {
                TokenKind::Word => {
                    let word = self.normalize_word(&token);
                    if word.is_empty() {
                        continue;
                    }
                    self.flush_terminal(&mut out, &mut pending_terminal);
                    if emitted_anything {
                        out.push(' ');
                    }
                    out.push_str(&word);
                    emitted_anything = true;
                }
                TokenKind::Number => {
                    self.flush_terminal(&mut out, &mut pending_terminal);
                    if emitted_anything {
                        out.push(' ');
                    }
                    if self.config.normalize_numbers {
                        out.push('0');
                    } else {
                        out.push_str(token.text);
                    }
                    emitted_anything = true;
                }
                TokenKind::Url | TokenKind::Email => {
                    self.flush_terminal(&mut out, &mut pending_terminal);
                    if emitted_anything {
                        out.push(' ');
                    }
                    out.push_str(token.text);
                    emitted_anything = true;
                }
                TokenKind::Punct => {
                    if self.config.normalize_punctuation {
                        match token.text {
                            "." | "!" | "?" | "…" => pending_terminal = true,
                            "," | ";" | ":"
                                if emitted_anything && !out.ends_with(',') && !pending_terminal =>
                            {
                                out.push(',');
                            }
                            _ => {} // quotes, parens, dashes: dropped
                        }
                    } else {
                        out.push_str(token.text);
                    }
                }
                TokenKind::Symbol => {
                    if !self.config.normalize_punctuation {
                        out.push_str(token.text);
                    }
                }
                TokenKind::Emoji => {
                    if !self.config.strip_emoji && !is_emoji(' ') {
                        out.push_str(token.text);
                    }
                }
            }
        }
        if pending_terminal && emitted_anything && self.config.normalize_punctuation {
            out.push('.');
        }
        out
    }

    fn flush_terminal(&self, out: &mut String, pending: &mut bool) {
        if *pending {
            if self.config.normalize_punctuation && !out.is_empty() {
                out.push('.');
            }
            *pending = false;
        }
    }

    fn normalize_word(&self, token: &Token<'_>) -> String {
        let lower = if self.config.normalize_case || self.config.normalize_variants {
            token.text.to_lowercase()
        } else {
            token.text.to_string()
        };
        if self.config.normalize_variants || self.config.normalize_slang {
            if let Some(&canon) = self.table.get(lower.as_str()) {
                return canon.to_string();
            }
        }
        if self.config.normalize_case {
            lower
        } else {
            token.text.to_string()
        }
    }
}

impl Default for Obfuscator {
    fn default() -> Obfuscator {
        Obfuscator::new(ObfuscateConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::diversity_ratio;

    fn o() -> Obfuscator {
        Obfuscator::default()
    }

    #[test]
    fn contractions_expanded() {
        assert_eq!(
            o().apply("i'm sure it's fine, don't worry"),
            "i am sure it is fine, do not worry"
        );
    }

    #[test]
    fn shorthand_normalized() {
        assert_eq!(
            o().apply("u should rly read abt it tho"),
            "you should really read about it though"
        );
    }

    #[test]
    fn filler_slang_removed() {
        assert_eq!(o().apply("lol tbh the idea works imo"), "the idea works");
    }

    #[test]
    fn punctuation_flattened() {
        assert_eq!(o().apply("wow!!! really??? yes..."), "wow. really. yes.");
        assert_eq!(o().apply("one. two! three?"), "one. two. three.");
    }

    #[test]
    fn commas_survive_once() {
        assert_eq!(o().apply("first,, second , third"), "first, second, third");
    }

    #[test]
    fn case_flattened() {
        assert_eq!(o().apply("This IS Mixed Case"), "this is mixed case");
    }

    #[test]
    fn emoji_stripped() {
        assert_eq!(o().apply("good stuff 😀🔥"), "good stuff");
    }

    #[test]
    fn urls_and_emails_kept() {
        let s = o().apply("see https://example.com and mail a@b.io now");
        assert!(s.contains("https://example.com"));
        assert!(s.contains("a@b.io"));
    }

    #[test]
    fn numbers_kept_by_default_normalized_when_aggressive() {
        assert_eq!(o().apply("paid 42 dollars"), "paid 42 dollars");
        let aggr = Obfuscator::new(ObfuscateConfig::aggressive());
        assert_eq!(aggr.apply("paid 42 dollars"), "paid 0 dollars");
    }

    #[test]
    fn idempotent() {
        let obf = o();
        for s in [
            "NGL u gotta try this!!! it's hella good",
            "plain text already",
            "lol... ok then, fine!",
        ] {
            let once = obf.apply(s);
            assert_eq!(obf.apply(&once), once, "{s:?}");
        }
    }

    #[test]
    fn content_words_preserved() {
        let original = "the quick brown fox jumps over the lazy dog";
        assert_eq!(o().apply(original), original);
        // Diversity is not destroyed.
        assert!(diversity_ratio(&o().apply(original)) > 0.8);
    }

    #[test]
    fn empty_input() {
        assert_eq!(o().apply(""), "");
        assert_eq!(o().apply("!!!"), "");
    }

    #[test]
    fn disabled_channels_pass_through() {
        let cfg = ObfuscateConfig {
            normalize_case: false,
            normalize_variants: false,
            normalize_slang: false,
            normalize_punctuation: false,
            normalize_numbers: false,
            strip_emoji: false,
        };
        let obf = Obfuscator::new(cfg);
        let s = "Mixed CASE, don't!!!";
        let out = obf.apply(s);
        assert!(out.contains("CASE"));
        assert!(out.contains("don't"));
        assert!(out.contains("!!!"));
    }

    #[test]
    fn different_styles_converge() {
        // Two authors writing the same content differently end up with
        // near-identical scrubbed text — that's the point.
        let a = "NGL u gotta check the market tho!!! it's hella cheap";
        let b = "You gotta check the market, though. It is very cheap.";
        let obf = o();
        let (ca, cb) = (obf.apply(a), obf.apply(b));
        let wa = crate::token::words(&ca);
        let wb = crate::token::words(&cb);
        let set_a: std::collections::HashSet<_> = wa.iter().collect();
        let set_b: std::collections::HashSet<_> = wb.iter().collect();
        let jaccard =
            set_a.intersection(&set_b).count() as f64 / set_a.union(&set_b).count() as f64;
        assert!(jaccard > 0.7, "jaccard {jaccard}: {ca:?} vs {cb:?}");
    }
}
