//! Text-level cleaning primitives behind the paper's polishing steps
//! (§III-C).
//!
//! Each function implements one of the transformations the authors apply to
//! raw forum posts before feature extraction: URL reduction to hostnames,
//! e-mail masking, emoji stripping, quote and edit-tag removal, PGP-armor
//! removal, over-long-word removal, and the vocabulary-diversity ratio used
//! to drop spam. The full twelve-step pipeline (which also involves
//! per-account and per-dataset rules) lives in `darklight-corpus`; this
//! module holds the reusable string transforms.

use crate::token::{is_emoji, Token, TokenKind, Tokenizer};

/// The paper's replacement tag for e-mail addresses (step 10).
pub const MAIL_TAG: &str = "_mail_";

/// The paper's maximum meaningful word length (step 12): longer "words" are
/// jokes, ASCII art, or stray PGP material.
pub const MAX_WORD_LEN: usize = 34;

/// Extracts the hostname from a URL, dropping scheme, path, query, fragment,
/// port, and a leading `www.` — the paper keeps `reddit` -style hostnames
/// (step 3 normalizes `www.reddit.com` to `reddit`... we keep the registrable
/// host minus `www.`, e.g. `reddit.com`, which preserves strictly more
/// signal while staying user-agnostic).
///
/// ```
/// use darklight_text::normalize::url_hostname;
/// assert_eq!(url_hostname("https://www.reddit.com/r/rust?x=1"), "reddit.com");
/// assert_eq!(url_hostname("www.example.org"), "example.org");
/// ```
pub fn url_hostname(url: &str) -> String {
    let mut rest = url;
    for scheme in ["http://", "https://", "ftp://"] {
        if let Some(head) = rest.get(..scheme.len()) {
            if head.eq_ignore_ascii_case(scheme) {
                rest = &rest[scheme.len()..];
                break;
            }
        }
    }
    let end = rest.find(['/', '?', '#', ':']).unwrap_or(rest.len());
    let mut host = &rest[..end];
    if let Some(head) = host.get(..4) {
        if head.eq_ignore_ascii_case("www.") {
            host = &host[4..];
        }
    }
    host.to_lowercase()
}

/// Rewrites every URL token in `text` to its hostname (polishing step 3) and
/// every e-mail token to [`MAIL_TAG`] (step 10), leaving everything else
/// untouched.
pub fn normalize_urls_and_emails(text: &str) -> String {
    rebuild(text, |t| match t.kind {
        TokenKind::Url => Some(url_hostname(t.text)),
        TokenKind::Email => Some(MAIL_TAG.to_string()),
        _ => None,
    })
}

/// Removes emoji characters (polishing step 4), collapsing any whitespace
/// runs they leave behind.
///
/// ```
/// use darklight_text::normalize::strip_emojis;
/// assert_eq!(strip_emojis("good 😀 stuff"), "good stuff");
/// ```
pub fn strip_emojis(text: &str) -> String {
    let cleaned: String = text.chars().filter(|&c| !is_emoji(c)).collect();
    collapse_spaces(&cleaned)
}

/// Removes quoted lines (polishing step 8). On Reddit a quote is a line
/// starting with `>`; classic forum quotes wrap text in
/// `[quote]…[/quote]` blocks. Both forms are removed so we never attribute
/// someone else's words to the poster.
pub fn remove_quotes(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_block_quote = false;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with('>') {
            continue;
        }
        let lower = trimmed.to_lowercase();
        if lower.contains("[quote") {
            in_block_quote = true;
        }
        let closes = lower.contains("[/quote]");
        if !in_block_quote {
            out.push_str(line);
            out.push('\n');
        }
        if closes {
            in_block_quote = false;
        }
    }
    let result = out.trim_end_matches('\n');
    result.to_string()
}

/// Removes platform edit tags (polishing step 9): everything from an
/// `Edit by <user>` / `EDIT:` / `edit:` marker to the end of its line —
/// these strings embed the username and would leak label information.
pub fn remove_edit_tags(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for (i, line) in text.lines().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(strip_edit_tag(line));
    }
    out
}

fn strip_edit_tag(line: &str) -> &str {
    let lower = line.to_lowercase();
    let markers = ["edit by ", "edited by ", "edit:", "edit :", "last edit"];
    let mut cut = line.len();
    for m in markers {
        let mut search_from = 0;
        while let Some(pos) = lower[search_from..].find(m) {
            let abs = search_from + pos;
            // Only treat it as a tag at a word boundary.
            let at_boundary = abs == 0 || !lower.as_bytes()[abs - 1].is_ascii_alphanumeric();
            if at_boundary && abs < cut {
                cut = abs;
            }
            search_from = abs + m.len();
        }
    }
    line[..cut].trim_end()
}

/// Removes PGP armor blocks (polishing step 11): anything between
/// `-----BEGIN PGP` and the matching `-----END PGP …-----` line, inclusive.
/// An unterminated block is removed to the end of the text.
pub fn remove_pgp_blocks(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_block = false;
    for line in text.lines() {
        let upper = line.to_uppercase();
        if upper.contains("-----BEGIN PGP") {
            in_block = true;
            continue;
        }
        if in_block {
            if upper.contains("-----END PGP") {
                in_block = false;
            }
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    out.trim_end_matches('\n').to_string()
}

/// Removes "words" longer than [`MAX_WORD_LEN`] characters (polishing step
/// 12) — ASCII art, key material, and keyboard mashing.
pub fn drop_long_words(text: &str) -> String {
    let kept: Vec<&str> = text
        .split_whitespace()
        .filter(|w| w.chars().count() <= MAX_WORD_LEN)
        .collect();
    kept.join(" ")
}

/// The ratio of distinct words to total words (polishing step 6). Spam
/// messages repeating one sentence have a low ratio; the paper drops
/// messages below 0.5. Returns 0 for wordless text.
///
/// ```
/// use darklight_text::normalize::diversity_ratio;
/// assert!(diversity_ratio("buy now buy now buy now") < 0.5);
/// assert_eq!(diversity_ratio("all completely distinct words here"), 1.0);
/// ```
pub fn diversity_ratio(text: &str) -> f64 {
    let words = crate::token::words(text);
    if words.is_empty() {
        return 0.0;
    }
    let distinct: std::collections::HashSet<&String> = words.iter().collect();
    distinct.len() as f64 / words.len() as f64
}

/// Collapses runs of spaces/tabs into single spaces and trims line ends
/// (newlines are preserved).
pub fn collapse_spaces(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for (i, line) in text.lines().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let mut last_space = true; // trims leading spaces
        for c in line.chars() {
            if c == ' ' || c == '\t' {
                if !last_space {
                    out.push(' ');
                }
                last_space = true;
            } else {
                out.push(c);
                last_space = false;
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
    }
    out
}

/// Rewrites `text` token-by-token: `f` returns `Some(replacement)` for
/// tokens to rewrite and `None` to copy the original. Inter-token source
/// text (whitespace, unrecognized characters) is preserved verbatim.
fn rebuild(text: &str, f: impl Fn(&Token<'_>) -> Option<String>) -> String {
    let mut out = String::with_capacity(text.len());
    let mut cursor = 0;
    for token in Tokenizer::new(text) {
        out.push_str(&text[cursor..token.start]);
        match f(&token) {
            Some(replacement) => out.push_str(&replacement),
            None => out.push_str(token.text),
        }
        cursor = token.end();
    }
    out.push_str(&text[cursor..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hostname_extraction() {
        assert_eq!(url_hostname("https://www.reddit.com/r/x"), "reddit.com");
        assert_eq!(url_hostname("HTTP://EXAMPLE.COM/PATH"), "example.com");
        assert_eq!(url_hostname("www.foo.bar"), "foo.bar");
        assert_eq!(url_hostname("https://host.onion:8080/x"), "host.onion");
        assert_eq!(url_hostname("https://a.b?q=1"), "a.b");
        assert_eq!(url_hostname("https://a.b#frag"), "a.b");
    }

    #[test]
    fn urls_and_emails_normalized_in_context() {
        let s = "see https://www.reddit.com/r/rust and mail me@example.com ok";
        assert_eq!(
            normalize_urls_and_emails(s),
            "see reddit.com and mail _mail_ ok"
        );
    }

    #[test]
    fn non_url_text_untouched() {
        let s = "no links here, just words & symbols #5";
        assert_eq!(normalize_urls_and_emails(s), s);
    }

    #[test]
    fn emoji_stripping() {
        assert_eq!(strip_emojis("a 😀😀 b"), "a b");
        assert_eq!(strip_emojis("😀"), "");
        assert_eq!(strip_emojis("plain"), "plain");
    }

    #[test]
    fn reddit_quotes_removed() {
        let s = "I agree.\n> someone else said this\n> and this\nMy reply.";
        assert_eq!(remove_quotes(s), "I agree.\nMy reply.");
    }

    #[test]
    fn bbcode_quotes_removed() {
        let s = "intro\n[quote=alice]their words\nmore of their words[/quote]\nmy words";
        assert_eq!(remove_quotes(s), "intro\nmy words");
    }

    #[test]
    fn unterminated_bbcode_quote_drops_rest() {
        let s = "mine\n[quote]theirs\ntheirs too";
        assert_eq!(remove_quotes(s), "mine");
    }

    #[test]
    fn edit_tags_removed() {
        assert_eq!(
            remove_edit_tags("Great deal! Edit by dark_vendor: fixed typo"),
            "Great deal!"
        );
        assert_eq!(remove_edit_tags("nice EDIT: added link"), "nice");
        assert_eq!(
            remove_edit_tags("first line\nsecond Edit by x"),
            "first line\nsecond"
        );
    }

    #[test]
    fn edit_marker_inside_word_kept() {
        assert_eq!(remove_edit_tags("I reedit: my posts"), "I reedit: my posts");
        // "credit:" contains "edit:" but not at a word boundary.
        assert_eq!(
            remove_edit_tags("photo credit: alice"),
            "photo credit: alice"
        );
    }

    #[test]
    fn pgp_blocks_removed() {
        let s = "my key:\n-----BEGIN PGP PUBLIC KEY BLOCK-----\nmQENBF\nxyz\n-----END PGP PUBLIC KEY BLOCK-----\nthanks";
        assert_eq!(remove_pgp_blocks(s), "my key:\nthanks");
    }

    #[test]
    fn unterminated_pgp_block_removed_to_end() {
        let s = "hello\n-----BEGIN PGP MESSAGE-----\ngarbage";
        assert_eq!(remove_pgp_blocks(s), "hello");
    }

    #[test]
    fn long_words_dropped() {
        let long = "x".repeat(35);
        let ok = "y".repeat(34);
        let s = format!("keep {long} this {ok}");
        assert_eq!(drop_long_words(&s), format!("keep this {ok}"));
    }

    #[test]
    fn diversity_ratio_values() {
        assert_eq!(diversity_ratio(""), 0.0);
        assert_eq!(diversity_ratio("..."), 0.0);
        assert_eq!(diversity_ratio("word"), 1.0);
        let r = diversity_ratio("spam spam spam spam");
        assert!((r - 0.25).abs() < 1e-12);
    }

    #[test]
    fn collapse_spaces_behaviour() {
        assert_eq!(collapse_spaces("a   b\t\tc"), "a b c");
        assert_eq!(collapse_spaces("  lead and trail  "), "lead and trail");
        assert_eq!(collapse_spaces("line1  x\nline2"), "line1 x\nline2");
    }

    #[test]
    fn pipeline_composition() {
        let raw = "> quoted junk\nBuy at https://www.shop.onion/item 😀 contact me@x.io\n-----BEGIN PGP SIGNATURE-----\nabc\n-----END PGP SIGNATURE-----\ndone Edit by seller99";
        let cleaned = remove_edit_tags(&remove_pgp_blocks(&remove_quotes(
            &normalize_urls_and_emails(&strip_emojis(raw)),
        )));
        assert_eq!(cleaned, "Buy at shop.onion contact _mail_\ndone");
    }
}
