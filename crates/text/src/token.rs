//! A forum-aware tokenizer.
//!
//! Web forum text is messy: URLs, e-mail addresses, emoji, ASCII art, and
//! creative punctuation all appear mid-sentence. The paper's feature
//! extraction needs to (a) split text into linguistic units and (b) know the
//! *class* of each unit, because several polishing steps and the char-class
//! frequency features (Table II) are class-driven. The tokenizer is a single
//! left-to-right pass with longest-match recognition of URLs and e-mails,
//! emitting borrowed slices with byte offsets.

use std::fmt;

/// The lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// An alphabetic word, possibly with internal apostrophes or hyphens
    /// (`don't`, `state-of-the-art`).
    Word,
    /// A run of digits, possibly with internal `.`/`,` separators (`3.14`).
    Number,
    /// A single punctuation character (`.`, `,`, `!`, `?`, …).
    Punct,
    /// A single non-punctuation symbol (`@`, `#`, `$`, `+`, …).
    Symbol,
    /// A single emoji or pictographic character.
    Emoji,
    /// A URL (`http://…`, `https://…`, or `www.…`).
    Url,
    /// An e-mail address (`user@host.tld`).
    Email,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TokenKind::Word => "word",
            TokenKind::Number => "number",
            TokenKind::Punct => "punct",
            TokenKind::Symbol => "symbol",
            TokenKind::Emoji => "emoji",
            TokenKind::Url => "url",
            TokenKind::Email => "email",
        };
        f.write_str(name)
    }
}

/// A token: a classified slice of the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token text, borrowed from the source.
    pub text: &'a str,
    /// The lexical class.
    pub kind: TokenKind,
    /// Byte offset of the token start in the source.
    pub start: usize,
}

impl<'a> Token<'a> {
    /// Byte offset one past the token end.
    pub fn end(&self) -> usize {
        self.start + self.text.len()
    }
}

/// Returns `true` for characters we classify as emoji/pictographs.
pub fn is_emoji(c: char) -> bool {
    matches!(u32::from(c),
        0x1F300..=0x1F5FF   // symbols & pictographs
        | 0x1F600..=0x1F64F // emoticons
        | 0x1F680..=0x1F6FF // transport & map
        | 0x1F900..=0x1F9FF // supplemental symbols
        | 0x1FA70..=0x1FAFF // extended-A
        | 0x2600..=0x26FF   // miscellaneous symbols
        | 0x2700..=0x27BF   // dingbats
        | 0x1F1E6..=0x1F1FF // regional indicators
        | 0xFE0F..=0xFE0F   // variation selector-16
        | 0x200D..=0x200D   // zero-width joiner
    )
}

/// Returns `true` for sentence/phrase punctuation characters.
pub fn is_punct(c: char) -> bool {
    matches!(
        c,
        '.' | ','
            | ';'
            | ':'
            | '!'
            | '?'
            | '\''
            | '"'
            | '('
            | ')'
            | '['
            | ']'
            | '{'
            | '}'
            | '-'
            | '…'
            | '‘'
            | '’'
            | '“'
            | '”'
            | '«'
            | '»'
    )
}

/// An iterator over the tokens of a string. Whitespace and control
/// characters separate tokens and are never emitted.
///
/// ```
/// use darklight_text::token::{Tokenizer, TokenKind};
/// let kinds: Vec<_> = Tokenizer::new("email me at bob@example.com!")
///     .map(|t| t.kind)
///     .collect();
/// assert_eq!(
///     kinds,
///     [TokenKind::Word, TokenKind::Word, TokenKind::Word, TokenKind::Email, TokenKind::Punct]
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Tokenizer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Tokenizer<'a> {
    /// Creates a tokenizer over `src`.
    pub fn new(src: &'a str) -> Tokenizer<'a> {
        Tokenizer { src, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    /// Tries to recognize a URL at the current position; returns its byte
    /// length if present.
    fn match_url(&self) -> Option<usize> {
        let rest = self.rest();
        let lower_starts = ["http://", "https://", "www."];
        let prefix_len = lower_starts
            .iter()
            .find_map(|p| match rest.get(..p.len()) {
                Some(head) if head.eq_ignore_ascii_case(p) => Some(p.len()),
                _ => None,
            })?;
        let mut len = prefix_len;
        for c in rest[prefix_len..].chars() {
            if c.is_whitespace() || c == '<' || c == '>' || c == '"' || c == ')' || c == ']' {
                break;
            }
            len += c.len_utf8();
        }
        // Trim trailing sentence punctuation off the URL.
        while let Some(last) = rest[..len].chars().last() {
            if matches!(last, '.' | ',' | '!' | '?' | ';' | ':' | '\'') {
                len -= last.len_utf8();
            } else {
                break;
            }
        }
        // Require something after the prefix ("www." alone is not a URL).
        if len > prefix_len {
            Some(len)
        } else {
            None
        }
    }

    /// Tries to recognize an e-mail address starting at the current
    /// position. The local part must begin exactly here.
    fn match_email(&self) -> Option<usize> {
        let rest = self.rest();
        let is_local = |c: char| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-' | '+');
        let is_domain = |c: char| c.is_ascii_alphanumeric() || matches!(c, '.' | '-');
        let mut chars = rest.char_indices().peekable();
        let mut local_end = 0;
        while let Some(&(i, c)) = chars.peek() {
            if is_local(c) {
                local_end = i + c.len_utf8();
                chars.next();
            } else {
                break;
            }
        }
        if local_end == 0 {
            return None;
        }
        match chars.peek() {
            Some(&(_, '@')) => {
                chars.next();
            }
            _ => return None,
        }
        let domain_start = local_end + 1;
        let mut domain_end = domain_start;
        while let Some(&(i, c)) = chars.peek() {
            if is_domain(c) {
                domain_end = i + c.len_utf8();
                chars.next();
            } else {
                break;
            }
        }
        let domain = &rest[domain_start..domain_end];
        // Require a dot with a 2+ letter TLD.
        let tld = domain.rsplit('.').next()?;
        if domain.contains('.') && tld.len() >= 2 && tld.chars().all(|c| c.is_ascii_alphabetic()) {
            Some(domain_end)
        } else {
            None
        }
    }

    /// Consumes a word: letters with internal `'` or `-` joining letters.
    fn match_word(&self) -> usize {
        let rest = self.rest();
        let mut len = 0;
        let mut chars = rest.char_indices().peekable();
        while let Some(&(i, c)) = chars.peek() {
            if c.is_alphabetic() {
                len = i + c.len_utf8();
                chars.next();
            } else if (c == '\'' || c == '-' || c == '’') && len > 0 {
                // Join only if a letter follows.
                let mut ahead = chars.clone();
                ahead.next();
                match ahead.peek() {
                    Some(&(_, n)) if n.is_alphabetic() => {
                        len = i + c.len_utf8();
                        chars.next();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        len
    }

    /// Consumes a number: digits with internal `.`/`,` joining digits.
    fn match_number(&self) -> usize {
        let rest = self.rest();
        let mut len = 0;
        let mut chars = rest.char_indices().peekable();
        while let Some(&(i, c)) = chars.peek() {
            if c.is_ascii_digit() {
                len = i + c.len_utf8();
                chars.next();
            } else if (c == '.' || c == ',') && len > 0 {
                let mut ahead = chars.clone();
                ahead.next();
                match ahead.peek() {
                    Some(&(_, n)) if n.is_ascii_digit() => {
                        len = i + c.len_utf8();
                        chars.next();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        len
    }
}

impl<'a> Iterator for Tokenizer<'a> {
    type Item = Token<'a>;

    fn next(&mut self) -> Option<Token<'a>> {
        // Skip whitespace/control.
        loop {
            let c = self.rest().chars().next()?;
            if c.is_whitespace() || c.is_control() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        let start = self.pos;
        let c = self.rest().chars().next()?;

        // Longest-match special forms first.
        if let Some(len) = self.match_url() {
            self.pos += len;
            return Some(Token {
                text: &self.src[start..start + len],
                kind: TokenKind::Url,
                start,
            });
        }
        if c.is_ascii_alphanumeric() {
            if let Some(len) = self.match_email() {
                self.pos += len;
                return Some(Token {
                    text: &self.src[start..start + len],
                    kind: TokenKind::Email,
                    start,
                });
            }
        }
        if c.is_alphabetic() {
            let len = self.match_word();
            self.pos += len;
            return Some(Token {
                text: &self.src[start..start + len],
                kind: TokenKind::Word,
                start,
            });
        }
        if c.is_ascii_digit() {
            let len = self.match_number();
            self.pos += len;
            return Some(Token {
                text: &self.src[start..start + len],
                kind: TokenKind::Number,
                start,
            });
        }
        // Single-character tokens.
        let len = c.len_utf8();
        self.pos += len;
        let kind = if is_emoji(c) {
            TokenKind::Emoji
        } else if is_punct(c) {
            TokenKind::Punct
        } else {
            TokenKind::Symbol
        };
        Some(Token {
            text: &self.src[start..start + len],
            kind,
            start,
        })
    }
}

/// Convenience: the lowercased word tokens of `text`, in order.
///
/// ```
/// use darklight_text::token::words;
/// assert_eq!(words("Hello, WORLD 42!"), ["hello", "world"]);
/// ```
pub fn words(text: &str) -> Vec<String> {
    Tokenizer::new(text)
        .filter(|t| t.kind == TokenKind::Word)
        .map(|t| t.text.to_lowercase())
        .collect()
}

/// Convenience: number of word tokens in `text`.
pub fn word_count(text: &str) -> usize {
    Tokenizer::new(text)
        .filter(|t| t.kind == TokenKind::Word)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        Tokenizer::new(s).map(|t| t.kind).collect()
    }

    fn texts(s: &str) -> Vec<&str> {
        Tokenizer::new(s).map(|t| t.text).collect()
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(Tokenizer::new("").next().is_none());
        assert!(Tokenizer::new("  \t\n ").next().is_none());
    }

    #[test]
    fn words_with_apostrophes_and_hyphens() {
        assert_eq!(
            texts("don't well-known rock'n'roll"),
            ["don't", "well-known", "rock'n'roll"]
        );
        // Trailing apostrophe is punctuation, not part of the word.
        assert_eq!(kinds("cats'"), [TokenKind::Word, TokenKind::Punct]);
        // Leading hyphen is not a word.
        assert_eq!(kinds("-abc"), [TokenKind::Punct, TokenKind::Word]);
    }

    #[test]
    fn numbers() {
        assert_eq!(texts("3.14 1,000 42"), ["3.14", "1,000", "42"]);
        assert_eq!(kinds("42."), [TokenKind::Number, TokenKind::Punct]);
    }

    #[test]
    fn urls_recognized() {
        let toks: Vec<_> = Tokenizer::new("see https://www.reddit.com/r/science, ok?").collect();
        assert_eq!(toks[1].kind, TokenKind::Url);
        assert_eq!(toks[1].text, "https://www.reddit.com/r/science");
        assert_eq!(toks[2].kind, TokenKind::Punct); // the comma survives
    }

    #[test]
    fn bare_www_url() {
        let toks: Vec<_> = Tokenizer::new("www.example.org rocks").collect();
        assert_eq!(toks[0].kind, TokenKind::Url);
        assert_eq!(toks[0].text, "www.example.org");
        assert_eq!(toks[1].text, "rocks");
    }

    #[test]
    fn www_alone_is_not_url() {
        let toks: Vec<_> = Tokenizer::new("www. hello").collect();
        assert_eq!(toks[0].kind, TokenKind::Word);
        assert_eq!(toks[0].text, "www");
    }

    #[test]
    fn emails_recognized() {
        let toks: Vec<_> = Tokenizer::new("mail bob.smith+x@mail.example.com now").collect();
        assert_eq!(toks[1].kind, TokenKind::Email);
        assert_eq!(toks[1].text, "bob.smith+x@mail.example.com");
    }

    #[test]
    fn at_without_domain_is_not_email() {
        let toks: Vec<_> = Tokenizer::new("hi @user and a@b").collect();
        assert!(toks.iter().all(|t| t.kind != TokenKind::Email));
    }

    #[test]
    fn emoji_classified() {
        let toks: Vec<_> = Tokenizer::new("nice 😀 ☀ work").collect();
        assert_eq!(toks[1].kind, TokenKind::Emoji);
        assert_eq!(toks[2].kind, TokenKind::Emoji);
        assert_eq!(toks[3].kind, TokenKind::Word);
    }

    #[test]
    fn punct_vs_symbol() {
        assert_eq!(
            kinds("# @ ! ?"),
            [
                TokenKind::Symbol,
                TokenKind::Symbol,
                TokenKind::Punct,
                TokenKind::Punct
            ]
        );
    }

    #[test]
    fn offsets_are_correct() {
        let src = "ab  cd";
        let toks: Vec<_> = Tokenizer::new(src).collect();
        assert_eq!(toks[0].start, 0);
        assert_eq!(toks[0].end(), 2);
        assert_eq!(toks[1].start, 4);
        assert_eq!(&src[toks[1].start..toks[1].end()], "cd");
    }

    #[test]
    fn unicode_words() {
        assert_eq!(texts("naïve café über"), ["naïve", "café", "über"]);
    }

    #[test]
    fn words_helper_lowercases() {
        assert_eq!(words("The THE the"), ["the", "the", "the"]);
        assert_eq!(word_count("one two 3 four!"), 3);
    }

    #[test]
    fn mixed_forum_post() {
        let post =
            "Check https://market.onion/listing?id=9 — price is $12.50, msg seller@proton.me 😀";
        let toks: Vec<_> = Tokenizer::new(post).collect();
        let urls = toks.iter().filter(|t| t.kind == TokenKind::Url).count();
        let emails = toks.iter().filter(|t| t.kind == TokenKind::Email).count();
        let emoji = toks.iter().filter(|t| t.kind == TokenKind::Emoji).count();
        assert_eq!((urls, emails, emoji), (1, 1, 1));
    }

    #[test]
    fn never_loops_forever_on_odd_input() {
        // A stress string with every class adjacent to every other.
        let s = "a1!@😀…\u{0}b- 'x' -- 9.. www. http:// a@b.c2";
        let toks: Vec<_> = Tokenizer::new(s).collect();
        assert!(!toks.is_empty());
        // Offsets strictly increase.
        for w in toks.windows(2) {
            assert!(w[1].start >= w[0].end());
        }
    }
}
