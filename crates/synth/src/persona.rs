//! Personas: the people behind the aliases.
//!
//! A [`Persona`] bundles a style genome, a temporal genome, and a *fact
//! sheet* — the identity attributes (age, city, drug habits, hobbies, …)
//! this person could leak in their posts. Every alias generated from the
//! persona shares all three; which facts actually leak on which alias is
//! decided at generation time and recorded per-alias, which is exactly the
//! information asymmetry the paper's manual verification worked with.

use crate::lexicon::{
    ALIAS_HEADS, ALIAS_TAILS, CITIES, DEVICES, DRUGS, HOBBIES, JOBS, POLITICS, RELIGIONS,
};
use crate::style::StyleGenome;
use crate::temporal::TemporalGenome;
use darklight_corpus::model::{Fact, FactKind};
use rand::Rng;

/// One synthetic person.
#[derive(Debug, Clone, PartialEq)]
pub struct Persona {
    /// Stable id; aliases carrying the same id are ground-truth matches.
    pub id: u64,
    /// How this person writes.
    pub style: StyleGenome,
    /// When this person posts.
    pub temporal: TemporalGenome,
    /// Everything this person could reveal about themselves.
    pub facts: Vec<Fact>,
}

impl Persona {
    /// Samples a persona with a full fact sheet.
    pub fn sample(rng: &mut impl Rng, id: u64, style_strength: f64) -> Persona {
        let mut facts = Vec::new();
        let (city, country) = CITIES[rng.random_range(0..CITIES.len())];
        facts.push(Fact::new(
            FactKind::Age,
            rng.random_range(18..46).to_string(),
        ));
        facts.push(Fact::new(FactKind::City, city));
        facts.push(Fact::new(FactKind::Country, country));
        facts.push(Fact::new(
            FactKind::Religion,
            RELIGIONS[rng.random_range(0..RELIGIONS.len())],
        ));
        facts.push(Fact::new(
            FactKind::Politics,
            POLITICS[rng.random_range(0..POLITICS.len())],
        ));
        for _ in 0..rng.random_range(1..=3) {
            facts.push(Fact::new(
                FactKind::Drug,
                DRUGS[rng.random_range(0..DRUGS.len())],
            ));
        }
        for _ in 0..rng.random_range(1..=3) {
            facts.push(Fact::new(
                FactKind::Hobby,
                HOBBIES[rng.random_range(0..HOBBIES.len())],
            ));
        }
        facts.push(Fact::new(
            FactKind::Device,
            DEVICES[rng.random_range(0..DEVICES.len())],
        ));
        facts.push(Fact::new(
            FactKind::Job,
            JOBS[rng.random_range(0..JOBS.len())],
        ));
        // A distinctive vendor complaint (strong evidence when shared).
        let vendor = alias_name(rng);
        let drug = DRUGS[rng.random_range(0..DRUGS.len())];
        facts.push(Fact::new(
            FactKind::VendorComplaint,
            format!("{vendor} sold bunk {drug}"),
        ));
        // A personal referral link (strong evidence).
        facts.push(Fact::new(
            FactKind::Link,
            format!("refer.example.com/{}{}", vendor, rng.random_range(100..999)),
        ));
        facts.dedup();
        Persona {
            id,
            style: StyleGenome::sample(rng, style_strength),
            temporal: TemporalGenome::sample(rng),
            facts,
        }
    }

    /// A random subset of facts for one alias to leak, always including the
    /// alias-reference fact when `other_alias` is given (vendors "use their
    /// name as a brand", §V-C).
    pub fn facts_for_alias(
        &self,
        rng: &mut impl Rng,
        leak_fraction: f64,
        other_alias: Option<&str>,
    ) -> Vec<Fact> {
        let mut out: Vec<Fact> = self
            .facts
            .iter()
            .filter(|_| rng.random::<f64>() < leak_fraction)
            .cloned()
            .collect();
        if let Some(alias) = other_alias {
            out.push(Fact::new(FactKind::AliasRef, alias));
        }
        out
    }
}

/// Generates a forum nickname (`head` + `tail` [+ digits]).
pub fn alias_name(rng: &mut impl Rng) -> String {
    let head = ALIAS_HEADS[rng.random_range(0..ALIAS_HEADS.len())];
    let tail = ALIAS_TAILS[rng.random_range(0..ALIAS_TAILS.len())];
    match rng.random_range(0..4) {
        0 => format!("{head}_{tail}"),
        1 => format!("{head}{tail}{}", rng.random_range(1..100)),
        2 => format!("{head}{tail}"),
        _ => format!("{head}_{tail}_{}", rng.random_range(1..1000)),
    }
}

/// Renders a leak sentence for one fact, in a style-neutral phrasing (the
/// identifying signal is the *fact content*, as in the paper's examples).
pub fn leak_sentence(rng: &mut impl Rng, fact: &Fact) -> String {
    let v = &fact.value;
    match fact.kind {
        FactKind::Age => match rng.random_range(0..3) {
            0 => format!("im {v} years old btw."),
            1 => format!("speaking as a {v} year old here."),
            _ => format!("turned {v} this year."),
        },
        FactKind::City => match rng.random_range(0..3) {
            0 => format!("here in {v} things are pretty quiet."),
            1 => format!("greetings from {v}."),
            _ => format!("anyone else from {v} around here?"),
        },
        FactKind::Country => format!("shipping to {v} has always worked for me."),
        FactKind::Religion => format!("as a {v} i try not to judge anyone."),
        FactKind::Politics => format!("politically i lean {v} if that matters."),
        FactKind::Drug => match rng.random_range(0..3) {
            0 => format!("{v} is my thing lately."),
            1 => format!("tried {v} again last weekend."),
            _ => format!("nothing beats good {v} honestly."),
        },
        FactKind::VendorComplaint => format!("heads up : {v} , total waste of money."),
        FactKind::Hobby => match rng.random_range(0..2) {
            0 => format!("been really into {v} these days."),
            _ => format!("when im not here im usually doing {v}."),
        },
        FactKind::Device => format!("typing this from my {v} so excuse typos."),
        FactKind::AliasRef => match rng.random_range(0..3) {
            0 => format!("i also post as {v} on the other forum."),
            1 => format!("you might know me as {v} elsewhere."),
            _ => format!("same person as {v} btw, building my brand."),
        },
        FactKind::Link => format!("check www.{v} if you want the referral."),
        FactKind::Job => format!("my shift as a {v} just ended."),
        FactKind::Language => format!("my first language is {v} so bear with me."),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn persona_has_full_fact_sheet() {
        let p = Persona::sample(&mut rng(1), 42, 1.0);
        assert_eq!(p.id, 42);
        let kinds: std::collections::HashSet<FactKind> = p.facts.iter().map(|f| f.kind).collect();
        for required in [
            FactKind::Age,
            FactKind::City,
            FactKind::Country,
            FactKind::Religion,
            FactKind::Politics,
            FactKind::Drug,
            FactKind::Hobby,
            FactKind::Device,
            FactKind::Job,
            FactKind::VendorComplaint,
            FactKind::Link,
        ] {
            assert!(kinds.contains(&required), "missing {required:?}");
        }
    }

    #[test]
    fn personas_deterministic() {
        assert_eq!(
            Persona::sample(&mut rng(2), 1, 1.0),
            Persona::sample(&mut rng(2), 1, 1.0)
        );
    }

    #[test]
    fn facts_for_alias_subsets() {
        let p = Persona::sample(&mut rng(3), 1, 1.0);
        let leaked = p.facts_for_alias(&mut rng(4), 0.5, None);
        assert!(leaked.len() <= p.facts.len());
        for f in &leaked {
            assert!(p.facts.contains(f));
        }
        let with_ref = p.facts_for_alias(&mut rng(5), 0.0, Some("other_name"));
        assert_eq!(with_ref.len(), 1);
        assert_eq!(with_ref[0].kind, FactKind::AliasRef);
        assert_eq!(with_ref[0].value, "other_name");
    }

    #[test]
    fn alias_names_plausible() {
        let mut r = rng(6);
        for _ in 0..50 {
            let a = alias_name(&mut r);
            assert!(a.len() >= 5);
            assert!(a.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn leak_sentences_contain_the_value() {
        let mut r = rng(7);
        let p = Persona::sample(&mut r, 1, 1.0);
        for fact in &p.facts {
            let s = leak_sentence(&mut r, fact);
            assert!(
                s.contains(fact.value.as_str()),
                "{s:?} missing {:?}",
                fact.value
            );
        }
    }
}
