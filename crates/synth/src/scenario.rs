//! Scenario assembly: the three-forum world of the paper.
//!
//! A [`Scenario`] holds raw (pre-polishing) corpora for Reddit, The
//! Majestic Garden, and the Dream Market, with:
//!
//! * *resident* personas active on a single forum;
//! * *cross-forum* personas active on two forums (TMG↔DM for the
//!   pseudo-anonymity experiment of §V-B, Reddit↔dark for the
//!   de-anonymization experiment of §V-C), with style/temporal drift
//!   applied on the secondary forum;
//! * *thin* users with too little data to survive refinement (most of a
//!   real forum — Table IV keeps 422 of 4,709 TMG aliases);
//! * noise accounts (bots, spammers, non-English users) and message-level
//!   artifacts for the polishing pipeline.
//!
//! Everything is driven by a single seed; the same config + seed always
//! yields byte-identical corpora.

use crate::lexicon::{DRUGS_TOPIC, TOPICS};
use crate::noise::{bot_user, crosspost, foreign_user, pollute, spam_user, ForeignLang};
use crate::persona::{alias_name, leak_sentence, Persona};
use crate::style::{weighted_index, StyleGenome};
use crate::temporal::TemporalGenome;
use crate::textgen::{generate_long_message, generate_message};
use darklight_corpus::model::{Corpus, Post, User};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Which forum a corpus models; controls topic mixture and message length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ForumKind {
    /// Multi-topic, shorter messages (Table I mixture).
    Reddit,
    /// Drug-centric, "longer than average and more digressive" (§III-B2).
    MajesticGarden,
    /// Drug-centric marketplace forum (§III-B1).
    DreamMarket,
}

impl ForumKind {
    /// Canonical corpus name.
    pub fn name(self) -> &'static str {
        match self {
            ForumKind::Reddit => "reddit",
            ForumKind::MajesticGarden => "tmg",
            ForumKind::DreamMarket => "dm",
        }
    }

    /// Minimum words per message (TMG messages run long).
    fn min_words(self) -> usize {
        match self {
            ForumKind::Reddit => 8,
            ForumKind::MajesticGarden => 30,
            ForumKind::DreamMarket => 15,
        }
    }

    /// Dark forums confine almost all discussion to drugs.
    fn is_dark(self) -> bool {
        !matches!(self, ForumKind::Reddit)
    }
}

/// Noise-account volumes (per forum, fractions of the rich-user count).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseConfig {
    /// Bot accounts per rich user.
    pub bot_frac: f64,
    /// Spam accounts per rich user.
    pub spam_frac: f64,
    /// Non-English accounts per rich user.
    pub foreign_frac: f64,
    /// Probability of each pollution artifact per message.
    pub artifact_rate: f64,
    /// Fraction of a user's posts duplicated as crossposts.
    pub crosspost_frac: f64,
}

impl Default for NoiseConfig {
    fn default() -> NoiseConfig {
        NoiseConfig {
            bot_frac: 0.03,
            spam_frac: 0.03,
            foreign_frac: 0.04,
            artifact_rate: 0.04,
            crosspost_frac: 0.05,
        }
    }
}

/// Full scenario configuration. `ScenarioConfig::small()` is the test
/// scale; `ScenarioConfig::default_scale()` is the experiment scale;
/// `ScenarioConfig::paper_scale()` approaches the paper's user counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Master seed.
    pub seed: u64,
    /// Rich (refinement-surviving) Reddit residents.
    pub reddit_users: usize,
    /// Rich TMG residents.
    pub tmg_users: usize,
    /// Rich DM residents.
    pub dm_users: usize,
    /// Thin users per rich user (most real aliases are thin — Table IV).
    pub thin_frac: f64,
    /// Personas present on both TMG and DM (§V-B ground truth).
    pub cross_tmg_dm: usize,
    /// Personas present on Reddit and TMG (§V-C ground truth).
    pub cross_reddit_tmg: usize,
    /// Personas present on Reddit and DM (§V-C ground truth).
    pub cross_reddit_dm: usize,
    /// Style/temporal drift between the two dark forums (small).
    pub dark_drift: f64,
    /// Drift between Reddit and a dark forum (larger — "people might
    /// behave differently … in the standard Web").
    pub open_drift: f64,
    /// Style separability dial (1.0 = calibrated default).
    pub style_strength: f64,
    /// Fraction of a persona's fact sheet each alias may leak.
    pub leak_fraction: f64,
    /// Fraction of cross personas that self-reference their other alias
    /// (the vendor-as-brand behaviour of §V-C).
    pub alias_ref_rate: f64,
    /// Posts per rich user (min, max).
    pub posts_per_user: (usize, usize),
    /// Posts per thin user (min, max).
    pub thin_posts: (usize, usize),
    /// Noise volumes.
    pub noise: NoiseConfig,
    /// Style-evolution epochs across an author's posting history (the
    /// scenario-matrix `high-drift` dial): each author's timeline is cut
    /// into this many contiguous epochs and the style genome drifts by
    /// [`ScenarioConfig::epoch_drift`] at every boundary. `1` = a static
    /// style, byte-identical to the pre-matrix generator.
    pub style_epochs: usize,
    /// Drift applied between consecutive style epochs (`0.0` = none).
    pub epoch_drift: f64,
    /// Fraction of dark-forum *residents* that imitate a cross-forum
    /// persona's style (the `adversarial-imitation` dial): the imitator
    /// keeps its own persona id and temporal genome but writes in a
    /// lightly-drifted copy of a cross persona's style — a hard negative
    /// for text scoring. `0.0` = none.
    pub imitator_frac: f64,
    /// Per-post probability a rich author code-switches, appending a
    /// foreign phrase to an otherwise-English message (the
    /// `mixed-language` dial). `0.0` = none.
    pub code_switch_rate: f64,
    /// Fraction of dark aliases generated *sparse* (the `sparse-history`
    /// dial): few but long posts, keeping the alias above the 1,500-word
    /// refinement floor while staying below the 30-usable-timestamp
    /// activity floor. Applies to dark residents and to the secondary
    /// alias of cross personas; primaries stay rich. `0.0` = none.
    pub sparse_frac: f64,
}

/// Post-count range for sparse aliases: always below the 30-usable
/// activity floor (and the 60-timestamp alter-ego floor).
const SPARSE_POSTS: (usize, usize) = (16, 24);
/// Minimum words per sparse post: 16 × 130 keeps a sparse alias above the
/// 1,500-word refinement floor with margin for polishing losses.
const SPARSE_MIN_WORDS: usize = 130;
/// Style drift an imitator applies to the imitated persona's genome:
/// small, so the copy stays confusable with the original.
const IMITATION_DRIFT: f64 = 0.08;

impl ScenarioConfig {
    /// Tiny scale for unit/integration tests (seconds to generate).
    pub fn small() -> ScenarioConfig {
        ScenarioConfig {
            seed: 7,
            reddit_users: 60,
            tmg_users: 25,
            dm_users: 15,
            thin_frac: 1.0,
            cross_tmg_dm: 5,
            cross_reddit_tmg: 5,
            cross_reddit_dm: 4,
            dark_drift: 0.15,
            open_drift: 0.35,
            style_strength: 1.0,
            leak_fraction: 0.5,
            alias_ref_rate: 0.5,
            posts_per_user: (70, 130),
            thin_posts: (2, 20),
            noise: NoiseConfig::default(),
            style_epochs: 1,
            epoch_drift: 0.0,
            imitator_frac: 0.0,
            code_switch_rate: 0.0,
            sparse_frac: 0.0,
        }
    }

    /// Default experiment scale: large enough for meaningful
    /// precision/recall curves, small enough to run every experiment in
    /// minutes.
    pub fn default_scale() -> ScenarioConfig {
        ScenarioConfig {
            reddit_users: 1_200,
            tmg_users: 200,
            dm_users: 90,
            cross_tmg_dm: 12,
            cross_reddit_tmg: 25,
            cross_reddit_dm: 22,
            thin_frac: 1.5,
            ..ScenarioConfig::small()
        }
    }

    /// Near paper scale (11,679 Reddit / 422 TMG / 178 DM refined users).
    /// Slow; used via `DARKLIGHT_SCALE=paper`.
    pub fn paper_scale() -> ScenarioConfig {
        ScenarioConfig {
            reddit_users: 11_679,
            tmg_users: 422,
            dm_users: 178,
            cross_tmg_dm: 14,
            cross_reddit_tmg: 30,
            cross_reddit_dm: 28,
            thin_frac: 2.0,
            ..ScenarioConfig::small()
        }
    }
}

impl Default for ScenarioConfig {
    fn default() -> ScenarioConfig {
        ScenarioConfig::default_scale()
    }
}

/// A generated three-forum world plus its ground truth.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The raw Reddit corpus.
    pub reddit: Corpus,
    /// The raw Majestic Garden corpus.
    pub tmg: Corpus,
    /// The raw Dream Market corpus.
    pub dm: Corpus,
    /// Every persona in the world (residents and cross-forum).
    pub personas: Vec<Persona>,
}

impl Scenario {
    /// The corpus for a forum kind.
    pub fn corpus(&self, kind: ForumKind) -> &Corpus {
        match kind {
            ForumKind::Reddit => &self.reddit,
            ForumKind::MajesticGarden => &self.tmg,
            ForumKind::DreamMarket => &self.dm,
        }
    }

    /// Ground-truth cross-forum pairs between two corpora: aliases sharing
    /// a persona id, as `(alias_in_a, alias_in_b)`.
    pub fn true_pairs(&self, a: &Corpus, b: &Corpus) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for ua in &a.users {
            let Some(pid) = ua.persona else { continue };
            for ub in &b.users {
                if ub.persona == Some(pid) {
                    out.push((ua.alias.clone(), ub.alias.clone()));
                }
            }
        }
        out
    }
}

/// Generates [`Scenario`]s from a [`ScenarioConfig`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    config: ScenarioConfig,
}

impl ScenarioBuilder {
    /// Creates a builder.
    pub fn new(config: ScenarioConfig) -> ScenarioBuilder {
        ScenarioBuilder { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Generates the world.
    pub fn build(&self) -> Scenario {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut next_pid = 0u64;
        let mut personas: Vec<Persona> = Vec::new();
        let mut used_names: HashSet<String> = HashSet::new();

        let mut new_persona = |rng: &mut StdRng, personas: &mut Vec<Persona>| -> usize {
            let p = Persona::sample(rng, next_pid, cfg.style_strength);
            next_pid += 1;
            personas.push(p);
            personas.len() - 1
        };

        // Plan memberships: (persona index, [forums]).
        let mut memberships: Vec<(usize, Vec<ForumKind>)> = Vec::new();
        for _ in 0..cfg.cross_tmg_dm {
            let p = new_persona(&mut rng, &mut personas);
            memberships.push((p, vec![ForumKind::MajesticGarden, ForumKind::DreamMarket]));
        }
        for _ in 0..cfg.cross_reddit_tmg {
            let p = new_persona(&mut rng, &mut personas);
            memberships.push((p, vec![ForumKind::Reddit, ForumKind::MajesticGarden]));
        }
        for _ in 0..cfg.cross_reddit_dm {
            let p = new_persona(&mut rng, &mut personas);
            memberships.push((p, vec![ForumKind::Reddit, ForumKind::DreamMarket]));
        }
        let residents = [
            (
                ForumKind::Reddit,
                cfg.reddit_users
                    .saturating_sub(cfg.cross_reddit_tmg + cfg.cross_reddit_dm),
            ),
            (
                ForumKind::MajesticGarden,
                cfg.tmg_users
                    .saturating_sub(cfg.cross_tmg_dm + cfg.cross_reddit_tmg),
            ),
            (
                ForumKind::DreamMarket,
                cfg.dm_users
                    .saturating_sub(cfg.cross_tmg_dm + cfg.cross_reddit_dm),
            ),
        ];
        for (forum, count) in residents {
            for _ in 0..count {
                let p = new_persona(&mut rng, &mut personas);
                memberships.push((p, vec![forum]));
            }
        }

        let mut reddit = Corpus::new(ForumKind::Reddit.name());
        let mut tmg = Corpus::new(ForumKind::MajesticGarden.name());
        let mut dm = Corpus::new(ForumKind::DreamMarket.name());

        for (pidx, forums) in &memberships {
            let persona = personas[*pidx].clone();
            // Pre-generate alias names so self-references can point at the
            // *other* forum's alias.
            let aliases: Vec<String> = forums
                .iter()
                .map(|_| unique_alias(&mut rng, &mut used_names))
                .collect();
            let self_ref = forums.len() > 1 && rng.random::<f64>() < cfg.alias_ref_rate;
            for (fi, forum) in forums.iter().enumerate() {
                let primary = fi == 0;
                let drift = if primary {
                    0.0
                } else if forum.is_dark() && forums[0].is_dark() {
                    cfg.dark_drift
                } else {
                    cfg.open_drift
                };
                let mut style = persona.style.drifted(&mut rng, drift);
                // Adversarial imitation: dark residents may adopt a
                // lightly-drifted copy of a cross persona's style. The
                // cross TMG↔DM personas occupy indices 0..cross_tmg_dm,
                // so residents (single-forum, planned after them) can
                // never imitate themselves.
                if cfg.imitator_frac > 0.0
                    && cfg.cross_tmg_dm > 0
                    && forums.len() == 1
                    && forum.is_dark()
                    && rng.random::<f64>() < cfg.imitator_frac
                {
                    let target = rng.random_range(0..cfg.cross_tmg_dm);
                    style = personas[target].style.drifted(&mut rng, IMITATION_DRIFT);
                }
                let temporal = persona.temporal.drifted(&mut rng, drift * 0.6);
                // Sparse history: dark residents and secondary cross
                // aliases may drop below the activity floor (few, long
                // posts); primaries stay rich so the known side of a
                // ground-truth pair keeps its profile.
                let sparse = cfg.sparse_frac > 0.0
                    && forum.is_dark()
                    && (forums.len() == 1 || fi > 0)
                    && rng.random::<f64>() < cfg.sparse_frac;
                let posts_range = if sparse {
                    SPARSE_POSTS
                } else {
                    cfg.posts_per_user
                };
                let other_alias = if self_ref && forums.len() > 1 {
                    Some(aliases[1 - fi].as_str())
                } else {
                    None
                };
                let user = self.generate_user(
                    &mut rng,
                    &aliases[fi],
                    &persona,
                    &style,
                    &temporal,
                    *forum,
                    posts_range,
                    sparse,
                    other_alias,
                );
                match forum {
                    ForumKind::Reddit => reddit.users.push(user),
                    ForumKind::MajesticGarden => tmg.users.push(user),
                    ForumKind::DreamMarket => dm.users.push(user),
                }
            }
        }

        // Thin users + noise per forum.
        for (forum, corpus, rich) in [
            (ForumKind::Reddit, &mut reddit, cfg.reddit_users),
            (ForumKind::MajesticGarden, &mut tmg, cfg.tmg_users),
            (ForumKind::DreamMarket, &mut dm, cfg.dm_users),
        ] {
            let thin_count = (rich as f64 * cfg.thin_frac) as usize;
            for _ in 0..thin_count {
                let persona = Persona::sample(&mut rng, next_pid, cfg.style_strength);
                next_pid += 1;
                let alias = unique_alias(&mut rng, &mut used_names);
                let user = self.generate_user(
                    &mut rng,
                    &alias,
                    &persona,
                    &persona.style.clone(),
                    &persona.temporal.clone(),
                    forum,
                    cfg.thin_posts,
                    false,
                    None,
                );
                corpus.users.push(user);
            }
            let noise_temporal = TemporalGenome::sample(&mut rng);
            let n_bots = (rich as f64 * cfg.noise.bot_frac).ceil() as usize;
            let n_spam = (rich as f64 * cfg.noise.spam_frac).ceil() as usize;
            let n_foreign = (rich as f64 * cfg.noise.foreign_frac).ceil() as usize;
            for _ in 0..n_bots {
                let posts = rng.random_range(10..60);
                corpus
                    .users
                    .push(bot_user(&mut rng, &noise_temporal, posts));
            }
            for _ in 0..n_spam {
                let posts = rng.random_range(10..40);
                corpus
                    .users
                    .push(spam_user(&mut rng, &noise_temporal, posts));
            }
            for i in 0..n_foreign {
                let lang = [
                    ForeignLang::Spanish,
                    ForeignLang::German,
                    ForeignLang::French,
                ][i % 3];
                let posts = rng.random_range(10..50);
                corpus
                    .users
                    .push(foreign_user(&mut rng, &noise_temporal, lang, posts));
            }
        }

        Scenario {
            reddit,
            tmg,
            dm,
            personas,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn generate_user(
        &self,
        rng: &mut StdRng,
        alias: &str,
        persona: &Persona,
        style: &StyleGenome,
        temporal: &TemporalGenome,
        forum: ForumKind,
        posts_range: (usize, usize),
        sparse: bool,
        other_alias: Option<&str>,
    ) -> User {
        let cfg = &self.config;
        let mut user = User::new(alias, Some(persona.id));
        let n_posts = rng.random_range(posts_range.0..=posts_range.1.max(posts_range.0 + 1));
        let timestamps = temporal.sample_timestamps(rng, n_posts);
        // Style evolution: the (sorted) timeline is cut into epochs and
        // the genome drifts at each boundary. The single-epoch path calls
        // no extra RNG, so pre-matrix configs stay byte-identical.
        let epoch_styles: Vec<StyleGenome> = if cfg.style_epochs > 1 && cfg.epoch_drift > 0.0 {
            let mut styles = Vec::with_capacity(cfg.style_epochs);
            styles.push(style.clone());
            for _ in 1..cfg.style_epochs {
                let evolved = styles
                    .last()
                    .expect("epoch style list is never empty")
                    .drifted(rng, cfg.epoch_drift);
                styles.push(evolved);
            }
            styles
        } else {
            vec![style.clone()]
        };
        // Which facts this alias will leak.
        let leaked = persona.facts_for_alias(rng, cfg.leak_fraction, other_alias);
        let n_stamps = timestamps.len();
        for (i, ts) in timestamps.into_iter().enumerate() {
            let style = &epoch_styles[(i * epoch_styles.len()) / n_stamps.max(1)];
            let topic = self.pick_topic(rng, style, forum);
            let (topic_idx, community) = topic;
            let mut text = if sparse {
                // Sparse aliases compensate with long posts: above the
                // word floor, below the activity floor.
                generate_long_message(rng, style, topic_idx, SPARSE_MIN_WORDS)
            } else if forum == ForumKind::MajesticGarden {
                generate_long_message(rng, style, topic_idx, forum.min_words())
            } else {
                let m = generate_message(rng, style, topic_idx);
                if darklight_text::token::word_count(&m) < forum.min_words()
                    && rng.random::<f64>() < 0.7
                {
                    generate_long_message(rng, style, topic_idx, forum.min_words())
                } else {
                    m
                }
            };
            text = pollute(rng, &text, cfg.noise.artifact_rate);
            if cfg.code_switch_rate > 0.0 && rng.random::<f64>() < cfg.code_switch_rate {
                let lang = [
                    ForeignLang::Spanish,
                    ForeignLang::German,
                    ForeignLang::French,
                ][rng.random_range(0..3)];
                let phrases = lang.phrases();
                text.push(' ');
                text.push_str(phrases[rng.random_range(0..phrases.len())]);
            }
            user.posts.push(Post::with_topic(text, ts, community));
        }
        // Guarantee each leaked fact appears in at least one post.
        if !user.posts.is_empty() {
            for fact in &leaked {
                let sentence = leak_sentence(rng, fact);
                let idx = rng.random_range(0..user.posts.len());
                user.posts[idx].text.push(' ');
                user.posts[idx].text.push_str(&sentence);
                // Strong facts sometimes repeat (vendors brand themselves).
                if fact.kind.is_strong() && rng.random::<f64>() < 0.5 {
                    let idx2 = rng.random_range(0..user.posts.len());
                    let s2 = leak_sentence(rng, fact);
                    user.posts[idx2].text.push(' ');
                    user.posts[idx2].text.push_str(&s2);
                }
            }
            user.facts = leaked;
        }
        crosspost(rng, &mut user, cfg.noise.crosspost_frac);
        user
    }

    /// Picks a topic and community for one post: on dark forums drugs
    /// dominate (90%); on Reddit the author's own topic mixture rules.
    fn pick_topic(
        &self,
        rng: &mut StdRng,
        style: &StyleGenome,
        forum: ForumKind,
    ) -> (usize, String) {
        let topic_idx = if forum.is_dark() && rng.random::<f64>() < 0.9 {
            DRUGS_TOPIC
        } else {
            weighted_index(rng, &style.topic_weights)
        };
        let communities: &[&str] = match forum {
            ForumKind::Reddit => TOPICS[topic_idx].communities,
            ForumKind::MajesticGarden => &[
                "vendor-threads",
                "trip-reports",
                "cultivation",
                "harm-reduction",
                "spirituality",
            ],
            ForumKind::DreamMarket => &[
                "product-reviews",
                "marketplace",
                "advertising",
                "scam-reports",
            ],
        };
        (
            topic_idx,
            communities[rng.random_range(0..communities.len())].to_string(),
        )
    }
}

fn unique_alias(rng: &mut StdRng, used: &mut HashSet<String>) -> String {
    loop {
        let name = alias_name(rng);
        if is_bot_safe(&name) && used.insert(name.clone()) {
            return name;
        }
    }
}

/// Persona aliases must not collide with the bot-name rule.
fn is_bot_safe(name: &str) -> bool {
    let lower = name.to_lowercase();
    !lower.starts_with("bot") && !lower.ends_with("bot")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Scenario {
        ScenarioBuilder::new(ScenarioConfig::small()).build()
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.reddit, b.reddit);
        assert_eq!(a.tmg, b.tmg);
        assert_eq!(a.dm, b.dm);
    }

    #[test]
    fn forum_sizes_plausible() {
        let s = small();
        let cfg = ScenarioConfig::small();
        // rich + thin + noise.
        assert!(s.reddit.len() > cfg.reddit_users);
        assert!(s.tmg.len() > cfg.tmg_users);
        assert!(s.dm.len() > cfg.dm_users);
    }

    #[test]
    fn cross_pairs_exist() {
        let s = small();
        let cfg = ScenarioConfig::small();
        let tmg_dm = s.true_pairs(&s.tmg, &s.dm);
        assert_eq!(tmg_dm.len(), cfg.cross_tmg_dm);
        let reddit_tmg = s.true_pairs(&s.reddit, &s.tmg);
        assert_eq!(reddit_tmg.len(), cfg.cross_reddit_tmg);
        let reddit_dm = s.true_pairs(&s.reddit, &s.dm);
        assert_eq!(reddit_dm.len(), cfg.cross_reddit_dm);
    }

    #[test]
    fn aliases_unique_within_world() {
        let s = small();
        let mut seen = HashSet::new();
        for c in [&s.reddit, &s.tmg, &s.dm] {
            for u in &c.users {
                // Bot names may repeat in principle; persona aliases must not.
                if u.persona.is_some() {
                    assert!(seen.insert(u.alias.clone()), "dup alias {}", u.alias);
                }
            }
        }
    }

    #[test]
    fn rich_users_have_enough_data() {
        let s = small();
        // At least half the TMG persona users should pass refinement-level
        // thresholds before polishing (polishing trims a bit more).
        let rich = s
            .tmg
            .users
            .iter()
            .filter(|u| u.persona.is_some() && u.posts.len() >= 60)
            .filter(|u| u.total_words() > 3_000)
            .count();
        assert!(
            rich >= ScenarioConfig::small().tmg_users / 2,
            "rich = {rich}"
        );
    }

    #[test]
    fn noise_accounts_present() {
        let s = small();
        let bots = s
            .reddit
            .users
            .iter()
            .filter(|u| darklight_corpus::polish::Polisher::is_bot_name(&u.alias))
            .count();
        assert!(bots > 0);
        let noise = s
            .reddit
            .users
            .iter()
            .filter(|u| u.persona.is_none())
            .count();
        assert!(noise > bots);
    }

    #[test]
    fn leaked_facts_appear_in_text() {
        let s = small();
        for u in s.tmg.users.iter().filter(|u| !u.facts.is_empty()).take(10) {
            let text = u.full_text();
            for f in &u.facts {
                assert!(
                    text.contains(f.value.as_str()),
                    "alias {} fact {:?} not in text",
                    u.alias,
                    f.value
                );
            }
        }
    }

    #[test]
    fn some_cross_personas_self_reference() {
        let s = small();
        let refs = s
            .tmg
            .users
            .iter()
            .chain(&s.dm.users)
            .chain(&s.reddit.users)
            .filter(|u| {
                u.facts
                    .iter()
                    .any(|f| f.kind == darklight_corpus::model::FactKind::AliasRef)
            })
            .count();
        assert!(refs > 0);
    }

    #[test]
    fn dark_forums_are_drug_centric() {
        let s = small();
        let drug_posts =
            s.dm.users
                .iter()
                .flat_map(|u| &u.posts)
                .filter(|p| !p.topic.is_empty())
                .count();
        assert!(drug_posts > 0);
        // Reddit posts span multiple communities.
        let communities: HashSet<&str> = s
            .reddit
            .users
            .iter()
            .flat_map(|u| &u.posts)
            .map(|p| p.topic.as_str())
            .collect();
        assert!(
            communities.len() > 10,
            "only {} communities",
            communities.len()
        );
    }
}
