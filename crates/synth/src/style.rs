//! Author style genomes.
//!
//! A [`StyleGenome`] is everything persistent about how one person writes:
//! favourite content words, preferred sentence templates, which spelling
//! variant they use for each variant group (`though` vs `tho`), punctuation
//! and casing habits, typo/slang/emoji rates, and message-length
//! disposition, plus their topic mixture. The same genome drives all the
//! person's aliases; crossing a domain boundary applies bounded *drift*
//! ([`StyleGenome::drifted`]) — the paper's observation that "people might
//! behave differently and use different writing styles when in the standard
//! Web".

use crate::lexicon::{ADJS, ADVS, NOUNS, SLANG, TOPICS, VARIANT_GROUPS, VERBS};
use rand::Rng;

/// How a sentence ends; authors weight these differently.
pub const TERMINALS: [&str; 5] = [".", "!", "!!", "...", ""];

/// Punctuation and casing habits.
#[derive(Debug, Clone, PartialEq)]
pub struct PunctHabits {
    /// Weights over [`TERMINALS`].
    pub terminal_weights: [f64; 5],
    /// Probability of inserting a comma at an eligible position.
    pub comma_rate: f64,
    /// Probability the author writes `i` lowercase.
    pub lowercase_i: bool,
    /// Probability the author capitalizes sentence starts.
    pub sentence_case: bool,
}

/// A persistent per-author writing style.
#[derive(Debug, Clone, PartialEq)]
pub struct StyleGenome {
    /// Indices of favourite words per class (noun, verb, adj, adv).
    pub fav_nouns: Vec<u16>,
    /// Favourite verbs.
    pub fav_verbs: Vec<u16>,
    /// Favourite adjectives.
    pub fav_adjs: Vec<u16>,
    /// Favourite adverbs.
    pub fav_advs: Vec<u16>,
    /// Probability a content slot draws from the favourites instead of the
    /// global stock — the main stylometric signal dial.
    pub favorite_bias: f64,
    /// Chosen variant per [`VARIANT_GROUPS`] entry.
    pub variant_choice: Vec<u8>,
    /// Probability an occurrence actually uses the chosen variant (people
    /// are not perfectly consistent spellers).
    pub variant_consistency: f64,
    /// Unnormalized weights over the sentence templates.
    pub template_weights: Vec<f64>,
    /// Punctuation/casing habits.
    pub punct: PunctHabits,
    /// Per-word typo probability.
    pub typo_rate: f64,
    /// Per-sentence slang-token probability.
    pub slang_rate: f64,
    /// Favourite slang tokens (indices into [`SLANG`]).
    pub fav_slang: Vec<u16>,
    /// Per-message emoji probability (before polishing strips them).
    pub emoji_rate: f64,
    /// Mean sentences per message (log-space mean).
    pub sentences_mu: f64,
    /// Log-space standard deviation of sentences per message.
    pub sentences_sigma: f64,
    /// Unnormalized weights over the 13 topics of Table I.
    pub topic_weights: Vec<f64>,
}

fn pick_distinct(rng: &mut impl Rng, n: usize, limit: usize) -> Vec<u16> {
    let n = n.min(limit);
    let mut chosen = std::collections::HashSet::new();
    while chosen.len() < n {
        chosen.insert(rng.random_range(0..limit) as u16);
    }
    let mut v: Vec<u16> = chosen.into_iter().collect();
    v.sort_unstable();
    v
}

/// Samples a log-normal-ish positive value via `exp(mu + sigma * z)`.
pub(crate) fn log_normal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * gaussian(rng)).exp()
}

/// Standard normal via Box–Muller.
pub(crate) fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl StyleGenome {
    /// Samples a fresh genome. `strength` in `(0, 2]` scales how
    /// identifying the style is: 1.0 is the calibrated default; lower
    /// values make authors blend together (harder attribution), higher
    /// values separate them.
    pub fn sample(rng: &mut impl Rng, strength: f64) -> StyleGenome {
        let strength = strength.clamp(0.05, 2.0);
        let n_fav = |base: usize| ((base as f64) * (0.5 + strength)) as usize;
        let template_count = crate::textgen::TEMPLATES.len();
        // Template preferences: log-normal weights concentrate each author
        // on a handful of constructions.
        let template_weights: Vec<f64> = (0..template_count)
            .map(|_| log_normal(rng, 0.0, 0.45 * strength))
            .collect();
        let mut terminal_weights = [0.0; 5];
        for w in &mut terminal_weights {
            *w = log_normal(rng, 0.0, 0.6);
        }
        // Topic mixture: everyone in these datasets touches drugs (they
        // are DarkNetMarkets users); 2–4 side interests.
        let mut topic_weights = vec![0.0; TOPICS.len()];
        topic_weights[crate::lexicon::DRUGS_TOPIC] = 1.0 + rng.random::<f64>() * 3.0;
        let side_interests = rng.random_range(2..=4);
        for _ in 0..side_interests {
            let t = rng.random_range(0..TOPICS.len());
            topic_weights[t] += 0.3 + rng.random::<f64>() * 1.5;
        }
        StyleGenome {
            fav_nouns: pick_distinct(rng, n_fav(28), NOUNS.len()),
            fav_verbs: pick_distinct(rng, n_fav(20), VERBS.len()),
            fav_adjs: pick_distinct(rng, n_fav(16), ADJS.len()),
            fav_advs: pick_distinct(rng, n_fav(8), ADVS.len()),
            favorite_bias: (0.14 * strength).min(0.8),
            variant_choice: VARIANT_GROUPS
                .iter()
                .map(|g| rng.random_range(0..g.len()) as u8)
                .collect(),
            variant_consistency: 0.5 + rng.random::<f64>() * 0.35,
            template_weights,
            punct: PunctHabits {
                terminal_weights,
                comma_rate: rng.random::<f64>() * 0.6,
                lowercase_i: rng.random::<f64>() < 0.55,
                sentence_case: rng.random::<f64>() < 0.45,
            },
            typo_rate: rng.random::<f64>() * 0.015,
            slang_rate: rng.random::<f64>() * 0.22,
            fav_slang: pick_distinct(rng, 6, SLANG.len()),
            emoji_rate: rng.random::<f64>() * 0.15,
            sentences_mu: 0.9 + rng.random::<f64>() * 0.8,
            sentences_sigma: 0.3 + rng.random::<f64>() * 0.3,
            topic_weights,
        }
    }

    /// Applies bounded drift for a different domain: habits wobble, some
    /// favourites churn, but the core of the style persists. `drift` = 0
    /// returns a clone; `drift` = 1 is a heavily changed (but still
    /// correlated) style.
    pub fn drifted(&self, rng: &mut impl Rng, drift: f64) -> StyleGenome {
        let drift = drift.clamp(0.0, 1.0);
        if drift == 0.0 {
            // The jitter floors below (e.g. `emoji_rate.max(0.005)`) exist
            // so multiplicative noise can escape near-zero habits, but
            // they would also raise sub-floor values when there is no
            // noise at all — zero drift must be exactly the identity.
            return self.clone();
        }
        let mut out = self.clone();
        // Replace a drift-proportional fraction of favourites.
        churn(rng, &mut out.fav_nouns, NOUNS.len(), drift);
        churn(rng, &mut out.fav_verbs, VERBS.len(), drift);
        churn(rng, &mut out.fav_adjs, ADJS.len(), drift);
        churn(rng, &mut out.fav_advs, ADVS.len(), drift);
        // Flip some variant choices.
        for (choice, group) in out.variant_choice.iter_mut().zip(VARIANT_GROUPS) {
            if rng.random::<f64>() < drift * 0.25 {
                *choice = rng.random_range(0..group.len()) as u8;
            }
        }
        // Jitter continuous habits multiplicatively.
        for w in &mut out.template_weights {
            *w = jitter(rng, *w, drift, 1e-3, 1e3);
        }
        for w in &mut out.punct.terminal_weights {
            *w = jitter(rng, *w, drift, 1e-3, 1e3);
        }
        out.punct.comma_rate = jitter(rng, self.punct.comma_rate.max(0.02), drift, 0.0, 0.9);
        out.typo_rate = jitter(rng, self.typo_rate.max(0.002), drift, 0.0, 0.1);
        out.slang_rate = jitter(rng, self.slang_rate.max(0.01), drift, 0.0, 0.6);
        out.emoji_rate = jitter(rng, self.emoji_rate.max(0.005), drift, 0.0, 0.4);
        out.favorite_bias = jitter(rng, self.favorite_bias, drift, 0.05, 0.85);
        out.variant_consistency = jitter(rng, self.variant_consistency, drift, 0.3, 0.95);
        if rng.random::<f64>() < drift * 0.2 {
            out.punct.lowercase_i = !out.punct.lowercase_i;
        }
        if rng.random::<f64>() < drift * 0.2 {
            out.punct.sentence_case = !out.punct.sentence_case;
        }
        // Topic interests shift more readily than style.
        for w in &mut out.topic_weights {
            if *w > 0.0 {
                *w = jitter(rng, *w, drift, 0.0, 10.0);
            } else if rng.random::<f64>() < drift * 0.3 {
                *w = rng.random::<f64>();
            }
        }
        out
    }

    /// Samples a number of sentences for one message.
    pub fn sample_sentence_count(&self, rng: &mut impl Rng) -> usize {
        (log_normal(rng, self.sentences_mu, self.sentences_sigma).round() as usize).clamp(1, 30)
    }
}

/// Replaces each favourite with probability `drift * 0.35`.
fn churn(rng: &mut impl Rng, favs: &mut Vec<u16>, limit: usize, drift: f64) {
    for slot in favs.iter_mut() {
        if rng.random::<f64>() < drift * 0.35 {
            *slot = rng.random_range(0..limit) as u16;
        }
    }
    favs.sort_unstable();
    favs.dedup();
}

/// Multiplies `v` by a drift-scaled log-normal factor, clamped.
fn jitter(rng: &mut impl Rng, v: f64, drift: f64, floor: f64, cap: f64) -> f64 {
    (v * log_normal(rng, 0.0, 0.4 * drift)).clamp(floor, cap)
}

/// Weighted index sampling over an unnormalized weight slice.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to zero.
pub fn weighted_index(rng: &mut impl Rng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weighted_index needs positive total weight");
    let mut x = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn sample_is_deterministic_per_seed() {
        let a = StyleGenome::sample(&mut rng(7), 1.0);
        let b = StyleGenome::sample(&mut rng(7), 1.0);
        assert_eq!(a, b);
        let c = StyleGenome::sample(&mut rng(8), 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn genome_fields_in_range() {
        for seed in 0..20 {
            let g = StyleGenome::sample(&mut rng(seed), 1.0);
            assert!(!g.fav_nouns.is_empty());
            assert!((0.0..=0.85).contains(&g.favorite_bias));
            assert_eq!(g.variant_choice.len(), VARIANT_GROUPS.len());
            for (c, grp) in g.variant_choice.iter().zip(VARIANT_GROUPS) {
                assert!((*c as usize) < grp.len());
            }
            assert!(g.topic_weights[crate::lexicon::DRUGS_TOPIC] > 0.0);
            assert!(g.typo_rate <= 0.05);
        }
    }

    #[test]
    fn zero_drift_is_identity() {
        let g = StyleGenome::sample(&mut rng(3), 1.0);
        let d = g.drifted(&mut rng(4), 0.0);
        assert_eq!(g, d);
    }

    #[test]
    fn drift_changes_but_preserves_most_favorites() {
        let g = StyleGenome::sample(&mut rng(5), 1.0);
        let d = g.drifted(&mut rng(6), 0.5);
        assert_ne!(g, d);
        let overlap = g
            .fav_nouns
            .iter()
            .filter(|n| d.fav_nouns.contains(n))
            .count();
        assert!(overlap as f64 >= 0.5 * g.fav_nouns.len() as f64);
    }

    #[test]
    fn strength_scales_favorites() {
        let weak = StyleGenome::sample(&mut rng(9), 0.3);
        let strong = StyleGenome::sample(&mut rng(9), 1.8);
        assert!(strong.fav_nouns.len() > weak.fav_nouns.len());
        assert!(strong.favorite_bias > weak.favorite_bias);
    }

    #[test]
    fn sentence_counts_positive_and_bounded() {
        let g = StyleGenome::sample(&mut rng(11), 1.0);
        let mut r = rng(12);
        for _ in 0..200 {
            let n = g.sample_sentence_count(&mut r);
            assert!((1..=30).contains(&n));
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng(13);
        let weights = [0.0, 10.0, 0.0];
        for _ in 0..50 {
            assert_eq!(weighted_index(&mut r, &weights), 1);
        }
        let mut counts = [0usize; 2];
        for _ in 0..2000 {
            counts[weighted_index(&mut r, &[1.0, 3.0])] += 1;
        }
        assert!(counts[1] > counts[0] * 2);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn weighted_index_rejects_zero_total() {
        weighted_index(&mut rng(1), &[0.0, 0.0]);
    }

    #[test]
    fn gaussian_moments_sane() {
        let mut r = rng(17);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
