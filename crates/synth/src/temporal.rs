//! Temporal genomes: when an author posts.
//!
//! Each person has a daily rhythm modelled as a mixture of one to three
//! wrapped Gaussians over the 24-hour day (e.g. a lunch-break peak and an
//! evening peak), anchored to their home timezone. Sampling produces unix
//! timestamps across an active period in 2017, weekdays and weekends alike
//! (the profile builder later discards weekend/holiday posts, as in the
//! paper). The same genome drives all of a person's aliases, which is
//! exactly the signal the daily-activity-profile feature exploits.

use crate::style::gaussian;
use darklight_activity::civil::{CivilDate, SECS_PER_DAY};
use rand::Rng;

/// One activity peak: a wrapped Gaussian over the day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityPeak {
    /// Peak center in local hours `[0, 24)`.
    pub center_hour: f64,
    /// Standard deviation in hours.
    pub std_hours: f64,
    /// Relative weight of this peak.
    pub weight: f64,
}

/// A persistent per-person posting rhythm.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalGenome {
    /// The activity peaks (1–3).
    pub peaks: Vec<ActivityPeak>,
    /// The person's UTC offset in hours (their timezone), applied when
    /// converting local rhythm to UTC timestamps.
    pub utc_offset_hours: i32,
    /// First active day (days from unix epoch).
    pub active_from_day: i64,
    /// Last active day (inclusive).
    pub active_to_day: i64,
}

impl TemporalGenome {
    /// Samples a genome active through 2017 (the paper's data year).
    pub fn sample(rng: &mut impl Rng) -> TemporalGenome {
        let n_peaks = match rng.random_range(0..10) {
            0..=2 => 1,
            3..=7 => 2,
            _ => 3,
        };
        let peaks = (0..n_peaks)
            .map(|_| ActivityPeak {
                center_hour: rng.random::<f64>() * 24.0,
                std_hours: 1.5 + rng.random::<f64>() * 2.8,
                weight: 0.3 + rng.random::<f64>(),
            })
            .collect();
        let jan1 = CivilDate::new(2017, 1, 1)
            .expect("valid date")
            .days_from_epoch();
        let dec31 = CivilDate::new(2017, 12, 31)
            .expect("valid date")
            .days_from_epoch();
        // Active window: at least ~7 months within 2017 so 30+ weekday
        // posts are plausible.
        let start = jan1 + rng.random_range(0..60);
        let end = dec31 - rng.random_range(0..60);
        TemporalGenome {
            peaks,
            utc_offset_hours: rng.random_range(-8..=9),
            active_from_day: start,
            active_to_day: end.max(start + 30),
        }
    }

    /// A drifted copy for another alias: peaks wobble by up to ±1.5h ×
    /// `drift`, weights jitter, but the rhythm stays recognizably the same
    /// person. The timezone never changes (people rarely move).
    pub fn drifted(&self, rng: &mut impl Rng, drift: f64) -> TemporalGenome {
        let drift = drift.clamp(0.0, 1.0);
        let mut out = self.clone();
        for p in &mut out.peaks {
            p.center_hour = (p.center_hour + gaussian(rng) * 1.5 * drift).rem_euclid(24.0);
            p.std_hours = (p.std_hours * (1.0 + gaussian(rng) * 0.3 * drift)).clamp(0.5, 5.0);
            p.weight = (p.weight * (1.0 + gaussian(rng) * 0.3 * drift)).clamp(0.05, 3.0);
        }
        out
    }

    /// Samples one posting timestamp (unix seconds, UTC).
    pub fn sample_timestamp(&self, rng: &mut impl Rng) -> i64 {
        let day = rng.random_range(self.active_from_day..=self.active_to_day);
        let total_w: f64 = self.peaks.iter().map(|p| p.weight).sum();
        let mut x = rng.random::<f64>() * total_w;
        let mut chosen = &self.peaks[0];
        for p in &self.peaks {
            x -= p.weight;
            if x <= 0.0 {
                chosen = p;
                break;
            }
        }
        let local_hour = (chosen.center_hour + gaussian(rng) * chosen.std_hours).rem_euclid(24.0);
        let utc_hour_frac = local_hour - self.utc_offset_hours as f64;
        let secs = (utc_hour_frac * 3600.0).round() as i64;
        day * SECS_PER_DAY + secs.rem_euclid(SECS_PER_DAY) + rng.random_range(0..60)
        // second-level noise
    }

    /// Samples `n` timestamps, sorted ascending.
    pub fn sample_timestamps(&self, rng: &mut impl Rng, n: usize) -> Vec<i64> {
        let mut ts: Vec<i64> = (0..n).map(|_| self.sample_timestamp(rng)).collect();
        ts.sort_unstable();
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darklight_activity::civil::CivilDateTime;
    use darklight_activity::profile::{ProfileBuilder, ProfilePolicy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn sample_deterministic() {
        let a = TemporalGenome::sample(&mut rng(1));
        let b = TemporalGenome::sample(&mut rng(1));
        assert_eq!(a, b);
    }

    #[test]
    fn timestamps_within_active_window_year() {
        let g = TemporalGenome::sample(&mut rng(2));
        let mut r = rng(3);
        for _ in 0..300 {
            let ts = g.sample_timestamp(&mut r);
            let dt = CivilDateTime::from_unix(ts);
            // Offset wrap can spill one day over the window edges.
            assert!((2016..=2018).contains(&dt.date().year()));
        }
    }

    #[test]
    fn profiles_of_same_genome_are_similar() {
        let g = TemporalGenome::sample(&mut rng(4));
        let mut r = rng(5);
        let builder = ProfileBuilder::new(ProfilePolicy::default().with_min_timestamps(5));
        let p1 = builder.build(&g.sample_timestamps(&mut r, 300)).unwrap();
        let p2 = builder.build(&g.sample_timestamps(&mut r, 300)).unwrap();
        assert!(p1.cosine(&p2) > 0.8, "cosine {}", p1.cosine(&p2));
    }

    #[test]
    fn different_genomes_usually_differ() {
        // Average cross-similarity should be clearly below self-similarity.
        let mut r = rng(6);
        let builder = ProfileBuilder::new(ProfilePolicy::default().with_min_timestamps(5));
        let mut self_sims = Vec::new();
        let mut cross_sims = Vec::new();
        let genomes: Vec<TemporalGenome> = (0..8).map(|_| TemporalGenome::sample(&mut r)).collect();
        let profiles: Vec<_> = genomes
            .iter()
            .map(|g| {
                (
                    builder.build(&g.sample_timestamps(&mut r, 200)).unwrap(),
                    builder.build(&g.sample_timestamps(&mut r, 200)).unwrap(),
                )
            })
            .collect();
        for (i, (a1, a2)) in profiles.iter().enumerate() {
            self_sims.push(a1.cosine(a2));
            for (b1, _) in profiles.iter().skip(i + 1) {
                cross_sims.push(a1.cosine(b1));
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&self_sims) > avg(&cross_sims) + 0.15,
            "self {} cross {}",
            avg(&self_sims),
            avg(&cross_sims)
        );
    }

    #[test]
    fn drift_zero_keeps_genome() {
        let g = TemporalGenome::sample(&mut rng(7));
        assert_eq!(g.drifted(&mut rng(8), 0.0), g);
    }

    #[test]
    fn drifted_profiles_still_match() {
        let g = TemporalGenome::sample(&mut rng(9));
        let d = g.drifted(&mut rng(10), 0.5);
        assert_eq!(d.utc_offset_hours, g.utc_offset_hours);
        let mut r = rng(11);
        let builder = ProfileBuilder::new(ProfilePolicy::default().with_min_timestamps(5));
        let p1 = builder.build(&g.sample_timestamps(&mut r, 300)).unwrap();
        let p2 = builder.build(&d.sample_timestamps(&mut r, 300)).unwrap();
        assert!(p1.cosine(&p2) > 0.5, "cosine {}", p1.cosine(&p2));
    }

    #[test]
    fn sorted_timestamps() {
        let g = TemporalGenome::sample(&mut rng(12));
        let ts = g.sample_timestamps(&mut rng(13), 100);
        for w in ts.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(ts.len(), 100);
    }
}
