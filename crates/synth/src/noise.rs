//! Noise generation: the dirty part of real forum data.
//!
//! The polishing pipeline (§III-C) exists because scraped forums contain
//! bot accounts, repetitive spam, crossposts, quotes, PGP armor, e-mail
//! addresses, and non-English chatter. This module generates all of it so
//! polishing has real work to do — and so tests can verify each step
//! removes exactly what it should.

use crate::persona::alias_name;
use crate::temporal::TemporalGenome;
use darklight_corpus::model::{Post, User};
use rand::Rng;

/// Natural phrase stock per non-English language, sampled into messages
/// that the language detector should reject.
pub const SPANISH_PHRASES: &[&str] = &[
    "no estoy seguro de lo que quieres decir con eso",
    "la semana pasada compré algo parecido y llegó muy rápido",
    "alguien sabe si el mercado sigue funcionando hoy",
    "me parece que los precios están subiendo demasiado",
    "gracias por la información, me ha servido mucho",
    "el envío tardó casi dos semanas pero llegó bien",
    "no encuentro ninguna solución para este problema",
    "creo que deberías esperar un poco antes de pedir",
];

/// German phrases.
pub const GERMAN_PHRASES: &[&str] = &[
    "ich habe gestern etwas ähnliches bestellt und es kam schnell an",
    "weiß jemand ob der markt heute wieder funktioniert",
    "die preise sind in letzter zeit wirklich gestiegen",
    "danke für die information, das hat mir sehr geholfen",
    "der versand hat fast zwei wochen gedauert aber alles war gut",
    "ich finde keine lösung für dieses problem",
    "man sollte vielleicht noch etwas warten bevor man bestellt",
    "das wetter ist heute wieder ziemlich schlecht hier",
];

/// French phrases.
pub const FRENCH_PHRASES: &[&str] = &[
    "je ne suis pas sûr de ce que tu veux dire par là",
    "la semaine dernière j'ai commandé quelque chose de similaire",
    "quelqu'un sait si le marché fonctionne encore aujourd'hui",
    "les prix ont vraiment augmenté ces derniers temps",
    "merci pour l'information, cela m'a beaucoup aidé",
    "la livraison a pris presque deux semaines mais tout va bien",
    "je ne trouve aucune solution à ce problème",
    "il faudrait peut-être attendre un peu avant de commander",
];

/// Languages available for foreign-user generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForeignLang {
    /// Spanish.
    Spanish,
    /// German.
    German,
    /// French.
    French,
}

impl ForeignLang {
    /// The phrase stock for this language.
    pub fn phrases(self) -> &'static [&'static str] {
        match self {
            ForeignLang::Spanish => SPANISH_PHRASES,
            ForeignLang::German => GERMAN_PHRASES,
            ForeignLang::French => FRENCH_PHRASES,
        }
    }
}

/// Generates a bot account: `bot`-marked alias, templated repetitive posts.
pub fn bot_user(rng: &mut impl Rng, temporal: &TemporalGenome, posts: usize) -> User {
    let alias = if rng.random::<f64>() < 0.5 {
        format!("bot{}", alias_name(rng))
    } else {
        format!("{}bot", alias_name(rng))
    };
    let mut user = User::new(alias, None);
    let service = ["tip", "mirror", "archive", "remind", "translate"][rng.random_range(0..5)];
    for i in 0..posts {
        let text = format!(
            "beep boop i am a {service} bot. this action was performed automatically. \
             request id {i}. contact the operators if you have questions about this service."
        );
        user.posts
            .push(Post::new(text, temporal.sample_timestamp(rng)));
    }
    user
}

/// Generates a spammer: normal-looking alias, low-diversity repeated
/// pitches that the diversity-ratio filter (step 6) should drop.
pub fn spam_user(rng: &mut impl Rng, temporal: &TemporalGenome, posts: usize) -> User {
    let mut user = User::new(alias_name(rng), None);
    let pitch = [
        "best deals best deals best deals",
        "buy now buy now buy now buy now",
        "cheap cheap cheap quality quality quality",
    ][rng.random_range(0..3)];
    for _ in 0..posts {
        let reps = rng.random_range(3..6);
        let text = std::iter::repeat_n(pitch, reps)
            .collect::<Vec<_>>()
            .join(" ");
        user.posts
            .push(Post::new(text, temporal.sample_timestamp(rng)));
    }
    user
}

/// Generates a non-English user whose messages the language filter (step
/// 7) should drop.
pub fn foreign_user(
    rng: &mut impl Rng,
    temporal: &TemporalGenome,
    lang: ForeignLang,
    posts: usize,
) -> User {
    let mut user = User::new(alias_name(rng), None);
    let phrases = lang.phrases();
    for _ in 0..posts {
        let n = rng.random_range(2..5);
        let text: Vec<&str> = (0..n)
            .map(|_| phrases[rng.random_range(0..phrases.len())])
            .collect();
        user.posts
            .push(Post::new(text.join(". "), temporal.sample_timestamp(rng)));
    }
    user
}

/// With probability `rate` each, decorates a clean message with the
/// artifacts the polishing transforms must strip: a quoted line, an e-mail
/// address, a URL, a PGP block, an edit tag.
pub fn pollute(rng: &mut impl Rng, text: &str, rate: f64) -> String {
    let mut out = String::new();
    if rng.random::<f64>() < rate {
        out.push_str("> what the previous poster said about this\n");
    }
    out.push_str(text);
    if rng.random::<f64>() < rate {
        out.push_str(&format!(
            " reach me at {}@{}.com",
            alias_name(rng),
            ["proton", "tuta", "mail"][rng.random_range(0..3)]
        ));
    }
    if rng.random::<f64>() < rate {
        out.push_str(&format!(
            " see https://www.{}.{}/thread/{}",
            ["forum", "pastebin", "imgur"][rng.random_range(0..3)],
            ["com", "org", "onion"][rng.random_range(0..3)],
            rng.random_range(100..99_999)
        ));
    }
    if rng.random::<f64>() < rate {
        out.push_str(&format!("\nEdit by {}: fixed a typo", alias_name(rng)));
    }
    if rng.random::<f64>() < rate * 0.5 {
        out.push_str(
            "\n-----BEGIN PGP PUBLIC KEY BLOCK-----\nmQENBFfakekeymaterial0123456789abcdef\n-----END PGP PUBLIC KEY BLOCK-----",
        );
    }
    out
}

/// Duplicates a random subset of a user's posts (crossposting, step 2's
/// target), appending them with fresh timestamps.
pub fn crosspost(rng: &mut impl Rng, user: &mut User, fraction: f64) {
    let n = ((user.posts.len() as f64) * fraction) as usize;
    for _ in 0..n {
        let idx = rng.random_range(0..user.posts.len());
        let mut dup = user.posts[idx].clone();
        dup.timestamp += rng.random_range(600..86_400);
        user.posts.push(dup);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darklight_corpus::polish::Polisher;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn temporal(seed: u64) -> TemporalGenome {
        TemporalGenome::sample(&mut rng(seed))
    }

    #[test]
    fn bot_users_are_caught_by_polishing() {
        let t = temporal(1);
        let bot = bot_user(&mut rng(2), &t, 20);
        assert!(Polisher::is_bot_name(&bot.alias), "{}", bot.alias);
        assert_eq!(bot.posts.len(), 20);
    }

    #[test]
    fn spam_users_have_low_diversity() {
        let t = temporal(3);
        let spam = spam_user(&mut rng(4), &t, 10);
        for p in &spam.posts {
            assert!(darklight_text::normalize::diversity_ratio(&p.text) < 0.5);
        }
    }

    #[test]
    fn foreign_users_fail_language_filter() {
        let det = darklight_text::langdetect::LanguageDetector::new();
        let t = temporal(5);
        for lang in [
            ForeignLang::Spanish,
            ForeignLang::German,
            ForeignLang::French,
        ] {
            let u = foreign_user(&mut rng(6), &t, lang, 5);
            let non_english = u.posts.iter().filter(|p| !det.is_english(&p.text)).count();
            assert!(
                non_english * 2 > u.posts.len(),
                "{lang:?}: only {non_english}/{} rejected",
                u.posts.len()
            );
        }
    }

    #[test]
    fn pollute_adds_removable_artifacts() {
        let clean = "a perfectly ordinary message with plenty of distinct words inside";
        let dirty = pollute(&mut rng(7), clean, 1.0);
        assert!(dirty.contains('>'));
        assert!(dirty.contains('@'));
        assert!(dirty.contains("https://"));
        assert!(dirty.contains("Edit by"));
        // Polishing transforms recover something containing the original.
        let t = darklight_text::normalize::remove_quotes(&dirty);
        let t = darklight_text::normalize::remove_pgp_blocks(&t);
        let t = darklight_text::normalize::remove_edit_tags(&t);
        assert!(t.contains("ordinary message"));
        assert!(!t.contains("Edit by"));
    }

    #[test]
    fn pollute_rate_zero_is_identity() {
        let clean = "untouched text";
        assert_eq!(pollute(&mut rng(8), clean, 0.0), clean);
    }

    #[test]
    fn crosspost_duplicates() {
        let t = temporal(9);
        let mut u = spam_user(&mut rng(10), &t, 10);
        let before = u.posts.len();
        crosspost(&mut rng(11), &mut u, 0.5);
        assert_eq!(u.posts.len(), before + 5);
    }
}
