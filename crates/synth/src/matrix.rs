//! The scenario-matrix catalog (DESIGN.md §12): named workload scenarios
//! crossed with named scales, each mapping deterministically to a
//! [`ScenarioConfig`].
//!
//! A matrix *cell* is a `(scenario, scale, seed)` triple. The cell's
//! world seed mixes the base seed with the cell id (FNV-1a), so every
//! cell generates a distinct world, yet the same triple always yields
//! byte-identical corpora — the property the committed `BENCH_*.json`
//! baselines and their `--check` regression gate rely on.
//!
//! Matrix worlds are **dark-only** (no Reddit): the benchmark links the
//! refined Dream Market aliases against the refined Majestic Garden
//! aliases, with the TMG↔DM cross personas as ground truth. This keeps a
//! cell's cost proportional to the dark-forum population, which is what
//! the scales dial.

use crate::scenario::ScenarioConfig;
use darklight_corpus::refine::RefineConfig;

/// Base seed of the committed benchmark baselines.
pub const MATRIX_SEED: u64 = 0xD19B_117E;

/// A named workload scenario: which generator dials are turned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Calibrated defaults: static styles, no adversaries, English only.
    Clean,
    /// Large cross-forum drift plus within-author style evolution.
    HighDrift,
    /// Dark residents imitating cross-persona styles (hard negatives).
    AdversarialImitation,
    /// Code-switching authors and a large foreign-account population.
    MixedLanguage,
    /// Many aliases below the 30-usable-timestamp activity floor.
    SparseHistory,
    /// All of the above at moderate strength.
    Mixed,
}

impl ScenarioKind {
    /// Every scenario, in canonical (reporting) order.
    pub const ALL: [ScenarioKind; 6] = [
        ScenarioKind::Clean,
        ScenarioKind::HighDrift,
        ScenarioKind::AdversarialImitation,
        ScenarioKind::MixedLanguage,
        ScenarioKind::SparseHistory,
        ScenarioKind::Mixed,
    ];

    /// Canonical name (used in cell ids and `BENCH_*` file names).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Clean => "clean",
            ScenarioKind::HighDrift => "high-drift",
            ScenarioKind::AdversarialImitation => "adversarial-imitation",
            ScenarioKind::MixedLanguage => "mixed-language",
            ScenarioKind::SparseHistory => "sparse-history",
            ScenarioKind::Mixed => "mixed",
        }
    }

    /// Parses a canonical name.
    pub fn from_name(name: &str) -> Option<ScenarioKind> {
        ScenarioKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// The refinement activity floor for this scenario. Sparse scenarios
    /// drop it to 1 so below-floor authors survive refinement: their
    /// records carry no activity profile (activity scoring skips them)
    /// but they remain rankable by text alone.
    pub fn min_timestamps(self) -> usize {
        match self {
            ScenarioKind::SparseHistory | ScenarioKind::Mixed => 1,
            _ => RefineConfig::default().min_timestamps,
        }
    }

    /// Turns this scenario's dials on a base config.
    fn apply(self, cfg: &mut ScenarioConfig) {
        match self {
            ScenarioKind::Clean => {}
            ScenarioKind::HighDrift => {
                cfg.dark_drift = 0.45;
                cfg.style_epochs = 4;
                cfg.epoch_drift = 0.30;
            }
            ScenarioKind::AdversarialImitation => {
                cfg.imitator_frac = 0.30;
            }
            ScenarioKind::MixedLanguage => {
                cfg.code_switch_rate = 0.12;
                cfg.noise.foreign_frac = 0.30;
            }
            ScenarioKind::SparseHistory => {
                cfg.sparse_frac = 0.35;
            }
            ScenarioKind::Mixed => {
                cfg.dark_drift = 0.30;
                cfg.style_epochs = 3;
                cfg.epoch_drift = 0.20;
                cfg.imitator_frac = 0.15;
                cfg.code_switch_rate = 0.06;
                cfg.sparse_frac = 0.20;
                cfg.noise.foreign_frac = 0.15;
            }
        }
    }
}

/// A named scale: how many dark-forum authors a cell generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatrixScale {
    /// Test scale: seconds per cell; used by the pinned roundtrip tests.
    Tiny,
    /// ≈ 1k authors; the committed-baseline and CI scale.
    Small,
    /// ≈ 10k authors; committed baselines, slower to regenerate.
    Medium,
    /// ≈ 30k authors; opt-in only (`--include-large`).
    Large,
}

impl MatrixScale {
    /// Every scale, smallest first.
    pub const ALL: [MatrixScale; 4] = [
        MatrixScale::Tiny,
        MatrixScale::Small,
        MatrixScale::Medium,
        MatrixScale::Large,
    ];

    /// Canonical name (used in cell ids and `BENCH_*` file names).
    pub fn name(self) -> &'static str {
        match self {
            MatrixScale::Tiny => "t",
            MatrixScale::Small => "s",
            MatrixScale::Medium => "m",
            MatrixScale::Large => "l",
        }
    }

    /// Parses a canonical name.
    pub fn from_name(name: &str) -> Option<MatrixScale> {
        MatrixScale::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Whether this scale requires an explicit opt-in flag.
    pub fn opt_in(self) -> bool {
        matches!(self, MatrixScale::Large)
    }

    /// World shape: (rich TMG aliases, rich DM aliases, TMG↔DM cross
    /// personas, thin users per rich user).
    fn shape(self) -> (usize, usize, usize, f64) {
        match self {
            MatrixScale::Tiny => (16, 12, 6, 0.4),
            MatrixScale::Small => (420, 280, 40, 0.5),
            MatrixScale::Medium => (3_000, 2_000, 120, 1.0),
            MatrixScale::Large => (9_000, 6_000, 360, 1.5),
        }
    }

    /// Posts per rich user: the bigger scales trim the per-author volume
    /// so cell cost grows with the population, not quadratically.
    fn posts_per_user(self) -> (usize, usize) {
        match self {
            MatrixScale::Tiny | MatrixScale::Small => (70, 130),
            MatrixScale::Medium | MatrixScale::Large => (70, 100),
        }
    }

    /// Cap on unknown (DM) aliases entering the timed link, mirroring the
    /// paper's 1,000-alter-ego cap. Always larger than the cross-persona
    /// count, so every ground-truth positive stays in the pool alongside
    /// resident distractors.
    pub fn max_unknowns(self) -> usize {
        match self {
            MatrixScale::Tiny => 24,
            MatrixScale::Small => 150,
            MatrixScale::Medium => 250,
            MatrixScale::Large => 400,
        }
    }

    /// Approximate distinct authors in the generated world (rich + thin +
    /// noise), the number the scale names advertise.
    pub fn approx_authors(self) -> usize {
        let (tmg, dm, cross, thin) = self.shape();
        let rich = tmg + dm - cross;
        let thin_users = ((tmg + dm) as f64 * thin) as usize;
        let noise = ((tmg + dm) as f64 * 0.10) as usize;
        rich + thin_users + noise
    }
}

/// One matrix cell: a scenario at a scale under a base seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellSpec {
    /// The workload scenario.
    pub kind: ScenarioKind,
    /// The world scale.
    pub scale: MatrixScale,
    /// Base seed, mixed with the cell id into the world seed.
    pub seed: u64,
}

impl CellSpec {
    /// A cell under the committed-baseline seed.
    pub fn new(kind: ScenarioKind, scale: MatrixScale) -> CellSpec {
        CellSpec {
            kind,
            scale,
            seed: MATRIX_SEED,
        }
    }

    /// Canonical cell id, e.g. `clean_s`.
    pub fn id(&self) -> String {
        format!("{}_{}", self.kind.name(), self.scale.name())
    }

    /// The committed baseline file name, e.g. `BENCH_clean_s.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.id())
    }

    /// The full generator config for this cell. Dark-only: no Reddit
    /// users and no Reddit cross personas.
    pub fn config(&self) -> ScenarioConfig {
        let (tmg, dm, cross, thin) = self.scale.shape();
        let mut cfg = ScenarioConfig {
            seed: mix_seed(self.seed, &self.id()),
            reddit_users: 0,
            tmg_users: tmg,
            dm_users: dm,
            cross_tmg_dm: cross,
            cross_reddit_tmg: 0,
            cross_reddit_dm: 0,
            thin_frac: thin,
            posts_per_user: self.scale.posts_per_user(),
            ..ScenarioConfig::small()
        };
        self.kind.apply(&mut cfg);
        cfg
    }

    /// The refinement thresholds for this cell (scenario-dependent
    /// activity floor, standard word floor).
    pub fn refine_config(&self) -> RefineConfig {
        RefineConfig {
            min_timestamps: self.kind.min_timestamps(),
            ..RefineConfig::default()
        }
    }
}

/// The cross product of the requested scenarios and scales.
pub fn cells_for(kinds: &[ScenarioKind], scales: &[MatrixScale], seed: u64) -> Vec<CellSpec> {
    let mut out = Vec::with_capacity(kinds.len() * scales.len());
    for &scale in scales {
        for &kind in kinds {
            out.push(CellSpec { kind, scale, seed });
        }
    }
    out
}

/// FNV-1a over the cell id, xor-folded with the base seed: cheap,
/// stable, and collision-free over the small id namespace.
fn mix_seed(seed: u64, id: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in id.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^ seed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for kind in ScenarioKind::ALL {
            assert_eq!(ScenarioKind::from_name(kind.name()), Some(kind));
        }
        for scale in MatrixScale::ALL {
            assert_eq!(MatrixScale::from_name(scale.name()), Some(scale));
        }
        assert_eq!(ScenarioKind::from_name("bogus"), None);
        assert_eq!(MatrixScale::from_name("xl"), None);
    }

    #[test]
    fn cell_seeds_differ_per_cell_and_per_base_seed() {
        let a = CellSpec::new(ScenarioKind::Clean, MatrixScale::Tiny);
        let b = CellSpec::new(ScenarioKind::HighDrift, MatrixScale::Tiny);
        let c = CellSpec::new(ScenarioKind::Clean, MatrixScale::Small);
        assert_ne!(a.config().seed, b.config().seed);
        assert_ne!(a.config().seed, c.config().seed);
        let perturbed = CellSpec {
            seed: MATRIX_SEED + 1,
            ..a
        };
        assert_ne!(a.config().seed, perturbed.config().seed);
    }

    #[test]
    fn configs_are_dark_only_and_scenario_dialed() {
        for kind in ScenarioKind::ALL {
            let cfg = CellSpec::new(kind, MatrixScale::Tiny).config();
            assert_eq!(cfg.reddit_users, 0);
            assert_eq!(cfg.cross_reddit_tmg, 0);
            assert_eq!(cfg.cross_reddit_dm, 0);
            if kind != ScenarioKind::Clean {
                assert_ne!(
                    cfg,
                    CellSpec::new(ScenarioKind::Clean, MatrixScale::Tiny).config(),
                    "{} must differ from clean",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn unknown_cap_covers_every_positive() {
        for scale in MatrixScale::ALL {
            let (_, _, cross, _) = scale.shape();
            assert!(scale.max_unknowns() > cross, "{}", scale.name());
        }
    }

    #[test]
    fn scale_author_counts_match_names() {
        let s = MatrixScale::Small.approx_authors();
        assert!((700..=1_500).contains(&s), "s = {s}");
        let m = MatrixScale::Medium.approx_authors();
        assert!((8_000..=12_000).contains(&m), "m = {m}");
    }
}
