//! The embedded English lexicon the generator draws from.
//!
//! All content words are real English (so the language detector, the
//! lemmatizer, and the char-n-gram statistics behave as they would on real
//! forum text). Words are tagged by part of speech; verbs and nouns are
//! inflected with rules that the `darklight-text` lemmatizer inverts, so
//! lemmatization genuinely merges the forms the generator emits.

/// General-purpose nouns.
pub const NOUNS: &[&str] = &[
    "time",
    "year",
    "way",
    "day",
    "thing",
    "world",
    "life",
    "hand",
    "part",
    "place",
    "week",
    "case",
    "point",
    "number",
    "group",
    "problem",
    "fact",
    "house",
    "room",
    "area",
    "money",
    "story",
    "month",
    "book",
    "eye",
    "job",
    "word",
    "business",
    "issue",
    "side",
    "kind",
    "head",
    "service",
    "friend",
    "power",
    "hour",
    "game",
    "line",
    "end",
    "member",
    "law",
    "car",
    "city",
    "community",
    "name",
    "president",
    "team",
    "minute",
    "idea",
    "body",
    "information",
    "parent",
    "face",
    "level",
    "office",
    "door",
    "health",
    "person",
    "art",
    "war",
    "history",
    "party",
    "result",
    "change",
    "morning",
    "reason",
    "research",
    "moment",
    "air",
    "teacher",
    "force",
    "education",
    "foot",
    "boy",
    "age",
    "policy",
    "process",
    "music",
    "market",
    "sense",
    "nation",
    "plan",
    "college",
    "interest",
    "death",
    "experience",
    "effect",
    "use",
    "class",
    "control",
    "care",
    "field",
    "development",
    "role",
    "effort",
    "rate",
    "heart",
    "drug",
    "show",
    "leader",
    "light",
    "voice",
    "wife",
    "police",
    "mind",
    "price",
    "report",
    "decision",
    "son",
    "view",
    "relationship",
    "town",
    "road",
    "arm",
    "difference",
    "value",
    "building",
    "action",
    "model",
    "season",
    "society",
    "tax",
    "director",
    "position",
    "player",
    "record",
    "paper",
    "space",
    "ground",
    "form",
    "event",
    "official",
    "matter",
    "center",
    "couple",
    "site",
    "project",
    "activity",
    "star",
    "table",
    "need",
    "court",
    "oil",
    "situation",
    "cost",
    "industry",
    "figure",
    "street",
    "image",
    "phone",
    "data",
    "picture",
    "practice",
    "piece",
    "land",
    "product",
    "doctor",
    "wall",
    "patient",
    "worker",
    "news",
    "test",
    "movie",
    "north",
    "love",
    "support",
    "technology",
    "step",
    "baby",
    "computer",
    "type",
    "attention",
    "film",
    "tree",
    "source",
    "truth",
    "seat",
    "state",
    "weekend",
    "package",
    "order",
    "review",
    "quality",
    "vendor",
    "account",
    "address",
    "batch",
    "sample",
    "dose",
    "gram",
    "shipment",
    "wallet",
    "forum",
    "thread",
    "post",
    "message",
    "profile",
    "link",
    "server",
    "network",
    "browser",
    "keyboard",
    "screen",
];

/// Verbs in base form; inflection via [`inflect`].
pub const VERBS: &[&str] = &[
    "ask", "work", "seem", "feel", "try", "call", "need", "mean", "keep", "let", "begin", "help",
    "talk", "turn", "start", "show", "hear", "play", "run", "move", "like", "live", "believe",
    "hold", "bring", "happen", "write", "provide", "sit", "stand", "lose", "pay", "meet",
    "include", "continue", "set", "learn", "change", "lead", "watch", "follow", "stop", "create",
    "speak", "read", "allow", "add", "spend", "grow", "open", "walk", "win", "offer", "remember",
    "love", "consider", "appear", "buy", "wait", "serve", "die", "send", "expect", "build", "stay",
    "fall", "cut", "reach", "kill", "remain", "suggest", "raise", "pass", "sell", "require",
    "report", "decide", "pull", "return", "explain", "hope", "develop", "carry", "break",
    "receive", "agree", "support", "hit", "produce", "eat", "cover", "catch", "draw", "choose",
    "wish", "drop", "seek", "deal", "ship", "order", "arrive", "pack", "test", "review", "trust",
    "scam", "refund", "track", "smoke", "trip", "dose", "vape", "roll", "chill", "grind", "stack",
    "trade", "mine", "post", "lurk", "reply", "upvote", "stream", "download", "install", "click",
    "scroll", "browse", "share", "search", "save", "check", "wonder", "notice", "enjoy", "avoid",
];

/// Adjectives.
pub const ADJS: &[&str] = &[
    "good",
    "new",
    "first",
    "last",
    "long",
    "great",
    "little",
    "own",
    "other",
    "old",
    "right",
    "big",
    "high",
    "different",
    "small",
    "large",
    "next",
    "early",
    "young",
    "important",
    "few",
    "public",
    "bad",
    "same",
    "able",
    "free",
    "sure",
    "better",
    "whole",
    "clear",
    "certain",
    "fast",
    "cheap",
    "strong",
    "possible",
    "late",
    "general",
    "easy",
    "serious",
    "ready",
    "simple",
    "left",
    "hard",
    "special",
    "open",
    "wrong",
    "true",
    "nice",
    "huge",
    "popular",
    "rare",
    "common",
    "quick",
    "slow",
    "deep",
    "warm",
    "cold",
    "dark",
    "light",
    "heavy",
    "clean",
    "dirty",
    "pure",
    "solid",
    "weird",
    "crazy",
    "calm",
    "happy",
    "sad",
    "angry",
    "tired",
    "busy",
    "lazy",
    "quiet",
    "loud",
    "safe",
    "risky",
    "legit",
    "sketchy",
    "smooth",
    "rough",
    "fresh",
    "stale",
    "decent",
    "awesome",
    "terrible",
    "amazing",
    "horrible",
    "perfect",
    "average",
    "reliable",
    "stealthy",
    "generous",
    "honest",
    "careful",
    "careless",
    "patient",
    "friendly",
    "helpful",
    "useless",
    "useful",
    "pricey",
];

/// Adverbs and discourse markers.
pub const ADVS: &[&str] = &[
    "really",
    "actually",
    "probably",
    "definitely",
    "basically",
    "honestly",
    "usually",
    "always",
    "never",
    "often",
    "sometimes",
    "rarely",
    "quickly",
    "slowly",
    "easily",
    "barely",
    "nearly",
    "mostly",
    "totally",
    "completely",
    "absolutely",
    "literally",
    "seriously",
    "apparently",
    "obviously",
    "clearly",
    "certainly",
    "recently",
    "finally",
    "eventually",
    "suddenly",
    "carefully",
    "exactly",
    "directly",
    "simply",
    "highly",
];

/// Internet slang tokens.
pub const SLANG: &[&str] = &[
    "lol", "lmao", "tbh", "imo", "imho", "ngl", "fr", "smh", "idk", "irl", "btw", "afaik", "iirc",
    "fwiw", "tldr", "yolo", "based", "sus", "lowkey", "highkey", "deadass", "bet", "fam", "bruh",
    "yikes", "oof", "welp", "meh", "nah", "yeah", "kinda", "sorta", "gonna", "wanna", "gotta",
    "dunno", "ain't", "y'all", "tho", "cuz",
];

/// Groups of interchangeable spellings; each author settles on one variant
/// per group (a strong, persistent char-n-gram signal).
pub const VARIANT_GROUPS: &[&[&str]] = &[
    &["though", "tho"],
    &["because", "cause", "cuz", "bc"],
    &["you", "u"],
    &["your", "ur"],
    &["people", "ppl"],
    &["about", "abt"],
    &["probably", "prob", "probs"],
    &["definitely", "def"],
    &["something", "smth"],
    &["really", "rly"],
    &["with", "w"],
    &["without", "w/o"],
    &["going to", "gonna"],
    &["want to", "wanna"],
    &["got to", "gotta"],
    &["kind of", "kinda"],
    &["sort of", "sorta"],
    &["do not", "don't", "dont"],
    &["cannot", "can't", "cant"],
    &["i am", "i'm", "im"],
    &["it is", "it's", "its"],
    &["that is", "that's", "thats"],
    &["what is", "what's", "whats"],
    &["see you", "cya"],
    &["thanks", "thx", "ty"],
    &["please", "pls", "plz"],
    &["okay", "ok", "k"],
    &["very", "super", "hella", "pretty"],
];

/// One topic's name and word stock.
#[derive(Debug, Clone, Copy)]
pub struct TopicLexicon {
    /// Topic label as in Table I.
    pub name: &'static str,
    /// Example communities carrying the topic (subreddit-style names for
    /// Reddit, board names for the dark-web forums).
    pub communities: &'static [&'static str],
    /// Topic-specific content words.
    pub words: &'static [&'static str],
}

/// The thirteen topic rows of Table I.
pub const TOPICS: &[TopicLexicon] = &[
    TopicLexicon {
        name: "Culture",
        communities: &["science", "books", "history", "philosophy", "art"],
        words: &[
            "study",
            "theory",
            "author",
            "novel",
            "culture",
            "museum",
            "painting",
            "poem",
            "ancient",
            "civilization",
            "language",
            "literature",
            "essay",
            "scientist",
            "experiment",
            "evidence",
            "journal",
            "professor",
            "lecture",
            "library",
        ],
    },
    TopicLexicon {
        name: "Cryptocurrencies",
        communities: &["bitcoin", "cryptocurrency", "monero", "ethtrader", "btc"],
        words: &[
            "bitcoin",
            "monero",
            "wallet",
            "blockchain",
            "exchange",
            "satoshi",
            "mining",
            "ledger",
            "transaction",
            "fee",
            "mempool",
            "coin",
            "token",
            "address",
            "key",
            "hodl",
            "pump",
            "dump",
            "fiat",
            "altcoin",
            "hash",
            "node",
            "confirmation",
        ],
    },
    TopicLexicon {
        name: "Drugs",
        communities: &[
            "darknetmarkets",
            "drugs",
            "lsd",
            "mdma",
            "opiates",
            "trees",
            "psychonaut",
        ],
        words: &[
            "acid",
            "molly",
            "shrooms",
            "tabs",
            "dose",
            "trip",
            "high",
            "stash",
            "bud",
            "edible",
            "tolerance",
            "comedown",
            "microdose",
            "blotter",
            "crystal",
            "powder",
            "stealth",
            "vacuum",
            "sealed",
            "reship",
            "escrow",
            "finalize",
            "vendor",
            "bunk",
        ],
    },
    TopicLexicon {
        name: "Entertainment",
        communities: &["pics", "funny", "movies", "television", "music", "videos"],
        words: &[
            "movie",
            "episode",
            "season",
            "album",
            "band",
            "concert",
            "trailer",
            "actor",
            "scene",
            "soundtrack",
            "meme",
            "clip",
            "channel",
            "stream",
            "playlist",
            "show",
            "director",
            "sequel",
            "plot",
            "character",
        ],
    },
    TopicLexicon {
        name: "Financial",
        communities: &["personalfinance", "investing", "stocks"],
        words: &[
            "budget",
            "savings",
            "loan",
            "credit",
            "debt",
            "interest",
            "mortgage",
            "salary",
            "invest",
            "portfolio",
            "stock",
            "dividend",
            "retirement",
            "bank",
            "account",
            "income",
            "expense",
            "insurance",
        ],
    },
    TopicLexicon {
        name: "Lifestyle/Sports",
        communities: &[
            "lifeprotips",
            "fitness",
            "soccer",
            "nba",
            "running",
            "cooking",
        ],
        words: &[
            "workout", "gym", "recipe", "protein", "training", "match", "goal", "league", "coach",
            "diet", "routine", "stretch", "marathon", "bike", "hike", "yoga", "kitchen", "meal",
            "season", "score",
        ],
    },
    TopicLexicon {
        name: "News",
        communities: &["worldnews", "news", "upliftingnews"],
        words: &[
            "government",
            "minister",
            "election",
            "protest",
            "economy",
            "crisis",
            "border",
            "treaty",
            "sanction",
            "investigation",
            "statement",
            "journalist",
            "headline",
            "breaking",
            "conference",
            "summit",
            "reform",
        ],
    },
    TopicLexicon {
        name: "Places",
        communities: &["canada", "europe", "australia", "unitedkingdom", "toronto"],
        words: &[
            "province",
            "downtown",
            "border",
            "winter",
            "summer",
            "flight",
            "airport",
            "tourist",
            "neighborhood",
            "rent",
            "transit",
            "suburb",
            "coast",
            "island",
            "mountain",
            "lake",
            "highway",
        ],
    },
    TopicLexicon {
        name: "Politics",
        communities: &["politics", "politicaldiscussion", "libertarian"],
        words: &[
            "senate",
            "congress",
            "vote",
            "campaign",
            "candidate",
            "policy",
            "liberal",
            "conservative",
            "debate",
            "scandal",
            "poll",
            "supreme",
            "amendment",
            "bill",
            "party",
            "president",
            "governor",
        ],
    },
    TopicLexicon {
        name: "R18+",
        communities: &["sex", "nsfw", "gonewild"],
        words: &[
            "relationship",
            "partner",
            "dating",
            "intimate",
            "attraction",
            "consent",
            "romance",
            "flirt",
            "crush",
            "breakup",
            "marriage",
            "divorce",
        ],
    },
    TopicLexicon {
        name: "Psychological help",
        communities: &["getmotivated", "depression", "anxiety", "selfimprovement"],
        words: &[
            "therapy",
            "therapist",
            "anxiety",
            "depression",
            "motivation",
            "mindfulness",
            "meditation",
            "habit",
            "journal",
            "gratitude",
            "burnout",
            "stress",
            "panic",
            "healing",
            "recovery",
            "selfcare",
        ],
    },
    TopicLexicon {
        name: "Tech/Tor",
        communities: &["technology", "tor", "privacy", "linux", "netsec"],
        words: &[
            "encryption",
            "onion",
            "relay",
            "circuit",
            "privacy",
            "vpn",
            "firewall",
            "kernel",
            "server",
            "protocol",
            "exploit",
            "patch",
            "password",
            "hash",
            "opsec",
            "metadata",
            "fingerprint",
            "bridge",
            "hidden",
            "node",
        ],
    },
    TopicLexicon {
        name: "Videogame",
        communities: &[
            "gaming",
            "leagueoflegends",
            "fallout",
            "globaloffensive",
            "wow",
        ],
        words: &[
            "quest",
            "loot",
            "raid",
            "server",
            "lag",
            "patch",
            "nerf",
            "buff",
            "spawn",
            "respawn",
            "ranked",
            "ladder",
            "guild",
            "clan",
            "skin",
            "dlc",
            "console",
            "controller",
            "fps",
            "rpg",
            "speedrun",
        ],
    },
];

/// Index of the Drugs topic in [`TOPICS`] (the dark-web forums' home
/// topic).
pub const DRUGS_TOPIC: usize = 2;

/// Cities for identity facts, with their country.
pub const CITIES: &[(&str, &str)] = &[
    ("edmonton", "canada"),
    ("toronto", "canada"),
    ("vancouver", "canada"),
    ("miami", "usa"),
    ("new york", "usa"),
    ("seattle", "usa"),
    ("denver", "usa"),
    ("portland", "usa"),
    ("austin", "usa"),
    ("chicago", "usa"),
    ("london", "uk"),
    ("manchester", "uk"),
    ("bristol", "uk"),
    ("berlin", "germany"),
    ("hamburg", "germany"),
    ("munich", "germany"),
    ("amsterdam", "netherlands"),
    ("rotterdam", "netherlands"),
    ("sydney", "australia"),
    ("melbourne", "australia"),
    ("brisbane", "australia"),
    ("warsaw", "poland"),
    ("krakow", "poland"),
    ("dublin", "ireland"),
    ("stockholm", "sweden"),
    ("oslo", "norway"),
    ("helsinki", "finland"),
    ("paris", "france"),
    ("lyon", "france"),
    ("madrid", "spain"),
];

/// Religions for identity facts.
pub const RELIGIONS: &[&str] = &[
    "christian",
    "atheist",
    "agnostic",
    "buddhist",
    "jewish",
    "muslim",
];

/// Political leanings for identity facts.
pub const POLITICS: &[&str] = &[
    "left",
    "right",
    "libertarian",
    "centrist",
    "green",
    "apolitical",
];

/// Drugs for identity facts and vendor complaints.
pub const DRUGS: &[&str] = &[
    "lsd",
    "mdma",
    "molly",
    "shrooms",
    "ketamine",
    "dmt",
    "mescaline",
    "weed",
    "hash",
    "adderall",
    "xanax",
    "oxy",
    "2cb",
    "nbome",
    "speed",
    "cocaine",
];

/// Hobbies for identity facts.
pub const HOBBIES: &[&str] = &[
    "yoga",
    "cooking",
    "hiking",
    "climbing",
    "chess",
    "guitar",
    "piano",
    "photography",
    "gardening",
    "fishing",
    "painting",
    "skateboarding",
    "snowboarding",
    "cycling",
    "gaming",
    "reading",
    "writing",
    "woodworking",
    "brewing",
    "astronomy",
];

/// Devices for identity facts.
pub const DEVICES: &[&str] = &[
    "galaxy s4",
    "galaxy s7",
    "iphone 6",
    "iphone 7",
    "pixel 2",
    "oneplus 5",
    "thinkpad x220",
    "macbook pro",
    "nexus 5",
    "xperia z3",
    "moto g5",
    "htc one",
];

/// Jobs for identity facts.
pub const JOBS: &[&str] = &[
    "warehouse worker",
    "bartender",
    "line cook",
    "electrician",
    "nurse",
    "student",
    "programmer",
    "graphic designer",
    "teacher",
    "delivery driver",
    "mechanic",
    "accountant",
    "barista",
    "security guard",
    "carpenter",
];

/// Alias-name fragments for generating nicknames.
pub const ALIAS_HEADS: &[&str] = &[
    "dark", "acid", "crypto", "ghost", "silent", "midnight", "neon", "frozen", "cosmic",
    "electric", "mystic", "shadow", "lucid", "velvet", "quantum", "solar", "lunar", "digital",
    "phantom", "emerald", "crimson", "golden", "silver", "iron", "wild", "happy", "sleepy",
    "sneaky", "dizzy", "funky", "grumpy", "mellow", "spicy",
];

/// Alias-name tails.
pub const ALIAS_TAILS: &[&str] = &[
    "wizard", "garden", "rider", "panda", "falcon", "wolf", "tiger", "sailor", "monk", "pirate",
    "baron", "queen", "king", "rabbit", "fox", "owl", "raven", "serpent", "traveler", "dreamer",
    "walker", "runner", "dealer", "trader", "smith", "hunter", "farmer", "painter", "poet",
    "prophet", "nomad", "hermit", "jester", "knight",
];

/// Inflections of a verb or noun that our lemmatizer maps back to the base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inflection {
    /// Unchanged base form.
    Base,
    /// Noun plural / verb third person singular (`cat` → `cats`).
    S,
    /// Past tense (`stop` → `stopped`, `love` → `loved`).
    Past,
    /// Progressive (`run` → `running`, `make` → `making`).
    Gerund,
}

fn is_vowel(b: u8) -> bool {
    matches!(b, b'a' | b'e' | b'i' | b'o' | b'u')
}

/// True when the base ends consonant-vowel-consonant (final not w/x/y) —
/// the doubling context (`stop` → `stopped`).
fn cvc(word: &str) -> bool {
    let b = word.as_bytes();
    let n = b.len();
    n >= 3
        && !is_vowel(b[n - 3])
        && is_vowel(b[n - 2])
        && !is_vowel(b[n - 1])
        && !matches!(b[n - 1], b'w' | b'x' | b'y')
}

/// Inflects a base-form word. The rules mirror (and invert under) the
/// `darklight-text` lemmatizer suffix rules.
///
/// ```
/// use darklight_synth::lexicon::{inflect, Inflection};
/// assert_eq!(inflect("stop", Inflection::Past), "stopped");
/// assert_eq!(inflect("love", Inflection::Past), "loved");
/// assert_eq!(inflect("run", Inflection::Gerund), "running");
/// assert_eq!(inflect("city", Inflection::S), "cities");
/// ```
pub fn inflect(base: &str, inflection: Inflection) -> String {
    match inflection {
        Inflection::Base => base.to_string(),
        Inflection::S => {
            if let Some(stem) = base.strip_suffix('y') {
                if stem.as_bytes().last().is_some_and(|&b| !is_vowel(b)) {
                    return format!("{stem}ies");
                }
            }
            if base.ends_with('s')
                || base.ends_with('x')
                || base.ends_with('z')
                || base.ends_with("ch")
                || base.ends_with("sh")
                || base.ends_with('o')
            {
                format!("{base}es")
            } else {
                format!("{base}s")
            }
        }
        Inflection::Past => {
            if base.ends_with('e') {
                format!("{base}d")
            } else if let Some(stem) = base.strip_suffix('y') {
                if stem.as_bytes().last().is_some_and(|&b| !is_vowel(b)) {
                    format!("{stem}ied")
                } else {
                    format!("{base}ed")
                }
            } else if cvc(base) {
                let last = base.chars().last().expect("cvc implies non-empty");
                format!("{base}{last}ed")
            } else {
                format!("{base}ed")
            }
        }
        Inflection::Gerund => {
            if let Some(stem) = base.strip_suffix('e') {
                if !stem.is_empty() && !stem.ends_with('e') {
                    return format!("{stem}ing");
                }
            }
            if cvc(base) {
                let last = base.chars().last().expect("cvc implies non-empty");
                format!("{base}{last}ing")
            } else {
                format!("{base}ing")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darklight_text::lemma::Lemmatizer;

    #[test]
    fn inflection_rules() {
        assert_eq!(inflect("cat", Inflection::S), "cats");
        assert_eq!(inflect("city", Inflection::S), "cities");
        assert_eq!(inflect("box", Inflection::S), "boxes");
        assert_eq!(inflect("watch", Inflection::S), "watches");
        assert_eq!(inflect("day", Inflection::S), "days");
        assert_eq!(inflect("stop", Inflection::Past), "stopped");
        assert_eq!(inflect("love", Inflection::Past), "loved");
        assert_eq!(inflect("try", Inflection::Past), "tried");
        assert_eq!(inflect("play", Inflection::Past), "played");
        assert_eq!(inflect("run", Inflection::Gerund), "running");
        assert_eq!(inflect("make", Inflection::Gerund), "making");
        assert_eq!(inflect("walk", Inflection::Gerund), "walking");
    }

    #[test]
    fn word_lists_nonempty_and_lowercase() {
        for list in [NOUNS, VERBS, ADJS, ADVS, SLANG] {
            assert!(!list.is_empty());
            for w in list {
                assert_eq!(&w.to_lowercase(), w, "{w} not lowercase");
            }
        }
        assert_eq!(TOPICS.len(), 13);
        assert_eq!(TOPICS[DRUGS_TOPIC].name, "Drugs");
        for t in TOPICS {
            assert!(!t.words.is_empty());
            assert!(!t.communities.is_empty());
        }
    }

    #[test]
    fn variant_groups_have_alternatives() {
        for g in VARIANT_GROUPS {
            assert!(g.len() >= 2);
        }
    }

    /// Lemmatizing an inflected verb recovers the base for most stock.
    /// A handful of irregular interactions are tolerated (< 10%).
    #[test]
    fn lemmatizer_inverts_most_verb_inflections() {
        let lem = Lemmatizer::new();
        let mut total = 0;
        let mut ok = 0;
        for v in VERBS {
            for infl in [Inflection::S, Inflection::Past, Inflection::Gerund] {
                total += 1;
                let form = inflect(v, infl);
                if lem.lemma_owned(&form) == *v {
                    ok += 1;
                }
            }
        }
        let rate = ok as f64 / total as f64;
        assert!(rate > 0.9, "only {ok}/{total} verb inflections invert");
    }

    /// Noun plurals also invert.
    #[test]
    fn lemmatizer_inverts_most_noun_plurals() {
        let lem = Lemmatizer::new();
        let mut total = 0;
        let mut ok = 0;
        for n in NOUNS {
            total += 1;
            if lem.lemma_owned(&inflect(n, Inflection::S)) == *n {
                ok += 1;
            }
        }
        assert!(ok as f64 / total as f64 > 0.85, "{ok}/{total}");
    }
}
