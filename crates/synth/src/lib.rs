//! Synthetic forum-corpus generation.
//!
//! The paper's datasets — scraped Reddit, The Majestic Garden, and Dream
//! Market posts — are not publicly available, so this crate simulates them
//! (DESIGN.md §2 documents the substitution). What matters for reproducing
//! the paper's experiments is that the simulation exhibits the properties
//! the method measures:
//!
//! * every author has a *persistent, noisy* writing style — favourite
//!   vocabulary, phrase templates, function-word variants (`though`/`tho`),
//!   punctuation and contraction habits, typo and slang rates, message
//!   lengths — that survives (with configurable drift) across forums;
//! * every author has a *daily activity pattern* — a wrapped-Gaussian
//!   mixture over the hours of the day — sampled into concrete posting
//!   timestamps over 2017;
//! * forums have different shapes: Reddit is multi-topic (the Table I
//!   mixture) with shorter posts, the dark-web forums are drug-centric with
//!   longer, more digressive posts (§III-B);
//! * realistic noise is present so the polishing pipeline has real work:
//!   bot accounts, repetitive spam, crossposts, quotes, PGP blocks, e-mail
//!   addresses, emoji, non-English users;
//! * *identity leaks* (ages, cities, drug habits, vendor complaints, alias
//!   self-references, reposted links) are planted in messages and recorded
//!   as ground-truth [`Fact`](darklight_corpus::model::Fact)s so the
//!   evaluation layer can replay the authors' manual verification (§V-A).
//!
//! Entry point: [`scenario::ScenarioBuilder`] produces the three-forum
//! [`scenario::Scenario`] used by every experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexicon;
pub mod matrix;
pub mod noise;
pub mod persona;
pub mod scenario;
pub mod style;
pub mod temporal;
pub mod textgen;

pub use scenario::{Scenario, ScenarioBuilder, ScenarioConfig};
pub use style::StyleGenome;
pub use temporal::TemporalGenome;
