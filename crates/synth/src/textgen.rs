//! Sentence and message generation.
//!
//! Sentences are built from a stock of templates — function-word skeletons
//! with typed content slots — filled from the author's biased vocabulary,
//! then passed through the author's habit filters: spelling-variant
//! substitution, slang insertion, typos, commas, casing, terminal
//! punctuation. Every one of those filters feeds a feature family the
//! pipeline measures (word n-grams, char n-grams, char-class frequencies),
//! which is what makes the synthetic corpus a faithful testbed for the
//! paper's method.

use crate::lexicon::{
    inflect, Inflection, ADJS, ADVS, NOUNS, SLANG, TOPICS, VARIANT_GROUPS, VERBS,
};
use crate::style::{weighted_index, StyleGenome};
use rand::Rng;
use std::sync::OnceLock;

/// The sentence templates. Uppercase tokens are slots: `N` noun, `Np`
/// plural noun, `V` base verb, `Vd` past, `Vg` gerund, `Vs` 3rd-person,
/// `A` adjective, `Dv` adverb, `T` topic word, `Num` number. Lowercase
/// tokens (and `,`) are literals; variant groups are written in canonical
/// (first-variant) spelling and substituted per author afterwards.
pub const TEMPLATES: &[&str] = &[
    "i Vd the A N and it was A",
    "the N was really A because the N Vd",
    "anyone know if the T N is A",
    "just Vd my N , feels A",
    "i am Vg the T right now and it Vs A",
    "you should V the N before it Vs",
    "honestly the A N Vd better than i Vd",
    "been Vg Np all week because of the T",
    "my N Vd again so i Vd a new one",
    "do not V the N if the T looks A",
    "this T N is the most A thing i have Vd",
    "Dv Vd the N , would V again",
    "what is the best N for Vg the T",
    "i think the N Vs A when you V it Dv",
    "that is a Dv A take on the T",
    "Vd Num Np last week and they were all A",
    "the A truth is that Np V because people V",
    "never V a N from a A N , trust me",
    "it Vs like the T is getting A these days",
    "my A N says the N is A but i am not sure",
    "big thanks to the N who Vd my N so Dv",
    "not sure why Np keep Vg about the T",
    "the N arrived in Num days , Dv A service",
    "i have been Vg this N for Num years",
    "if you V the T you will Dv V the N",
    "nothing Vs better than a A N in the morning",
    "Dv speaking , the N was A but the N was not",
    "can someone V me with the A T N please",
    "Vg the N Vd my whole N , Dv recommend",
    "the T community Vs too much about Np",
    "first time Vg this , any A Np to V",
    "i used to V Np but the T changed everything",
    "we Vd the T together and it was Dv A",
    "somehow the N always Vs when i V the N",
    "the price of the T N Vd Num percent",
    "hot take : the A N is Dv overrated",
    "long story short , i Vd the N and the N Vd",
    "update : the N finally Vd , it looks A",
    "pro tip : V your N before you V the T",
    "am i the only one who Vs the A T N",
];

fn cumulative_zipf(n: usize) -> Vec<f64> {
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0;
    for i in 0..n {
        total += 1.0 / (i as f64 + 1.0);
        cum.push(total);
    }
    cum
}

fn zipf_tables() -> &'static [Vec<f64>; 4] {
    static TABLES: OnceLock<[Vec<f64>; 4]> = OnceLock::new();
    TABLES.get_or_init(|| {
        [
            cumulative_zipf(NOUNS.len()),
            cumulative_zipf(VERBS.len()),
            cumulative_zipf(ADJS.len()),
            cumulative_zipf(ADVS.len()),
        ]
    })
}

fn zipf_index(rng: &mut impl Rng, table: &[f64]) -> usize {
    let total = *table.last().expect("table non-empty");
    let x = rng.random::<f64>() * total;
    table.partition_point(|&c| c < x).min(table.len() - 1)
}

/// Probability a noun/adjective slot draws a topic word instead of a
/// general one.
const TOPIC_AFFINITY: f64 = 0.3;

fn pick_word(
    rng: &mut impl Rng,
    genome: &StyleGenome,
    class: usize, // 0 noun, 1 verb, 2 adj, 3 adv
    topic: usize,
) -> String {
    let (stock, favs): (&[&str], &[u16]) = match class {
        0 => (NOUNS, &genome.fav_nouns),
        1 => (VERBS, &genome.fav_verbs),
        2 => (ADJS, &genome.fav_adjs),
        _ => (ADVS, &genome.fav_advs),
    };
    // Topic words can stand in for nouns and adjectives.
    if class == 0 && rng.random::<f64>() < TOPIC_AFFINITY {
        let words = TOPICS[topic].words;
        return words[rng.random_range(0..words.len())].to_string();
    }
    if !favs.is_empty() && rng.random::<f64>() < genome.favorite_bias {
        let idx = favs[rng.random_range(0..favs.len())] as usize;
        return stock[idx.min(stock.len() - 1)].to_string();
    }
    let table = &zipf_tables()[class];
    stock[zipf_index(rng, table)].to_string()
}

fn fill_slot(rng: &mut impl Rng, genome: &StyleGenome, slot: &str, topic: usize) -> Option<String> {
    Some(match slot {
        "N" => pick_word(rng, genome, 0, topic),
        "Np" => inflect(&pick_word(rng, genome, 0, topic), Inflection::S),
        "V" => pick_word(rng, genome, 1, topic),
        "Vd" => inflect(&pick_word(rng, genome, 1, topic), Inflection::Past),
        "Vg" => inflect(&pick_word(rng, genome, 1, topic), Inflection::Gerund),
        "Vs" => inflect(&pick_word(rng, genome, 1, topic), Inflection::S),
        "A" => pick_word(rng, genome, 2, topic),
        "Dv" => pick_word(rng, genome, 3, topic),
        "T" => {
            let words = TOPICS[topic].words;
            words[rng.random_range(0..words.len())].to_string()
        }
        "Num" => match rng.random_range(0..4) {
            0 => rng.random_range(2..10).to_string(),
            1 => rng.random_range(10..100).to_string(),
            2 => format!("{}.{}", rng.random_range(1..20), rng.random_range(1..10)),
            _ => format!("{}0", rng.random_range(1..10)),
        },
        _ => return None,
    })
}

/// Applies the author's spelling-variant choices to a token sequence.
/// Each occurrence uses the chosen variant with probability
/// `variant_consistency` (people are not perfectly consistent spellers);
/// otherwise the canonical spelling stays. Multi-word canonicals
/// (`going to`) are matched as token bigrams.
fn apply_variants(rng: &mut impl Rng, tokens: &mut Vec<String>, genome: &StyleGenome) {
    for (gi, group) in VARIANT_GROUPS.iter().enumerate() {
        let chosen = group[genome.variant_choice[gi] as usize % group.len()];
        let canonical: Vec<&str> = group[0].split(' ').collect();
        if chosen == group[0] {
            continue;
        }
        if canonical.len() == 1 {
            for t in tokens.iter_mut() {
                if t == canonical[0] && rng.random::<f64>() < genome.variant_consistency {
                    *t = chosen.to_string();
                }
            }
        } else {
            // Bigram canonical: scan and splice.
            let mut i = 0;
            while i + 1 < tokens.len() {
                if tokens[i] == canonical[0]
                    && tokens[i + 1] == canonical[1]
                    && rng.random::<f64>() < genome.variant_consistency
                {
                    let replacement: Vec<String> =
                        chosen.split(' ').map(|s| s.to_string()).collect();
                    tokens.splice(i..i + 2, replacement.clone());
                    i += replacement.len();
                } else {
                    i += 1;
                }
            }
        }
    }
}

fn apply_typo(rng: &mut impl Rng, word: &mut String) {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() < 4 || !word.is_ascii() {
        return;
    }
    let mut c = chars;
    if rng.random::<f64>() < 0.5 {
        // Swap two adjacent interior letters.
        let i = rng.random_range(1..c.len() - 1);
        c.swap(i, i - 1);
    } else {
        // Drop one interior letter.
        let i = rng.random_range(1..c.len() - 1);
        c.remove(i);
    }
    *word = c.into_iter().collect();
}

const EMOJI: [&str; 8] = ["😀", "😂", "🔥", "👍", "🙏", "😅", "🤔", "✨"];

/// Generates one sentence (without terminal punctuation) as tokens.
fn sentence_tokens(rng: &mut impl Rng, genome: &StyleGenome, topic: usize) -> Vec<String> {
    let t = weighted_index(rng, &genome.template_weights);
    let template = TEMPLATES[t % TEMPLATES.len()];
    let mut tokens: Vec<String> = Vec::new();
    for tok in template.split_whitespace() {
        match fill_slot(rng, genome, tok, topic) {
            Some(filled) => {
                // Filled slots may be multi-word (e.g. "galaxy s4").
                tokens.extend(filled.split(' ').map(|s| s.to_string()));
            }
            None => tokens.push(tok.to_string()),
        }
    }
    // Slang insertion.
    if rng.random::<f64>() < genome.slang_rate && !genome.fav_slang.is_empty() {
        let s = SLANG
            [genome.fav_slang[rng.random_range(0..genome.fav_slang.len())] as usize % SLANG.len()];
        if rng.random::<f64>() < 0.5 {
            tokens.insert(0, s.to_string());
        } else {
            tokens.push(s.to_string());
        }
    }
    apply_variants(rng, &mut tokens, genome);
    // Typos.
    for t in tokens.iter_mut() {
        if rng.random::<f64>() < genome.typo_rate {
            apply_typo(rng, t);
        }
    }
    tokens
}

/// Renders tokens into a sentence string with the author's punctuation and
/// casing habits.
fn render_sentence(rng: &mut impl Rng, genome: &StyleGenome, mut tokens: Vec<String>) -> String {
    // Casing.
    if !genome.punct.lowercase_i {
        for t in tokens.iter_mut() {
            if t == "i" {
                *t = "I".to_string();
            } else if t == "i'm" {
                *t = "I'm".to_string();
            }
        }
    }
    if genome.punct.sentence_case {
        if let Some(first) = tokens.first_mut() {
            let mut chars = first.chars();
            if let Some(c) = chars.next() {
                *first = c.to_uppercase().chain(chars).collect();
            }
        }
    }
    let mut out = String::new();
    for (i, t) in tokens.iter().enumerate() {
        if i > 0 && t != "," && t != ":" {
            out.push(' ');
        }
        out.push_str(t);
        // Optional comma after conjunctions/discourse markers.
        if i + 1 < tokens.len()
            && matches!(t.as_str(), "honestly" | "and" | "so" | "short")
            && rng.random::<f64>() < genome.punct.comma_rate
            && !out.ends_with(',')
        {
            out.push(',');
        }
    }
    let terminal = crate::style::TERMINALS[weighted_index(rng, &genome.punct.terminal_weights)];
    out.push_str(terminal);
    out
}

/// Generates one message: a sequence of sentences in the author's style,
/// possibly ending with an emoji. `topic` indexes [`TOPICS`].
///
/// ```
/// use darklight_synth::style::StyleGenome;
/// use darklight_synth::textgen::generate_message;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let genome = StyleGenome::sample(&mut rng, 1.0);
/// let msg = generate_message(&mut rng, &genome, 2);
/// assert!(!msg.is_empty());
/// ```
pub fn generate_message(rng: &mut impl Rng, genome: &StyleGenome, topic: usize) -> String {
    let n = genome.sample_sentence_count(rng);
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        let tokens = sentence_tokens(rng, genome, topic);
        out.push_str(&render_sentence(rng, genome, tokens));
    }
    if rng.random::<f64>() < genome.emoji_rate {
        out.push(' ');
        out.push_str(EMOJI[rng.random_range(0..EMOJI.len())]);
    }
    out
}

/// Generates a message with at least `min_words` words by concatenating
/// messages (vendors' showcase posts, TMG's "longer than average and more
/// digressive" messages).
pub fn generate_long_message(
    rng: &mut impl Rng,
    genome: &StyleGenome,
    topic: usize,
    min_words: usize,
) -> String {
    let mut out = generate_message(rng, genome, topic);
    while darklight_text::token::word_count(&out) < min_words {
        out.push(' ');
        out.push_str(&generate_message(rng, genome, topic));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn genome(seed: u64) -> StyleGenome {
        StyleGenome::sample(&mut rng(seed), 1.0)
    }

    #[test]
    fn messages_nonempty_and_deterministic() {
        let g = genome(1);
        let a = generate_message(&mut rng(2), &g, 0);
        let b = generate_message(&mut rng(2), &g, 0);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn long_messages_meet_budget() {
        let g = genome(3);
        let m = generate_long_message(&mut rng(4), &g, 2, 120);
        assert!(darklight_text::token::word_count(&m) >= 120);
    }

    #[test]
    fn topic_words_show_up() {
        let g = genome(5);
        let mut all = String::new();
        let mut r = rng(6);
        for _ in 0..50 {
            all.push_str(&generate_message(&mut r, &g, 1)); // Cryptocurrencies
            all.push(' ');
        }
        let hits = TOPICS[1].words.iter().filter(|w| all.contains(*w)).count();
        assert!(hits > 3, "only {hits} crypto words in output");
    }

    #[test]
    fn same_genome_same_style_statistics() {
        // Two samples from one author should share more vocabulary than
        // samples from two different authors.
        let ga = genome(7);
        let gb = genome(8);
        let mut r = rng(9);
        let wordset = |g: &StyleGenome, r: &mut StdRng| {
            let mut s = std::collections::HashSet::new();
            for _ in 0..40 {
                for w in darklight_text::token::words(&generate_message(r, g, 2)) {
                    s.insert(w);
                }
            }
            s
        };
        let a1 = wordset(&ga, &mut r);
        let a2 = wordset(&ga, &mut r);
        let b1 = wordset(&gb, &mut r);
        let jac = |x: &std::collections::HashSet<String>, y: &std::collections::HashSet<String>| {
            x.intersection(y).count() as f64 / x.union(y).count() as f64
        };
        assert!(
            jac(&a1, &a2) > jac(&a1, &b1),
            "self {} cross {}",
            jac(&a1, &a2),
            jac(&a1, &b1)
        );
    }

    #[test]
    fn variant_substitution_applies() {
        // Force an author who writes "u" for "you".
        let mut g = genome(10);
        let you_group = VARIANT_GROUPS
            .iter()
            .position(|grp| grp[0] == "you")
            .unwrap();
        g.variant_choice[you_group] = 1; // "u"
        g.variant_consistency = 1.0;
        let mut r = rng(11);
        let mut all = String::new();
        for _ in 0..80 {
            all.push_str(&generate_message(&mut r, &g, 0));
            all.push(' ');
        }
        let words: Vec<String> = darklight_text::token::words(&all);
        assert!(!words.iter().any(|w| w == "you"), "canonical 'you' leaked");
        assert!(words.iter().any(|w| w == "u"), "variant 'u' never used");
    }

    #[test]
    fn typo_rate_zero_means_clean_words() {
        let mut g = genome(12);
        g.typo_rate = 0.0;
        g.slang_rate = 0.0;
        g.emoji_rate = 0.0;
        let m = generate_message(&mut rng(13), &g, 0);
        assert!(!m.is_empty());
    }

    #[test]
    fn sentence_case_capitalizes() {
        let mut g = genome(14);
        g.punct.sentence_case = true;
        g.typo_rate = 0.0;
        let m = generate_message(&mut rng(15), &g, 0);
        let first = m.chars().next().unwrap();
        assert!(first.is_uppercase() || !first.is_alphabetic(), "{m}");
    }

    #[test]
    fn templates_parse_cleanly() {
        // Every slot code in every template is fillable.
        let g = genome(16);
        let mut r = rng(17);
        for tpl in TEMPLATES {
            for tok in tpl.split_whitespace() {
                if tok.chars().next().unwrap().is_uppercase() {
                    assert!(
                        fill_slot(&mut r, &g, tok, 0).is_some(),
                        "unknown slot {tok} in {tpl:?}"
                    );
                }
            }
        }
    }
}
