//! Property-based tests for the corpus generator.

use darklight_synth::lexicon::{inflect, Inflection};
use darklight_synth::persona::{alias_name, leak_sentence, Persona};
use darklight_synth::style::{weighted_index, StyleGenome};
use darklight_synth::temporal::TemporalGenome;
use darklight_synth::textgen::{generate_long_message, generate_message};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Message generation is total and deterministic per (seed, topic).
    #[test]
    fn messages_deterministic(seed in any::<u64>(), topic in 0usize..13) {
        let genome = StyleGenome::sample(&mut StdRng::seed_from_u64(seed), 1.0);
        let a = generate_message(&mut StdRng::seed_from_u64(seed ^ 1), &genome, topic);
        let b = generate_message(&mut StdRng::seed_from_u64(seed ^ 1), &genome, topic);
        prop_assert_eq!(&a, &b);
        prop_assert!(!a.is_empty());
    }

    /// Long messages always reach the requested word budget.
    #[test]
    fn long_messages_meet_budget(seed in any::<u64>(), min_words in 10usize..150) {
        let mut rng = StdRng::seed_from_u64(seed);
        let genome = StyleGenome::sample(&mut rng, 1.0);
        let m = generate_long_message(&mut rng, &genome, 2, min_words);
        prop_assert!(darklight_text::token::word_count(&m) >= min_words);
    }

    /// Drift keeps genomes valid at any drift level.
    #[test]
    fn drift_preserves_invariants(seed in any::<u64>(), drift in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = StyleGenome::sample(&mut rng, 1.0);
        let d = g.drifted(&mut rng, drift);
        prop_assert!((0.0..=0.95).contains(&d.favorite_bias));
        prop_assert!((0.0..=1.0).contains(&d.variant_consistency));
        prop_assert!(d.typo_rate <= 0.1 + 1e-12);
        prop_assert_eq!(d.variant_choice.len(), g.variant_choice.len());
        prop_assert!(!d.fav_nouns.is_empty());
        // Favourite lists stay sorted and deduplicated.
        for favs in [&d.fav_nouns, &d.fav_verbs, &d.fav_adjs, &d.fav_advs] {
            for w in favs.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    /// Temporal genomes always produce timestamps inside (or within a day
    /// of) their active window.
    #[test]
    fn timestamps_in_window(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = TemporalGenome::sample(&mut rng);
        for _ in 0..50 {
            let ts = g.sample_timestamp(&mut rng);
            let day = ts.div_euclid(86_400);
            prop_assert!(day >= g.active_from_day - 1 && day <= g.active_to_day + 1);
        }
    }

    /// Inflection always grows the word and never panics.
    #[test]
    fn inflection_total(word in "[a-z]{2,12}") {
        for infl in [Inflection::Base, Inflection::S, Inflection::Past, Inflection::Gerund] {
            let out = inflect(&word, infl);
            prop_assert!(!out.is_empty());
            prop_assert!(out.len() >= word.len().saturating_sub(1));
        }
    }

    /// Weighted index always lands on a positive-weight slot.
    #[test]
    fn weighted_index_valid(seed in any::<u64>(), weights in proptest::collection::vec(0.0f64..5.0, 1..20)) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let i = weighted_index(&mut rng, &weights);
            prop_assert!(i < weights.len());
        }
    }

    /// Personas carry consistent fact sheets and alias names are sane.
    #[test]
    fn persona_invariants(seed in any::<u64>(), id in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Persona::sample(&mut rng, id, 1.0);
        prop_assert_eq!(p.id, id);
        prop_assert!(p.facts.len() >= 8);
        for f in &p.facts {
            prop_assert!(!f.value.is_empty());
            prop_assert_eq!(f.value.clone(), f.value.to_lowercase());
            let s = leak_sentence(&mut rng, f);
            prop_assert!(s.contains(f.value.as_str()));
        }
        let name = alias_name(&mut rng);
        prop_assert!(name.len() >= 5);
    }
}
