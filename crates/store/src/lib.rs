//! Durable artifact storage for fitted pipeline state.
//!
//! The checkpoint machinery in `darklight-core` already writes JSON via
//! the tmp + fsync + rename discipline, which protects against a crash
//! *between* files — but not against a torn write, a truncated tail, or
//! a flipped bit inside one: those load as garbage. This crate adds the
//! storage layer an artifact-serving daemon needs:
//!
//! * [`container`] — a versioned, sectioned, CRC-checksummed binary
//!   container. Every section carries its own CRC-32; loads return
//!   typed [`StoreError`]s ([`VersionMismatch`](StoreError::VersionMismatch),
//!   [`SectionCrcMismatch`](StoreError::SectionCrcMismatch),
//!   [`TruncatedSection`](StoreError::TruncatedSection), …) and never
//!   panic on hostile bytes.
//! * [`epoch`] — immutable epoch directories under a store root, with a
//!   `CURRENT` pointer swapped atomically after each publish and a
//!   recovery ladder that walks back to the newest epoch that still
//!   loads cleanly.
//! * [`codec`] — the little-endian byte codec the container and its
//!   payload encoders share, with bounds-checked reads.
//!
//! What goes *inside* the sections is the caller's business: the domain
//! encoding of the fitted pipeline (vocabularies, IDF, author vectors,
//! activity profiles, the fit fingerprint) lives in
//! `darklight-core::artifact`, keeping this crate a generic container
//! layer below the engine.
//!
//! Writes consult the `DARKLIGHT_FAULT_IO` hooks of `darklight-govern`:
//! the count mode injects transient I/O errors, and the `trunc:`/`flip:`
//! modes corrupt the buffered bytes before they reach disk — the
//! crash-consistency harness drives every fault point through them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod container;
pub mod crc;
pub mod epoch;

pub use container::{read_container, write_container, Container, Section, FORMAT_VERSION};
pub use epoch::{EpochStore, CURRENT_FILE};

use std::fmt;

/// Typed failures of the artifact store. Corruption is always reported
/// as a value — no load path panics on malformed bytes.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The bytes are not a container at all, or a payload failed to
    /// decode (bad magic, impossible lengths, malformed UTF-8, …).
    Malformed(String),
    /// The container was written by a different format version.
    VersionMismatch {
        /// The version this build reads and writes.
        expected: u32,
        /// The version found in the file header.
        found: u32,
    },
    /// A section's payload does not match its stored CRC-32.
    SectionCrcMismatch {
        /// Tag of the failing section.
        section: String,
    },
    /// The file ends before a section's declared payload does.
    TruncatedSection {
        /// Tag of the truncated section (or `<header>`).
        section: String,
    },
    /// A required section is absent from the container.
    MissingSection {
        /// Tag of the absent section.
        section: String,
    },
    /// The artifact's stored fingerprint does not match the state that
    /// was decoded from it (or the fingerprint the caller demanded).
    FingerprintMismatch {
        /// The fingerprint the caller expected.
        expected: u64,
        /// The fingerprint found in the artifact.
        found: u64,
    },
    /// No epoch under the store root loads cleanly.
    NoUsableEpoch,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "artifact i/o error: {e}"),
            StoreError::Malformed(what) => write!(f, "malformed artifact: {what}"),
            StoreError::VersionMismatch { expected, found } => write!(
                f,
                "artifact format version mismatch: expected v{expected}, found v{found}"
            ),
            StoreError::SectionCrcMismatch { section } => {
                write!(f, "artifact section {section:?} failed its CRC-32 check")
            }
            StoreError::TruncatedSection { section } => {
                write!(f, "artifact section {section:?} is truncated")
            }
            StoreError::MissingSection { section } => {
                write!(f, "artifact is missing required section {section:?}")
            }
            StoreError::FingerprintMismatch { expected, found } => write!(
                f,
                "artifact fingerprint mismatch: expected {expected:016x}, found {found:016x}"
            ),
            StoreError::NoUsableEpoch => {
                write!(f, "no epoch in the store loads cleanly")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl StoreError {
    /// True for errors that mean "these bytes are not a trustworthy
    /// artifact" — the recovery ladder falls back to an earlier epoch on
    /// them. I/O errors also qualify (a vanished file is as unusable as
    /// a corrupt one); only [`NoUsableEpoch`](StoreError::NoUsableEpoch)
    /// itself is terminal.
    pub fn is_corruption(&self) -> bool {
        !matches!(self, StoreError::NoUsableEpoch)
    }
}
