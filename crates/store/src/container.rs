//! The versioned, sectioned, CRC-checksummed artifact container.
//!
//! ## On-disk layout (all integers little-endian)
//!
//! ```text
//! magic        8 bytes   "DLSTORE\0"
//! version      u32       FORMAT_VERSION
//! fingerprint  u64       caller-supplied state fingerprint
//! sections     u32       section count
//! header_crc   u32       CRC-32 of the 24 bytes above
//! per section:
//!   tag        len-prefixed UTF-8 string
//!   length     u64       payload bytes
//!   crc        u32       CRC-32 of tag bytes ‖ length (LE) ‖ payload
//!   payload    length bytes
//! ```
//!
//! The section CRC covers the tag and length as well as the payload, so
//! a flip anywhere in a section frame — not just its payload — fails
//! the checksum instead of parsing as a differently-named section.
//!
//! Every field that could mislead the reader is guarded: the header has
//! its own CRC (a flipped fingerprint or count byte is detected before
//! it can be trusted), payload lengths are validated against the bytes
//! actually present (truncation is reported as
//! [`StoreError::TruncatedSection`], never an allocation attempt), and
//! each payload is checksummed before it is handed to a decoder. Loads
//! return typed errors on every corruption; nothing panics.
//!
//! Writing goes through the tmp + fsync + rename discipline shared with
//! `darklight-core::checkpoint`, instrumented with the
//! `DARKLIGHT_FAULT_IO` hooks at three sites: `store.write_artifact`
//! (transient errors and `trunc:`/`flip:` byte corruption) and
//! `store.publish_rename` (a crash between tmp write and rename).

use std::fs;
use std::io::Write as _;
use std::path::Path;

use darklight_govern::fault;

use crate::codec::{Reader, Writer};
use crate::crc::{crc32, Crc32};
use crate::StoreError;

/// The 8-byte magic prefix of every container file.
pub const MAGIC: &[u8; 8] = b"DLSTORE\0";

/// The container format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Fault-injection site for the buffered artifact write.
pub const SITE_WRITE: &str = "store.write_artifact";

/// Fault-injection site for the tmp → final rename.
pub const SITE_RENAME: &str = "store.publish_rename";

/// One tagged, checksummed payload inside a container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// The section tag (e.g. `"vocab.word"`).
    pub tag: String,
    /// The raw payload bytes.
    pub payload: Vec<u8>,
}

/// An in-memory container: a state fingerprint plus ordered sections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Container {
    /// The caller's fingerprint of the state encoded in the sections.
    pub fingerprint: u64,
    /// The sections, in write order.
    pub sections: Vec<Section>,
}

impl Container {
    /// Creates an empty container with the given fingerprint.
    pub fn new(fingerprint: u64) -> Container {
        Container {
            fingerprint,
            sections: Vec::new(),
        }
    }

    /// Appends a section.
    pub fn push_section(&mut self, tag: &str, payload: Vec<u8>) {
        self.sections.push(Section {
            tag: tag.to_string(),
            payload,
        });
    }

    /// The payload of the section tagged `tag`.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingSection`] when absent.
    pub fn section(&self, tag: &str) -> Result<&[u8], StoreError> {
        self.sections
            .iter()
            .find(|s| s.tag == tag)
            .map(|s| s.payload.as_slice())
            .ok_or_else(|| StoreError::MissingSection {
                section: tag.to_string(),
            })
    }

    /// Serializes the container to its on-disk byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut header = Writer::new();
        header.put_u32(FORMAT_VERSION);
        header.put_u64(self.fingerprint);
        header.put_u32(self.sections.len() as u32);
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&header.into_bytes());
        let header_crc = crc32(&out);
        out.extend_from_slice(&header_crc.to_le_bytes());
        for s in &self.sections {
            let mut frame = Writer::new();
            frame.put_str(&s.tag);
            frame.put_u64(s.payload.len() as u64);
            frame.put_u32(section_crc(&s.tag, &s.payload));
            out.extend_from_slice(&frame.into_bytes());
            out.extend_from_slice(&s.payload);
        }
        out
    }

    /// Parses a container from bytes, verifying the header CRC, the
    /// format version, and every section CRC.
    ///
    /// # Errors
    ///
    /// Typed [`StoreError`]s for every way the bytes can be wrong:
    /// `Malformed` (magic/frame damage), `TruncatedSection`,
    /// `VersionMismatch`, `SectionCrcMismatch`. Never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Container, StoreError> {
        const HEADER_LEN: usize = 8 + 4 + 8 + 4; // magic + version + fingerprint + count
        if bytes.len() < HEADER_LEN + 4 {
            return Err(StoreError::TruncatedSection {
                section: "<header>".to_string(),
            });
        }
        if &bytes[..8] != MAGIC {
            return Err(StoreError::Malformed("bad magic".to_string()));
        }
        let mut r = Reader::new(&bytes[8..]);
        let version = r.get_u32()?;
        let fingerprint = r.get_u64()?;
        let count = r.get_u32()?;
        let stored_header_crc = r.get_u32()?;
        if crc32(&bytes[..HEADER_LEN]) != stored_header_crc {
            return Err(StoreError::SectionCrcMismatch {
                section: "<header>".to_string(),
            });
        }
        if version != FORMAT_VERSION {
            return Err(StoreError::VersionMismatch {
                expected: FORMAT_VERSION,
                found: version,
            });
        }
        let mut sections = Vec::with_capacity(count.min(1024) as usize);
        for i in 0..count {
            let tag = r
                .get_str()
                .map_err(|_| StoreError::TruncatedSection {
                    section: format!("<section {i}>"),
                })?
                .to_string();
            let len = r.get_u64()?;
            let stored_crc = r.get_u32()?;
            let len = usize::try_from(len).unwrap_or(usize::MAX);
            if len > r.remaining() {
                return Err(StoreError::TruncatedSection { section: tag });
            }
            let payload = r.take(len)?.to_vec();
            if section_crc(&tag, &payload) != stored_crc {
                return Err(StoreError::SectionCrcMismatch { section: tag });
            }
            sections.push(Section { tag, payload });
        }
        r.expect_end()
            .map_err(|_| StoreError::Malformed("trailing bytes after last section".to_string()))?;
        Ok(Container {
            fingerprint,
            sections,
        })
    }
}

/// The checksum of one section: tag bytes, payload length, payload.
/// Covering the frame fields means no byte of a section can change
/// without failing the check.
fn section_crc(tag: &str, payload: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(tag.as_bytes());
    c.update(&(payload.len() as u64).to_le_bytes());
    c.update(payload);
    c.finish()
}

/// Reads and parses a container file.
///
/// # Errors
///
/// [`StoreError::Io`] when the file cannot be read; otherwise the typed
/// corruption errors of [`Container::from_bytes`].
pub fn read_container(path: &Path) -> Result<Container, StoreError> {
    let bytes = fs::read(path)?;
    Container::from_bytes(&bytes)
}

/// Serializes and durably writes a container: tmp sibling, `fsync`,
/// rename over the target, parent-directory `fsync`. Consults the
/// `DARKLIGHT_FAULT_IO` hooks — the `trunc:`/`flip:` modes corrupt the
/// buffered bytes (modelling a torn write that still renamed), and the
/// count mode at `store.publish_rename` fails before the rename
/// (modelling a crash that leaves only the tmp file).
///
/// # Errors
///
/// [`StoreError::Io`] on any filesystem failure, injected or real.
pub fn write_container(path: &Path, container: &Container) -> Result<(), StoreError> {
    fault::maybe_fail_io(SITE_WRITE)?;
    let mut bytes = container.to_bytes();
    if let Some(f) = fault::take_write_fault(SITE_WRITE) {
        f.corrupt(&mut bytes);
    }
    let tmp = path.with_extension("tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    fault::maybe_fail_io(SITE_RENAME)?;
    fs::rename(&tmp, path)?;
    sync_parent_dir(path)?;
    Ok(())
}

/// Fsyncs the parent directory so the rename itself is durable.
pub(crate) fn sync_parent_dir(path: &Path) -> Result<(), StoreError> {
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        fs::File::open(parent)?.sync_all()?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Container {
        let mut c = Container::new(0xfeed_f00d_dead_beef);
        c.push_section("alpha", b"first payload".to_vec());
        c.push_section("beta", vec![0u8; 64]);
        c
    }

    #[test]
    fn round_trips_bytes_exactly() {
        let c = sample();
        let bytes = c.to_bytes();
        let back = Container::from_bytes(&bytes).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.section("alpha").unwrap(), b"first payload");
        assert!(matches!(
            back.section("gamma"),
            Err(StoreError::MissingSection { .. })
        ));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        // The whole point of the format: no byte of the file can change
        // without the load either failing typed or (vacuously) the file
        // being identical. Flip each byte in turn and demand a typed
        // error — never a panic, never a silent wrong parse.
        let c = sample();
        let clean = c.to_bytes();
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0xff;
            match Container::from_bytes(&bad) {
                Err(_) => {}
                Ok(parsed) => panic!("flip at byte {i} parsed silently: {parsed:?}"),
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let c = sample();
        let clean = c.to_bytes();
        for keep in 0..clean.len() {
            match Container::from_bytes(&clean[..keep]) {
                Err(_) => {}
                Ok(_) => panic!("truncation to {keep} bytes parsed silently"),
            }
        }
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut c = sample().to_bytes();
        // Bump the version field (bytes 8..12) and re-stamp the header
        // CRC so the version check, not the CRC, fires.
        c[8] = 9;
        let crc = crc32(&c[..24]).to_le_bytes();
        c[24..28].copy_from_slice(&crc);
        assert!(matches!(
            Container::from_bytes(&c),
            Err(StoreError::VersionMismatch {
                expected: FORMAT_VERSION,
                found: 9
            })
        ));
    }

    #[test]
    fn payload_corruption_names_the_section() {
        let c = sample();
        let clean = c.to_bytes();
        // Flip the final payload byte — inside section "beta".
        let mut bad = clean.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        match Container::from_bytes(&bad) {
            Err(StoreError::SectionCrcMismatch { section }) => assert_eq!(section, "beta"),
            other => panic!("expected beta crc mismatch, got {other:?}"),
        }
    }

    #[test]
    fn durable_write_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("dl-store-container-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.dla");
        let c = sample();
        write_container(&path, &c).unwrap();
        assert_eq!(read_container(&path).unwrap(), c);
        assert!(!path.with_extension("tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_io_not_panic() {
        assert!(matches!(
            read_container(Path::new("/nonexistent/artifact.dla")),
            Err(StoreError::Io(_))
        ));
    }
}
