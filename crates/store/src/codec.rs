//! The little-endian byte codec shared by the container frame and the
//! section payload encoders.
//!
//! [`Writer`] appends fixed-width integers, float bit patterns, and
//! length-prefixed byte strings to a growable buffer; [`Reader`] walks a
//! byte slice with bounds-checked reads that return
//! [`StoreError::Malformed`] instead of panicking, so hostile bytes from
//! a corrupt artifact can never take the process down. Floats travel as
//! raw IEEE-754 bit patterns (`to_bits`/`from_bits`), which is what
//! makes artifact round-trips bit-exact.

use crate::StoreError;

/// Appends primitive values to an owned byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its raw bit pattern.
    pub fn put_f32_bits(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends an `f64` as its raw bit pattern.
    pub fn put_f64_bits(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes with a `u64` length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a UTF-8 string with a `u64` length prefix.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Walks a byte slice with bounds-checked primitive reads.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Malformed(format!(
                "need {n} bytes at offset {}, only {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] at end of input.
    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] when fewer than 4 bytes remain.
    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] when fewer than 8 bytes remain.
    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f32` from its raw bit pattern.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] when fewer than 4 bytes remain.
    pub fn get_f32_bits(&mut self) -> Result<f32, StoreError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads an `f64` from its raw bit pattern.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] when fewer than 8 bytes remain.
    pub fn get_f64_bits(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u64`-length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] when the prefix overruns the input —
    /// the length is validated against the remaining bytes *before* any
    /// allocation, so a corrupt multi-gigabyte prefix cannot force one.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], StoreError> {
        let len = self.get_u64()?;
        let len = usize::try_from(len)
            .map_err(|_| StoreError::Malformed(format!("length prefix {len} overflows usize")))?;
        self.take(len)
    }

    /// Reads a `u64`-length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] on overrun or invalid UTF-8.
    pub fn get_str(&mut self) -> Result<&'a str, StoreError> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes)
            .map_err(|e| StoreError::Malformed(format!("invalid utf-8 in string: {e}")))
    }

    /// Reads a `u64` count for a following sequence of items at least
    /// `min_item_bytes` wide each, rejecting counts that could not
    /// possibly fit in the remaining input. Guards `Vec::with_capacity`
    /// against corrupt counts.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] when the count overruns the input.
    pub fn get_count(&mut self, min_item_bytes: usize) -> Result<usize, StoreError> {
        let count = self.get_u64()?;
        let count = usize::try_from(count)
            .map_err(|_| StoreError::Malformed(format!("count {count} overflows usize")))?;
        if count.saturating_mul(min_item_bytes.max(1)) > self.remaining() {
            return Err(StoreError::Malformed(format!(
                "count {count} cannot fit in {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(count)
    }

    /// Fails unless every byte has been consumed — trailing garbage in a
    /// section payload is corruption, not padding.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] when bytes remain.
    pub fn expect_end(&self) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::Malformed(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_f32_bits(-0.0);
        w.put_f64_bits(f64::NAN);
        w.put_str("époch");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f32_bits().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.get_f64_bits().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.get_str().unwrap(), "époch");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        r.expect_end().unwrap();
    }

    #[test]
    fn overrun_is_typed_not_a_panic() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.get_u32(), Err(StoreError::Malformed(_))));
    }

    #[test]
    fn huge_length_prefix_rejected_before_allocation() {
        // Length prefix claims u64::MAX bytes follow.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_bytes(), Err(StoreError::Malformed(_))));
    }

    #[test]
    fn counts_validated_against_remaining_bytes() {
        let mut w = Writer::new();
        w.put_u64(1_000_000); // claims a million 4-byte items
        w.put_u32(42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_count(4), Err(StoreError::Malformed(_))));
    }

    #[test]
    fn invalid_utf8_is_typed() {
        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_str(), Err(StoreError::Malformed(_))));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let r = Reader::new(&[0]);
        assert!(matches!(r.expect_end(), Err(StoreError::Malformed(_))));
    }
}
