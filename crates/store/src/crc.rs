//! CRC-32 (IEEE 802.3) over byte slices.
//!
//! The workspace builds offline with no external crates, so the
//! polynomial table is computed once at first use. This is the same
//! reflected CRC-32 that zlib, PNG, and Ethernet use — `crc32(b"123456789")`
//! is the classic check value `0xcbf4_3926`.

use std::sync::OnceLock;

const POLY: u32 = 0xedb8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// An incremental CRC-32 — feed byte runs with [`update`](Crc32::update)
/// and read the digest with [`finish`](Crc32::finish). Hashing runs
/// incrementally is what lets a section checksum cover its tag, length,
/// and payload without concatenating them into a scratch buffer.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

impl Crc32 {
    /// Starts a fresh digest.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Absorbs a run of bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = t[((self.state ^ b as u32) & 0xff) as usize] ^ (self.state >> 8);
        }
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_check_value() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"");
        c.update(b"56789");
        assert_eq!(c.finish(), crc32(b"123456789"));
    }

    #[test]
    fn single_bit_difference_changes_crc() {
        let a = crc32(b"darklight artifact payload");
        let mut flipped = b"darklight artifact payload".to_vec();
        flipped[7] ^= 0x01;
        assert_ne!(a, crc32(&flipped));
    }
}
