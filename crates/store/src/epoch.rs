//! Epoch directories with an atomically-swapped `CURRENT` pointer.
//!
//! ## On-disk layout
//!
//! ```text
//! <root>/
//!   CURRENT                      "epoch-000002\n" — the served epoch
//!   epochs/
//!     epoch-000001/artifact.dla  older, kept for fallback
//!     epoch-000002/artifact.dla  the artifact CURRENT names
//! ```
//!
//! A publish writes the container into a **fresh** epoch directory
//! (epochs are immutable once named by `CURRENT`), then swaps the
//! `CURRENT` pointer via the same tmp + fsync + rename discipline. The
//! two-step protocol means every crash window leaves the store
//! serveable:
//!
//! * crash mid-artifact-write — the new epoch has only a `.tmp` (or a
//!   corrupt `artifact.dla` if the torn bytes renamed); `CURRENT` still
//!   names the old epoch, which loads untouched;
//! * crash after the artifact rename but before the `CURRENT` swap —
//!   the new epoch is complete but unnamed; loads keep serving the
//!   epoch `CURRENT` names, the last *published* consistent state;
//! * corrupt or missing `CURRENT` — the recovery ladder scans epochs
//!   newest-first and serves the newest one that loads cleanly.
//!
//! The **recovery ladder** of [`EpochStore::load`]: try the epoch
//! `CURRENT` names, then every other epoch newest-first; the first
//! clean load wins. Corruption steps are observable as `store.*`
//! metrics (`store.crc_failures`, `store.epoch_fallbacks`).

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use darklight_govern::fault;
use darklight_obs::PipelineMetrics;

use crate::container::{read_container, sync_parent_dir, write_container, Container};
use crate::StoreError;

/// Name of the pointer file under the store root.
pub const CURRENT_FILE: &str = "CURRENT";

/// Name of the epoch directory collection under the store root.
pub const EPOCHS_DIR: &str = "epochs";

/// Name of the container file inside each epoch directory.
pub const ARTIFACT_FILE: &str = "artifact.dla";

/// Fault-injection site for the `CURRENT` pointer swap.
pub const SITE_CURRENT: &str = "store.current_swap";

/// An artifact store rooted at a directory of epochs.
#[derive(Debug, Clone)]
pub struct EpochStore {
    root: PathBuf,
    metrics: PipelineMetrics,
}

impl EpochStore {
    /// Opens (without touching the filesystem) a store rooted at `root`.
    pub fn new<P: Into<PathBuf>>(root: P) -> EpochStore {
        EpochStore {
            root: root.into(),
            metrics: PipelineMetrics::disabled(),
        }
    }

    /// Records `store.*` metrics into `metrics`.
    pub fn with_metrics(mut self, metrics: PipelineMetrics) -> EpochStore {
        self.metrics = metrics;
        self
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn epochs_dir(&self) -> PathBuf {
        self.root.join(EPOCHS_DIR)
    }

    fn epoch_dir(&self, epoch: u64) -> PathBuf {
        self.epochs_dir().join(epoch_name(epoch))
    }

    fn artifact_path(&self, epoch: u64) -> PathBuf {
        self.epoch_dir(epoch).join(ARTIFACT_FILE)
    }

    /// Epoch numbers present under the root, ascending. Directory
    /// enumeration order is filesystem-dependent, so the list is sorted
    /// before anything iterates it — loads stay deterministic.
    pub fn epochs(&self) -> Result<Vec<u64>, StoreError> {
        let dir = self.epochs_dir();
        let mut out = Vec::new();
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(StoreError::Io(e)),
        };
        for entry in entries {
            let entry = entry?;
            if let Some(n) = parse_epoch_name(&entry.file_name().to_string_lossy()) {
                out.push(n);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// The epoch number `CURRENT` names, if the pointer file exists and
    /// parses. A corrupt pointer is treated as absent — the recovery
    /// ladder then scans epochs newest-first instead of trusting it.
    pub fn current(&self) -> Option<u64> {
        let raw = fs::read_to_string(self.root.join(CURRENT_FILE)).ok()?;
        parse_epoch_name(raw.trim())
    }

    /// Publishes `container` as a fresh epoch and swaps `CURRENT` to it.
    /// Returns the new epoch number.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure (injected faults
    /// included). A failed publish never damages previously published
    /// epochs: the new epoch directory may hold partial state, but
    /// `CURRENT` is only swapped after the artifact is durably in
    /// place, so loads keep serving the previous epoch.
    pub fn publish(&self, container: &Container) -> Result<u64, StoreError> {
        let epoch = self.epochs()?.last().copied().unwrap_or(0) + 1;
        let dir = self.epoch_dir(epoch);
        fs::create_dir_all(&dir)?;
        write_container(&self.artifact_path(epoch), container)?;
        self.swap_current(epoch)?;
        self.metrics.counter("store.saves").incr();
        Ok(epoch)
    }

    /// Durably points `CURRENT` at `epoch` (tmp + fsync + rename).
    fn swap_current(&self, epoch: u64) -> Result<(), StoreError> {
        let path = self.root.join(CURRENT_FILE);
        let tmp = self.root.join("CURRENT.tmp");
        let mut bytes = format!("{}\n", epoch_name(epoch)).into_bytes();
        if let Some(f) = fault::take_write_fault(SITE_CURRENT) {
            f.corrupt(&mut bytes);
        }
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        fault::maybe_fail_io(SITE_CURRENT)?;
        fs::rename(&tmp, &path)?;
        sync_parent_dir(&path)?;
        Ok(())
    }

    /// Loads the newest cleanly-decodable artifact, walking the
    /// recovery ladder: the epoch `CURRENT` names first, then every
    /// other epoch newest-first. `decode` maps a verified container to
    /// the caller's state and may itself reject (e.g. a fingerprint
    /// mismatch) — a rejection falls back exactly like file corruption.
    /// Returns the decoded state and the epoch that served it.
    ///
    /// # Errors
    ///
    /// The error from the *first* candidate tried (the most relevant
    /// one — it is the artifact the store claimed was current) when no
    /// epoch decodes; [`StoreError::NoUsableEpoch`] when the store has
    /// no epochs at all.
    pub fn load_with<T, F>(&self, decode: F) -> Result<(T, u64), StoreError>
    where
        F: Fn(&Container) -> Result<T, StoreError>,
    {
        let mut candidates: Vec<u64> = self.epochs()?;
        candidates.reverse(); // newest first
        if let Some(cur) = self.current() {
            if let Some(pos) = candidates.iter().position(|&e| e == cur) {
                let cur = candidates.remove(pos);
                candidates.insert(0, cur);
            }
        }
        let mut first_err: Option<StoreError> = None;
        let total = candidates.len();
        for (i, epoch) in candidates.into_iter().enumerate() {
            match read_container(&self.artifact_path(epoch)).and_then(|c| decode(&c)) {
                Ok(state) => {
                    self.metrics.counter("store.loads").incr();
                    return Ok((state, epoch));
                }
                Err(e) => {
                    if matches!(e, StoreError::SectionCrcMismatch { .. }) {
                        self.metrics.counter("store.crc_failures").incr();
                    }
                    if i + 1 < total {
                        // Falling past this epoch to an older one.
                        self.metrics.counter("store.epoch_fallbacks").incr();
                    }
                    first_err.get_or_insert(e);
                }
            }
        }
        Err(first_err.unwrap_or(StoreError::NoUsableEpoch))
    }

    /// Loads the newest cleanly-parsing container; see
    /// [`load_with`](EpochStore::load_with).
    ///
    /// # Errors
    ///
    /// As [`load_with`](EpochStore::load_with).
    pub fn load(&self) -> Result<(Container, u64), StoreError> {
        self.load_with(|c| Ok(c.clone()))
    }
}

/// The directory name of epoch `n` (`epoch-000001`).
pub fn epoch_name(n: u64) -> String {
    format!("epoch-{n:06}")
}

/// Parses an epoch directory name back to its number.
pub fn parse_epoch_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("epoch-")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> EpochStore {
        let root = std::env::temp_dir().join(format!("dl-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        EpochStore::new(root)
    }

    fn sample(tag_payload: &[u8]) -> Container {
        let mut c = Container::new(42);
        c.push_section("data", tag_payload.to_vec());
        c
    }

    #[test]
    fn publish_then_load_round_trips() {
        let store = temp_store("roundtrip").with_metrics(PipelineMetrics::enabled());
        let c = sample(b"one");
        let epoch = store.publish(&c).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(store.current(), Some(1));
        let (back, served) = store.load().unwrap();
        assert_eq!(back, c);
        assert_eq!(served, 1);
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn republish_advances_epoch_and_keeps_old() {
        let store = temp_store("advance");
        store.publish(&sample(b"one")).unwrap();
        let e2 = store.publish(&sample(b"two")).unwrap();
        assert_eq!(e2, 2);
        assert_eq!(store.epochs().unwrap(), vec![1, 2]);
        let (c, served) = store.load().unwrap();
        assert_eq!(served, 2);
        assert_eq!(c.section("data").unwrap(), b"two");
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn corrupt_current_epoch_falls_back_to_previous() {
        let store = temp_store("fallback").with_metrics(PipelineMetrics::enabled());
        store.publish(&sample(b"good")).unwrap();
        store.publish(&sample(b"newer")).unwrap();
        // Flip a payload byte of the artifact CURRENT names.
        let path = store.artifact_path(2);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let (c, served) = store.load().unwrap();
        assert_eq!(served, 1);
        assert_eq!(c.section("data").unwrap(), b"good");
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn missing_current_scans_newest_first() {
        let store = temp_store("nocurrent");
        store.publish(&sample(b"one")).unwrap();
        store.publish(&sample(b"two")).unwrap();
        fs::remove_file(store.root().join(CURRENT_FILE)).unwrap();
        let (c, served) = store.load().unwrap();
        assert_eq!(served, 2);
        assert_eq!(c.section("data").unwrap(), b"two");
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn corrupt_current_pointer_is_treated_as_absent() {
        let store = temp_store("badpointer");
        store.publish(&sample(b"one")).unwrap();
        fs::write(store.root().join(CURRENT_FILE), b"\xff\xfe garbage").unwrap();
        assert_eq!(store.current(), None);
        let (_, served) = store.load().unwrap();
        assert_eq!(served, 1);
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn decode_rejection_falls_back_like_corruption() {
        let store = temp_store("decodefallback");
        store.publish(&sample(b"old")).unwrap();
        store.publish(&sample(b"new")).unwrap();
        // A decoder that rejects the newer artifact's payload.
        let (c, served) = store
            .load_with(|c| {
                if c.section("data")? == b"new" {
                    Err(StoreError::FingerprintMismatch {
                        expected: 1,
                        found: 2,
                    })
                } else {
                    Ok(c.clone())
                }
            })
            .unwrap();
        assert_eq!(served, 1);
        assert_eq!(c.section("data").unwrap(), b"old");
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn empty_store_is_no_usable_epoch() {
        let store = temp_store("empty");
        assert!(matches!(store.load(), Err(StoreError::NoUsableEpoch)));
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn all_epochs_corrupt_reports_the_current_epochs_error() {
        let store = temp_store("allbad");
        store.publish(&sample(b"only")).unwrap();
        let path = store.artifact_path(1);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load(),
            Err(StoreError::SectionCrcMismatch { .. })
        ));
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn fallback_metrics_count_steps() {
        let metrics = PipelineMetrics::enabled();
        let store = temp_store("metrics").with_metrics(metrics.clone());
        store.publish(&sample(b"good")).unwrap();
        store.publish(&sample(b"bad")).unwrap();
        let path = store.artifact_path(2);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        store.load().unwrap();
        assert_eq!(metrics.counter("store.saves").get(), 2);
        assert_eq!(metrics.counter("store.loads").get(), 1);
        assert_eq!(metrics.counter("store.crc_failures").get(), 1);
        assert_eq!(metrics.counter("store.epoch_fallbacks").get(), 1);
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn epoch_names_round_trip() {
        assert_eq!(epoch_name(7), "epoch-000007");
        assert_eq!(parse_epoch_name("epoch-000007"), Some(7));
        assert_eq!(parse_epoch_name("epoch-"), None);
        assert_eq!(parse_epoch_name("epoch-7x"), None);
        assert_eq!(parse_epoch_name("snapshot-7"), None);
    }
}
