//! Property-based tests for the feature substrate.

use darklight_features::ngram::{char_ngrams_free_space, char_ngrams_up_to, word_ngrams_up_to};
use darklight_features::pipeline::{FeatureConfig, FeatureExtractor, PreparedDoc};
use darklight_features::sparse::SparseVector;
use darklight_features::vocab::{count_terms, VocabBuilder};
use proptest::prelude::*;

fn sparse_strategy() -> impl Strategy<Value = SparseVector> {
    proptest::collection::vec((0u32..500, -10.0f32..10.0), 0..40).prop_map(SparseVector::from_pairs)
}

fn nonneg_sparse_strategy() -> impl Strategy<Value = SparseVector> {
    proptest::collection::vec((0u32..500, 0.01f32..10.0), 0..40).prop_map(SparseVector::from_pairs)
}

proptest! {
    /// Sparse indices are strictly increasing after construction.
    #[test]
    fn sparse_indices_sorted(v in sparse_strategy()) {
        let idx: Vec<u32> = v.iter().map(|(i, _)| i).collect();
        for w in idx.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Dot product is symmetric.
    #[test]
    fn dot_symmetric(a in sparse_strategy(), b in sparse_strategy()) {
        prop_assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-6);
    }

    /// Cosine of non-negative vectors is in [0, 1]; self-cosine is 1 for
    /// non-empty vectors.
    #[test]
    fn cosine_nonneg_bounds(a in nonneg_sparse_strategy(), b in nonneg_sparse_strategy()) {
        let c = a.cosine(&b);
        prop_assert!((-1e-9..=1.0 + 1e-6).contains(&c), "cosine {c}");
        if !a.is_empty() {
            prop_assert!((a.cosine(&a) - 1.0).abs() < 1e-6);
        }
    }

    /// Normalization yields unit norm (or keeps the zero vector zero).
    #[test]
    fn l2_normalized_unit(v in sparse_strategy()) {
        let u = v.l2_normalized();
        if v.is_empty() {
            prop_assert!(u.is_empty());
        } else {
            prop_assert!((u.norm() - 1.0).abs() < 1e-4);
        }
    }

    /// Word n-gram count matches the closed form Σ_{n=1..N} (L - n + 1)⁺.
    #[test]
    fn word_ngram_count_closed_form(words in proptest::collection::vec("[a-z]{1,6}", 0..30), max_n in 1usize..5) {
        let toks: Vec<String> = words;
        let expected: usize = (1..=max_n)
            .map(|n| toks.len().saturating_sub(n - 1))
            .sum();
        prop_assert_eq!(word_ngrams_up_to(&toks, max_n).count(), expected);
    }

    /// Free-space char n-grams never contain whitespace.
    #[test]
    fn free_space_has_no_whitespace(s in "\\PC{0,100}", n in 1usize..6) {
        for g in char_ngrams_free_space(&s, n) {
            prop_assert!(!g.chars().any(|c| c.is_whitespace()));
            prop_assert_eq!(g.chars().count(), n);
        }
    }

    /// Every char n-gram has exactly n chars.
    #[test]
    fn char_ngram_lengths(s in "\\PC{0,100}", max_n in 1usize..6) {
        for g in char_ngrams_up_to(&s, max_n) {
            let l = g.chars().count();
            prop_assert!(l >= 1 && l <= max_n);
        }
    }

    /// Top-N selection returns at most N terms and is stable across calls.
    #[test]
    fn top_n_bounded_and_deterministic(
        docs in proptest::collection::vec(proptest::collection::vec("[a-c]{1,2}", 1..20), 1..8),
        n in 1usize..10,
    ) {
        let mut b = VocabBuilder::new();
        for d in &docs {
            b.add_doc_counts(&count_terms(d.iter().cloned()));
        }
        let v1 = b.select_top(n);
        let v2 = b.select_top(n);
        prop_assert!(v1.len() <= n);
        let mut t1: Vec<(String, u32)> = v1.iter().map(|(t, i)| (t.to_string(), i)).collect();
        let mut t2: Vec<(String, u32)> = v2.iter().map(|(t, i)| (t.to_string(), i)).collect();
        t1.sort();
        t2.sort();
        prop_assert_eq!(t1, t2);
    }

    /// Pipeline vectors are unit-norm and vectorization is deterministic.
    #[test]
    fn pipeline_vectors_unit_and_deterministic(texts in proptest::collection::vec("[a-z !.,]{10,80}", 2..5)) {
        let docs: Vec<PreparedDoc> = texts.iter().map(|t| PreparedDoc::prepare(t, None)).collect();
        let space = FeatureExtractor::new(FeatureConfig::space_reduction()).fit(&docs);
        for d in &docs {
            let v1 = space.vectorize(d, None);
            let v2 = space.vectorize(d, None);
            prop_assert_eq!(&v1, &v2);
            if !v1.is_empty() {
                prop_assert!((v1.norm() - 1.0).abs() < 1e-4);
            }
        }
    }

    /// Truncating a document never increases its word count and preserves a
    /// prefix.
    #[test]
    fn truncation_is_prefix(text in "[a-z ]{0,200}", budget in 0usize..40) {
        let d = PreparedDoc::prepare(&text, None);
        let t = d.truncate_words(budget);
        prop_assert!(t.word_len() <= budget.max(d.word_len().min(budget)));
        prop_assert_eq!(t.words(), &d.words()[..t.word_len()]);
    }
}
