//! TF-IDF weighting.
//!
//! "This measure gives more importance to features that are frequently used
//! by only one user and less importance to popular features such as
//! stop-words" (§IV-A). We use the smoothed formulation
//! `idf(t) = ln((1 + N) / (1 + df(t))) + 1` (as in scikit-learn, which the
//! authors' Python stack builds on), with raw term counts as TF and L2
//! normalization applied by the caller.

use crate::sparse::SparseVector;
use crate::vocab::Vocabulary;
use std::collections::HashMap;

/// A TF-IDF weigher over a frozen [`Vocabulary`].
#[derive(Debug, Clone)]
pub struct TfIdf {
    idf: Vec<f32>,
}

impl darklight_govern::EstimateBytes for TfIdf {
    fn estimate_bytes(&self) -> u64 {
        self.idf.len() as u64 * 4 + 24
    }
}

impl TfIdf {
    /// Precomputes IDF weights from the vocabulary's document frequencies.
    pub fn fit(vocab: &Vocabulary) -> TfIdf {
        let n = vocab.num_docs() as f64;
        let idf = (0..vocab.len() as u32)
            .map(|i| {
                let df = vocab.doc_freq(i) as f64;
                (((1.0 + n) / (1.0 + df)).ln() + 1.0) as f32
            })
            .collect();
        TfIdf { idf }
    }

    /// Number of weighted dimensions.
    pub fn len(&self) -> usize {
        self.idf.len()
    }

    /// `true` when fitted on an empty vocabulary.
    pub fn is_empty(&self) -> bool {
        self.idf.is_empty()
    }

    /// The IDF weight of dense index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn idf(&self, i: u32) -> f32 {
        self.idf[i as usize]
    }

    /// Vectorizes a document's term counts: `tf * idf` per selected term.
    /// Terms outside the vocabulary are ignored. The result is *not*
    /// normalized — callers normalize after concatenating feature blocks.
    ///
    /// ```
    /// use darklight_features::tfidf::TfIdf;
    /// use darklight_features::vocab::{count_terms, VocabBuilder};
    ///
    /// let mut b = VocabBuilder::new();
    /// b.add_doc_terms(["the", "the", "onion"].map(String::from));
    /// b.add_doc_terms(["the", "market"].map(String::from));
    /// let vocab = b.select_top(10);
    /// let tfidf = TfIdf::fit(&vocab);
    /// let doc = count_terms(["the", "onion", "onion"].map(String::from));
    /// let v = tfidf.transform(&vocab, &doc);
    /// // "onion" (rare) outweighs "the" (ubiquitous) despite lower raw tf.
    /// let onion = vocab.index_of("onion").unwrap();
    /// let the = vocab.index_of("the").unwrap();
    /// assert!(v.get(onion) > v.get(the));
    /// ```
    pub fn transform(&self, vocab: &Vocabulary, counts: &HashMap<String, u32>) -> SparseVector {
        let pairs = counts.iter().filter_map(|(term, &tf)| {
            vocab
                .index_of(term)
                .map(|i| (i, tf as f32 * self.idf[i as usize]))
        });
        SparseVector::from_pairs(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::{count_terms, VocabBuilder};

    fn fit_corpus(docs: &[&[&str]]) -> (Vocabulary, TfIdf) {
        let mut b = VocabBuilder::new();
        for d in docs {
            b.add_doc_terms(d.iter().map(|s| s.to_string()));
        }
        let v = b.select_top(100);
        let t = TfIdf::fit(&v);
        (v, t)
    }

    #[test]
    fn idf_decreases_with_document_frequency() {
        let (v, t) = fit_corpus(&[&["common", "rare"], &["common"], &["common"], &["common"]]);
        let c = v.index_of("common").unwrap();
        let r = v.index_of("rare").unwrap();
        assert!(t.idf(r) > t.idf(c));
    }

    #[test]
    fn idf_of_ubiquitous_term_is_one() {
        let (v, t) = fit_corpus(&[&["x"], &["x"], &["x"]]);
        // df == N: ln((1+N)/(1+N)) + 1 == 1.
        assert!((t.idf(v.index_of("x").unwrap()) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn transform_multiplies_tf_and_idf() {
        let (v, t) = fit_corpus(&[&["a", "b"], &["a"]]);
        let doc = count_terms(["a", "a", "b"].map(String::from));
        let vec = t.transform(&v, &doc);
        let ia = v.index_of("a").unwrap();
        let ib = v.index_of("b").unwrap();
        assert!((vec.get(ia) - 2.0 * t.idf(ia)).abs() < 1e-6);
        assert!((vec.get(ib) - t.idf(ib)).abs() < 1e-6);
    }

    #[test]
    fn out_of_vocab_ignored() {
        let (v, t) = fit_corpus(&[&["known"]]);
        let doc = count_terms(["unknown", "known"].map(String::from));
        let vec = t.transform(&v, &doc);
        assert_eq!(vec.nnz(), 1);
    }

    #[test]
    fn empty_doc_empty_vector() {
        let (v, t) = fit_corpus(&[&["a"]]);
        let vec = t.transform(&v, &HashMap::new());
        assert!(vec.is_empty());
    }

    #[test]
    fn idf_always_positive() {
        let (v, t) = fit_corpus(&[&["a", "b", "c"], &["a", "b"], &["a"]]);
        for i in 0..t.len() as u32 {
            assert!(t.idf(i) > 0.0);
        }
        assert!(!t.is_empty());
        let _ = v;
    }
}
