//! Fixed char-class frequency features (Table II).
//!
//! The paper tracks the frequency of 11 punctuation marks, 10 digits, and 21
//! special characters as dense feature slots alongside the n-gram blocks.
//! Frequencies are occurrences per character of text, so message length
//! does not dominate the signal.

/// The 11 tracked punctuation marks (Table II lists `.`, `,`, `:` …).
pub const PUNCTUATION: [char; 11] = ['.', ',', ':', ';', '!', '?', '\'', '"', '(', ')', '-'];

/// The 10 tracked digits.
pub const DIGITS: [char; 10] = ['0', '1', '2', '3', '4', '5', '6', '7', '8', '9'];

/// The 21 tracked special characters (Table II lists `@`, `#` …).
pub const SPECIAL: [char; 21] = [
    '@', '#', '$', '%', '&', '*', '+', '=', '/', '\\', '_', '^', '~', '<', '>', '|', '[', ']', '{',
    '}', '€',
];

/// Total number of char-class slots (11 + 10 + 21 = 42).
pub const NUM_SLOTS: usize = PUNCTUATION.len() + DIGITS.len() + SPECIAL.len();

/// Per-character frequencies of the tracked classes over `text`, in slot
/// order: punctuation, digits, special. An empty text yields all zeros.
///
/// ```
/// use darklight_features::charfreq::{char_class_frequencies, NUM_SLOTS};
/// let f = char_class_frequencies("a.b.c");
/// assert_eq!(f.len(), NUM_SLOTS);
/// assert!((f[0] - 0.4).abs() < 1e-12); // '.' is 2 of 5 chars
/// ```
pub fn char_class_frequencies(text: &str) -> [f64; NUM_SLOTS] {
    let mut counts = [0u32; NUM_SLOTS];
    let mut total = 0u64;
    for c in text.chars() {
        total += 1;
        if let Some(slot) = slot_of(c) {
            counts[slot] += 1;
        }
    }
    let mut out = [0.0; NUM_SLOTS];
    if total > 0 {
        for (o, &c) in out.iter_mut().zip(counts.iter()) {
            *o = c as f64 / total as f64;
        }
    }
    out
}

/// The slot index of a tracked character, if any.
pub fn slot_of(c: char) -> Option<usize> {
    if let Some(p) = PUNCTUATION.iter().position(|&x| x == c) {
        return Some(p);
    }
    if c.is_ascii_digit() {
        return Some(PUNCTUATION.len() + (c as usize - '0' as usize));
    }
    SPECIAL
        .iter()
        .position(|&x| x == c)
        .map(|p| PUNCTUATION.len() + DIGITS.len() + p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_layout_is_disjoint_and_complete() {
        let mut seen = [false; NUM_SLOTS];
        for c in PUNCTUATION.iter().chain(&DIGITS).chain(&SPECIAL) {
            let s = slot_of(*c).expect("tracked char has a slot");
            assert!(!seen[s], "slot collision for {c:?}");
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn untracked_chars_have_no_slot() {
        for c in ['a', 'Z', ' ', '\n', 'é', '☀'] {
            assert_eq!(slot_of(c), None, "{c:?}");
        }
    }

    #[test]
    fn empty_text_all_zero() {
        assert_eq!(char_class_frequencies(""), [0.0; NUM_SLOTS]);
    }

    #[test]
    fn frequencies_are_per_character() {
        let f = char_class_frequencies("ab!!");
        let bang = slot_of('!').unwrap();
        assert!((f[bang] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn digits_counted_individually() {
        let f = char_class_frequencies("7777 3");
        let seven = slot_of('7').unwrap();
        let three = slot_of('3').unwrap();
        assert!(f[seven] > f[three]);
        assert!(f[three] > 0.0);
    }

    #[test]
    fn frequencies_sum_at_most_one() {
        let f = char_class_frequencies(".,:;!?'\"()-@#42");
        let sum: f64 = f.iter().sum();
        assert!(sum <= 1.0 + 1e-12);
        assert!(sum > 0.9); // every char in the sample is tracked
    }

    #[test]
    fn counts_match_slot_count() {
        assert_eq!(NUM_SLOTS, 42);
    }
}
