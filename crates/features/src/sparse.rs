//! Sorted sparse vectors.
//!
//! The attribution pipeline compares tens of thousands of users over a
//! ~65,000-dimensional feature space in which each user touches only a few
//! thousand dimensions. Vectors are stored as parallel `(index, value)`
//! arrays sorted by index; dot products are linear merges. Values are `f32`
//! (the weights are TF-IDF scores, well within `f32` range) with `f64`
//! accumulation.

/// A sparse vector: strictly increasing indices with `f32` values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVector {
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl darklight_govern::EstimateBytes for SparseVector {
    fn estimate_bytes(&self) -> u64 {
        // One u32 index + one f32 value per non-zero, plus the two Vec
        // headers.
        (self.indices.len() as u64) * 8 + 48
    }
}

impl SparseVector {
    /// The empty vector.
    pub fn new() -> SparseVector {
        SparseVector::default()
    }

    /// Builds a vector from arbitrary `(index, value)` pairs. Duplicate
    /// indices are summed; zero values are dropped.
    ///
    /// ```
    /// use darklight_features::sparse::SparseVector;
    /// let v = SparseVector::from_pairs([(3, 1.0), (1, 2.0), (3, 0.5)]);
    /// assert_eq!(v.nnz(), 2);
    /// assert_eq!(v.get(3), 1.5);
    /// ```
    pub fn from_pairs<I: IntoIterator<Item = (u32, f32)>>(pairs: I) -> SparseVector {
        let mut entries: Vec<(u32, f32)> = pairs.into_iter().collect();
        entries.sort_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(entries.len());
        let mut values: Vec<f32> = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            if let Some(&last) = indices.last() {
                if last == i {
                    // audit:allow(no-naked-unwrap) -- indices.last() is Some on this branch and values grows in lockstep
                    *values.last_mut().expect("values tracks indices") += v;
                    continue;
                }
            }
            indices.push(i);
            values.push(v);
        }
        // Drop zeros introduced by input or cancellation.
        let mut out_i = Vec::with_capacity(indices.len());
        let mut out_v = Vec::with_capacity(values.len());
        for (i, v) in indices.into_iter().zip(values) {
            if v != 0.0 {
                out_i.push(i);
                out_v.push(v);
            }
        }
        SparseVector {
            indices: out_i,
            values: out_v,
        }
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// `true` when the vector has no non-zero entries.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The value at `index` (0.0 when absent).
    pub fn get(&self, index: u32) -> f32 {
        match self.indices.binary_search(&index) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates over `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Dot product with another vector (linear merge, `f64` accumulation).
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0f64;
        while i < self.indices.len() && j < other.indices.len() {
            match self.indices[i].cmp(&other.indices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.values[i] as f64 * other.values[j] as f64;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.values
            .iter()
            .map(|&v| v as f64 * v as f64)
            .sum::<f64>()
            .sqrt()
    }

    /// Cosine similarity in `[-1, 1]`; 0 when either vector is zero. For
    /// the non-negative vectors used throughout the pipeline the range is
    /// `[0, 1]` — the paper's eq. 2.
    ///
    /// ```
    /// use darklight_features::sparse::SparseVector;
    /// let a = SparseVector::from_pairs([(0, 1.0), (1, 1.0)]);
    /// let b = SparseVector::from_pairs([(1, 1.0), (2, 1.0)]);
    /// assert!((a.cosine(&b) - 0.5).abs() < 1e-6);
    /// ```
    pub fn cosine(&self, other: &SparseVector) -> f64 {
        let na = self.norm();
        let nb = other.norm();
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        self.dot(other) / (na * nb)
    }

    /// Multiplies every value by `factor`.
    pub fn scale(&mut self, factor: f32) {
        if factor == 0.0 {
            self.indices.clear();
            self.values.clear();
            return;
        }
        for v in &mut self.values {
            *v *= factor;
        }
    }

    /// Returns a unit-norm copy (the zero vector stays zero).
    pub fn l2_normalized(&self) -> SparseVector {
        let n = self.norm();
        let mut out = self.clone();
        if n > 0.0 {
            out.scale((1.0 / n) as f32);
        }
        out
    }

    /// Appends `other` shifted by `offset` dimensions. All of `other`'s
    /// indices must land strictly after this vector's last index.
    ///
    /// # Panics
    ///
    /// Panics if the shifted indices would not keep the vector sorted.
    pub fn concat(&mut self, other: &SparseVector, offset: u32) {
        if let (Some(&last), Some(&first)) = (self.indices.last(), other.indices.first()) {
            assert!(
                // audit:allow(no-naked-unwrap) -- deliberate panic-on-overflow, documented under `# Panics` above
                first.checked_add(offset).expect("index overflow") > last,
                "concat would break index ordering"
            );
        }
        for (i, v) in other.iter() {
            self.indices.push(i + offset);
            self.values.push(v);
        }
    }

    /// Keeps only the entries whose index satisfies the predicate.
    pub fn retain_indices(&mut self, mut keep: impl FnMut(u32) -> bool) {
        let mut out_i = Vec::with_capacity(self.indices.len());
        let mut out_v = Vec::with_capacity(self.values.len());
        for (i, v) in self.iter() {
            if keep(i) {
                out_i.push(i);
                out_v.push(v);
            }
        }
        self.indices = out_i;
        self.values = out_v;
    }
}

impl FromIterator<(u32, f32)> for SparseVector {
    fn from_iter<I: IntoIterator<Item = (u32, f32)>>(iter: I) -> SparseVector {
        SparseVector::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_vector() {
        let v = SparseVector::new();
        assert_eq!(v.nnz(), 0);
        assert!(v.is_empty());
        assert_eq!(v.norm(), 0.0);
        assert_eq!(v.get(5), 0.0);
    }

    #[test]
    fn from_pairs_sorts_and_merges() {
        let v = SparseVector::from_pairs([(5, 1.0), (2, 3.0), (5, 2.0), (9, 0.0)]);
        let entries: Vec<_> = v.iter().collect();
        assert_eq!(entries, [(2, 3.0), (5, 3.0)]);
    }

    #[test]
    fn cancellation_drops_entries() {
        let v = SparseVector::from_pairs([(1, 2.0), (1, -2.0), (3, 1.0)]);
        assert_eq!(v.nnz(), 1);
        assert_eq!(v.get(1), 0.0);
    }

    #[test]
    fn dot_product() {
        let a = SparseVector::from_pairs([(0, 1.0), (2, 2.0), (4, 3.0)]);
        let b = SparseVector::from_pairs([(1, 5.0), (2, 2.0), (4, 1.0)]);
        assert_eq!(a.dot(&b), 7.0);
        assert_eq!(b.dot(&a), 7.0);
        assert_eq!(a.dot(&SparseVector::new()), 0.0);
    }

    #[test]
    fn cosine_bounds_and_identity() {
        let a = SparseVector::from_pairs([(0, 3.0), (7, 4.0)]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-9);
        assert_eq!(a.cosine(&SparseVector::new()), 0.0);
        let disjoint = SparseVector::from_pairs([(1, 1.0)]);
        assert_eq!(a.cosine(&disjoint), 0.0);
    }

    #[test]
    fn normalization() {
        let v = SparseVector::from_pairs([(0, 3.0), (1, 4.0)]);
        let u = v.l2_normalized();
        assert!((u.norm() - 1.0).abs() < 1e-6);
        assert!((u.get(0) - 0.6).abs() < 1e-6);
        // Zero vector survives.
        assert_eq!(SparseVector::new().l2_normalized(), SparseVector::new());
    }

    #[test]
    fn scale_and_clear() {
        let mut v = SparseVector::from_pairs([(0, 1.0), (1, 2.0)]);
        v.scale(2.0);
        assert_eq!(v.get(1), 4.0);
        v.scale(0.0);
        assert!(v.is_empty());
    }

    #[test]
    fn concat_with_offset() {
        let mut a = SparseVector::from_pairs([(0, 1.0), (5, 2.0)]);
        let b = SparseVector::from_pairs([(0, 3.0), (2, 4.0)]);
        a.concat(&b, 10);
        let entries: Vec<_> = a.iter().collect();
        assert_eq!(entries, [(0, 1.0), (5, 2.0), (10, 3.0), (12, 4.0)]);
    }

    #[test]
    #[should_panic(expected = "concat would break index ordering")]
    fn concat_rejects_overlap() {
        let mut a = SparseVector::from_pairs([(10, 1.0)]);
        let b = SparseVector::from_pairs([(0, 1.0)]);
        a.concat(&b, 5);
    }

    #[test]
    fn retain_filters() {
        let mut v = SparseVector::from_pairs([(0, 1.0), (1, 2.0), (2, 3.0)]);
        v.retain_indices(|i| i % 2 == 0);
        let entries: Vec<_> = v.iter().collect();
        assert_eq!(entries, [(0, 1.0), (2, 3.0)]);
    }

    #[test]
    fn collect_from_iterator() {
        let v: SparseVector = [(2u32, 1.0f32), (1, 1.0)].into_iter().collect();
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(1), 1.0);
    }
}
