//! Stylometric feature extraction for the `darklight` pipeline.
//!
//! Implements the feature families of Table II of the paper:
//!
//! | family | space reduction | final stage |
//! |---|---|---|
//! | word n-grams, n = 1–3 | top 60,000 | top 50,000 |
//! | char n-grams, n = 1–5 | top 30,000 | top 15,000 |
//! | punctuation frequencies | 11 | 11 |
//! | digit frequencies | 10 | 10 |
//! | special-char frequencies | 21 | 21 |
//! | daily activity profile | 24 | 24 |
//!
//! N-grams are ranked by corpus frequency, the top N selected, and weighted
//! with TF-IDF; the fixed-slot char-class frequencies and the activity
//! profile are concatenated after the n-gram block. All vectors are sparse
//! and L2-normalized so that a dot product *is* the cosine similarity the
//! attribution stage ranks by.
//!
//! Modules:
//! * [`sparse`] — sorted sparse vectors with dot/cosine/concat;
//! * [`ngram`] — word and character n-gram extraction (including the
//!   space-free char 4-grams of the standard baseline);
//! * [`vocab`] — corpus-frequency counting and top-N vocabulary selection;
//! * [`tfidf`] — smoothed TF-IDF weighting;
//! * [`charfreq`] — the 42 fixed char-class frequency slots;
//! * [`pipeline`] — the end-to-end extractor with the two Table II presets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod charfreq;
pub mod hashing;
pub mod ngram;
pub mod pipeline;
pub mod sparse;
pub mod tfidf;
pub mod vocab;

pub use hashing::HashingVectorizer;
pub use pipeline::{CountedDoc, FeatureConfig, FeatureExtractor, FeatureSpace, PreparedDoc};
pub use sparse::SparseVector;
pub use tfidf::TfIdf;
pub use vocab::Vocabulary;
